"""Figure 8 — decomp-arb-hybrid-CC running time versus problem size.

Random graphs with n = m/5 across a size sweep; the paper's claim is
that running time "increases almost linearly as we increase the graph
size".  We fit the log-log slope and require it near 1.
"""

import math

from benchmarks.conftest import emit
from repro.experiments import ascii_series, fig8_size_scaling

EDGE_COUNTS = [50_000, 100_000, 200_000, 300_000, 400_000, 500_000]

_CACHE = {}


def _series():
    if "d" not in _CACHE:
        _CACHE["d"] = fig8_size_scaling(edge_counts=EDGE_COUNTS)
    return _CACHE["d"]


def test_fig8_report(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    emit(
        "FIGURE 8 — decomp-arb-hybrid-CC time vs problem size (40h)",
        ascii_series({"time (s) by num edges": series}),
    )


def test_fig8_monotone_increase(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    sizes = sorted(series)
    times = [series[s] for s in sizes]
    assert all(a < b for a, b in zip(times, times[1:]))


def test_fig8_near_linear_slope(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    sizes = sorted(series)
    xs = [math.log(s) for s in sizes]
    ys = [math.log(series[s]) for s in sizes]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sum(
        (x - mean_x) ** 2 for x in xs
    )
    assert 0.7 < slope < 1.3, slope
