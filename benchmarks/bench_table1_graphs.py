"""Table 1 — input graph sizes (and generation throughput).

Regenerates the paper's Table 1 at the selected scale and benchmarks
the generators themselves (they are parallel primitives too: R-MAT is
a data-parallel bit-descent, the permutation relabelings use the radix
sort).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import format_table1, run_table1
from repro.graphs.generators import grid3d, line_graph, random_kregular, rmat


def test_table1_report(suite, benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_table1(scale), rounds=1, iterations=1
    )
    emit("TABLE 1 — Input graphs", format_table1(rows))
    assert {r["graph"] for r in rows} == set(suite)
    for r in rows:
        assert r["num_vertices"] > 0


@pytest.mark.parametrize(
    "name,factory",
    [
        ("random", lambda: random_kregular(50_000, 5, seed=1)),
        ("rMat", lambda: rmat(16, 240_000, seed=1)),
        ("3D-grid", lambda: grid3d(32, seed=1)),
        ("line", lambda: line_graph(50_000, seed=1)),
    ],
)
def test_generator_throughput(benchmark, name, factory):
    g = benchmark(factory)
    assert g.num_vertices > 0
