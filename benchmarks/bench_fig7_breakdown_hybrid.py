"""Figure 7 — 40-core phase breakdown of decomp-arb-hybrid-CC.

The sparse/dense split plus the filterEdges post-pass.  Paper
observations asserted here: 3D-grid and line never switch to the
read-based computation (all BFS time in bfsSparse, no filterEdges
work), while random and rMat do go dense and pay filterEdges in
exchange.
"""

import pytest

from benchmarks.conftest import SCALE, emit
from repro.experiments import ascii_series, fig7_breakdown_hybrid
from repro.experiments.figures import BREAKDOWN_GRAPHS

_CACHE = {}


def _data():
    if "d" not in _CACHE:
        _CACHE["d"] = fig7_breakdown_hybrid(scale=SCALE)
    return _CACHE["d"]


def test_fig7_report(benchmark):
    data = benchmark.pedantic(_data, rounds=1, iterations=1)
    emit(
        "FIGURE 7 — decomp-arb-hybrid-CC phase breakdown (40h)",
        ascii_series(data),
    )
    assert set(data) == set(BREAKDOWN_GRAPHS)


@pytest.mark.parametrize("gname", ["3D-grid", "line"])
def test_fig7_sparse_only_graphs(benchmark, gname):
    benchmark.pedantic(_data, rounds=1, iterations=1)
    # "for 3D-grid and line, the frontier never becomes dense enough to
    # switch" — true at every top-level decomposition; the deep
    # recursion levels operate on a few hundred contracted vertices
    # where a dense round may fire, but its time is invisible (<1%)
    # exactly as in the paper's bars.
    phases = _data()[gname]
    total = sum(phases.values())
    assert phases["bfsDense"] < 0.01 * total, phases
    assert phases["filterEdges"] < 0.01 * total, phases
    assert phases["bfsSparse"] > 0.25 * total


@pytest.mark.parametrize("gname", ["random", "rMat"])
def test_fig7_dense_graphs_pay_filter_edges(benchmark, gname):
    phases = benchmark.pedantic(_data, rounds=1, iterations=1)[gname]
    assert phases["bfsDense"] > 0.0, phases
    assert phases["filterEdges"] > 0.0, phases
