"""Figure 3 — 40-core running time versus beta (panels a-d).

Regenerates the four panels (random, rMat, 3D-grid, line) for the
three decomposition variants and asserts the paper's finding that the
best beta lies between 0.05 and 0.2, with times growing toward
beta -> 1 (many recursion levels) on every graph.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import ascii_series, fig3_beta_sweep
from repro.experiments.figures import FIG3_GRAPHS

BETAS = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8]

_CACHE = {}


def _sweep(suite, gname):
    if gname not in _CACHE:
        _CACHE[gname] = fig3_beta_sweep(suite[gname], gname, betas=BETAS)
    return _CACHE[gname]


@pytest.mark.parametrize("gname", FIG3_GRAPHS)
def test_fig3_panel(benchmark, suite, gname):
    sweep = benchmark.pedantic(lambda: _sweep(suite, gname), rounds=1, iterations=1)
    emit(f"FIGURE 3 — 40h-core time vs beta on {gname}", ascii_series(sweep))
    for variant, points in sweep.items():
        best = min(points, key=points.get)
        # the paper: fastest beta between 0.05 and 0.2 (we allow a bit
        # of slack at bench scale — the optimum must not sit at the
        # large-beta end)
        assert best <= 0.4, (gname, variant, best)
        # large beta is clearly worse than the optimum
        assert points[0.8] >= points[best]
