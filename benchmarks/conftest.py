"""Shared benchmark fixtures.

Scale selection: set ``REPRO_SCALE=tiny|small|medium`` (default
``small``) to size every benchmark's inputs; the graph suite is built
once per session.  Every benchmark prints the paper artifact it
regenerates (run pytest with ``-s`` to see them live; the output is
also captured into the junit/benchmark logs).
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.experiments import build_suite
from repro.graphs.csr import CSRGraph

SCALE = os.environ.get("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


@pytest.fixture(scope="session")
def suite() -> Dict[str, CSRGraph]:
    """The paper's six input graphs at the selected scale."""
    return build_suite(SCALE)


def emit(title: str, body: str) -> None:
    """Print one regenerated artifact with a recognizable banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}  [scale={SCALE}]\n{bar}\n{body}\n")
