"""Thread-scaling benchmark: the parallel backend on real cores.

Times the hot kernels and end-to-end ``decomp-arb-CC`` under the
serial ``fast`` backend and the chunked ``parallel`` backend across a
1/2/4/8-worker sweep (:func:`repro.analysis.wallclock.run_parallel_suite`),
writes the trajectory to ``BENCH_parallel.json``, and enforces the
scaling floor:

* as a pytest module (``pytest benchmarks/bench_parallel.py``) it
  asserts end-to-end speedup > 1.4x over ``fast`` at 4 workers on at
  least one of {rMat, random, 3D-grid} — *when the machine actually
  has >= 4 cores*.  On smaller boxes (CI containers are often 1-2
  cores) the floor is informational: a thread pool cannot beat the
  core count, and pretending otherwise would just teach people to
  ignore the bench.  ``meta.cpu_count`` in the artifact records which
  regime produced the numbers;
* as a script (``python benchmarks/bench_parallel.py [--quick]``) it
  prints the measured-vs-predicted table and applies the same
  cpu-gated floor — the CI ``parallel-smoke`` job's entry point.

Every timed configuration computes bit-identical labelings (checked
inside the harness), so a broken chunked kernel fails on correctness
before it can report a speedup.  See docs/performance.md.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

import pytest

if __package__ in (None, ""):  # `python benchmarks/bench_parallel.py`
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.conftest import SCALE, emit
from repro.analysis.wallclock import (
    DEFAULT_WORKER_SWEEP,
    run_parallel_suite,
    write_json,
)

pytestmark = pytest.mark.wallclock

#: The acceptance floor: end-to-end speedup over ``fast`` at 4 workers
#: on at least one default graph — enforced only where the hardware can
#: physically deliver it.
SPEEDUP_FLOOR = 1.4
FLOOR_WORKERS = 4
#: Cores required before the floor is a hard assertion.
FLOOR_MIN_CPUS = 4


def _format(payload: dict) -> str:
    sweep = payload["meta"]["worker_sweep"]
    lines = [
        f"cores: {payload['meta']['cpu_count']}   "
        f"chunk: {payload['meta']['chunk_size']}   sweep: {sweep}",
        "kernels (seconds; speedup vs fast):",
    ]
    for kname, row in sorted(payload["kernels"].items()):
        cells = "   ".join(
            f"@{w} {row[f'parallel@{w}']*1e3:7.2f} ms ({row[f'speedup@{w}']:.2f}x)"
            for w in sweep
        )
        lines.append(f"  {kname:<14} fast {row['fast']*1e3:7.2f} ms   {cells}")
    lines.append("end-to-end decomp-arb-CC (measured / cost-model predicted):")
    for gname, row in sorted(payload["end_to_end"].items()):
        cells = "   ".join(
            f"@{w} {row[f'speedup@{w}']:.2f}x/{row[f'predicted_speedup@{w}']:.2f}x"
            for w in sweep
        )
        lines.append(f"  {gname:<14} fast {row['fast']:7.3f} s   {cells}")
    return "\n".join(lines)


def _best_speedup_at(payload: dict, workers: int) -> float:
    return max(
        row.get(f"speedup@{workers}", float("nan"))
        for row in payload["end_to_end"].values()
    )


@pytest.fixture(scope="module")
def parallel_suite():
    return run_parallel_suite(scale=SCALE, repeats=3)


def test_parallel_trajectory(parallel_suite, tmp_path):
    """Emit the trajectory and sanity-check its shape and provenance."""
    emit("WALL CLOCK — thread-scaling trajectory", _format(parallel_suite))
    out = tmp_path / "BENCH_parallel.json"
    write_json(parallel_suite, str(out))
    reread = json.loads(out.read_text())
    assert reread["meta"]["cpu_count"] == (os.cpu_count() or 1)
    assert reread["meta"]["chunk_size"] >= 1
    assert reread["meta"]["baseline"] == "fast"
    assert reread["meta"]["worker_sweep"] == list(DEFAULT_WORKER_SWEEP)
    assert set(reread["kernels"]) == {
        "first_winner", "write_min", "expand", "hash_dedup",
    }
    for row in reread["end_to_end"].values():
        for w in DEFAULT_WORKER_SWEEP:
            assert f"speedup@{w}" in row
            assert f"predicted_speedup@{w}" in row


def test_parallel_speedup_floor(parallel_suite):
    """> 1.4x over fast at 4 workers on >= 1 graph — where cores exist."""
    best = _best_speedup_at(parallel_suite, FLOOR_WORKERS)
    cpus = os.cpu_count() or 1
    if cpus < FLOOR_MIN_CPUS:
        pytest.skip(
            f"scaling floor needs >= {FLOOR_MIN_CPUS} cores, machine has "
            f"{cpus}; best measured speedup@{FLOOR_WORKERS} = {best:.2f}x "
            "(informational)"
        )
    assert best > SPEEDUP_FLOOR, (
        f"parallel backend best end-to-end speedup {best:.2f}x at "
        f"{FLOOR_WORKERS} workers is below the {SPEEDUP_FLOOR}x floor "
        f"on a {cpus}-core machine"
    )


def test_parallel_no_catastrophic_overhead(parallel_suite):
    """workers=1 must stay within 2x of fast end-to-end (overhead guard).

    At one worker every chunked op takes its serial fallback path, so
    the parallel backend should cost roughly what ``fast`` costs; a
    large gap means chunking is firing where it should not.
    """
    for gname, row in parallel_suite["end_to_end"].items():
        assert row["speedup@1"] >= 0.5, (gname, row)


def main(argv: Optional[List[str]] = None) -> int:
    """Script entry point (CI's parallel-smoke job)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny inputs, 1 repeat (CI smoke; floor stays cpu-gated)",
    )
    parser.add_argument(
        "--scale", choices=["tiny", "small", "medium"], default=None
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    scale = args.scale or ("tiny" if args.quick else "small")
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)

    payload = run_parallel_suite(scale=scale, repeats=repeats)
    print(_format(payload))
    write_json(payload, args.out)
    print(f"wrote {args.out}")

    best = _best_speedup_at(payload, FLOOR_WORKERS)
    cpus = os.cpu_count() or 1
    if args.quick or scale == "tiny":
        print(
            f"OK (smoke): best speedup@{FLOOR_WORKERS} = {best:.2f}x on "
            f"{cpus} core(s); floor not applied at tiny scale"
        )
        return 0
    if cpus < FLOOR_MIN_CPUS:
        print(
            f"OK (informational): best speedup@{FLOOR_WORKERS} = "
            f"{best:.2f}x, but the floor needs >= {FLOOR_MIN_CPUS} cores "
            f"and this machine has {cpus}"
        )
        return 0
    if best <= SPEEDUP_FLOOR:
        print(
            f"FAIL: best end-to-end speedup {best:.2f}x at "
            f"{FLOOR_WORKERS} workers <= {SPEEDUP_FLOOR}x floor",
            file=sys.stderr,
        )
        return 1
    print(f"OK: parallel backend {best:.2f}x > {SPEEDUP_FLOOR}x at {FLOOR_WORKERS} workers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
