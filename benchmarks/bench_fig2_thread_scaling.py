"""Figure 2 — running time versus number of threads, per input graph.

Regenerates all six panels (a)-(f): simulated seconds for every
implementation across the paper's thread sweep {1, 2, 4, 8, 16, 24,
32, 40, 40h}, and asserts the curve shapes the paper describes:

* serial-SF is a flat horizontal line;
* the decomposition implementations scale monotonically and cross
  below serial-SF at a modest thread count on every graph except the
  dense rMat2/com-Orkut (where the BFS baselines rule);
* hybrid-BFS-CC and multistep-CC get (almost) no speedup on line.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import PAPER_GRAPH_ORDER, ascii_series, fig2_thread_sweep


@pytest.mark.parametrize("gname", PAPER_GRAPH_ORDER)
def test_fig2_panel(benchmark, suite, gname):
    # fig2_thread_sweep memoizes per (graph, algorithm) cell, so the
    # repeated panels share work without a bench-local cache.
    series = benchmark.pedantic(
        lambda: fig2_thread_sweep(suite[gname], gname), rounds=1, iterations=1
    )
    emit(f"FIGURE 2 — time vs threads on {gname}", ascii_series(series))

    # serial-SF flat
    sf = list(series["serial-SF"].values())
    assert max(sf) == pytest.approx(min(sf), rel=1e-9)

    # decomposition curves decrease monotonically with thread count
    for algo in ("decomp-arb-CC", "decomp-arb-hybrid-CC", "decomp-min-CC"):
        times = list(series[algo].values())
        assert all(a >= b for a, b in zip(times, times[1:])), algo

    # paper: "except for rMat2 and com-Orkut, [our implementations]
    # outperform the best sequential time with a modest number of
    # threads" — check the crossover below 16 threads
    if gname not in ("rMat2", "com-Orkut"):
        serial = sf[0]
        assert series["decomp-arb-hybrid-CC"]["16"] < serial

    # BFS-per-level baselines get no real speedup on line
    if gname == "line":
        for algo in ("hybrid-BFS-CC", "multistep-CC"):
            speedup = series[algo]["1"] / series[algo]["40h"]
            assert speedup < 4.0, (algo, speedup)
