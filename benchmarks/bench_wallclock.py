"""Wall-clock backend benchmark: the fast backend must actually be fast.

Times the hot kernels and end-to-end ``decomp-arb-CC`` under both
execution backends (:mod:`repro.engine.backend`), writes the
trajectory to ``BENCH_wallclock.json``, and enforces the speedup
floors:

* as a pytest module (``pytest benchmarks/bench_wallclock.py``) it
  asserts the fast backend beats reference by >= 1.5x end-to-end on
  rMat at the default (small) scale — the PR's headline number;
* as a script (``python benchmarks/bench_wallclock.py [--quick]``) it
  prints the table and exits non-zero if fast regresses below
  reference — the CI ``bench-smoke`` job's entry point (``--quick``
  runs tiny inputs with a 1.0x no-regression floor, since tiny-input
  timings are too noisy for the full floor).

Every timed configuration computes bit-identical labelings (checked
inside the harness), so a broken fast backend fails on correctness
before it can report a speedup.  See docs/performance.md.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import List, Optional

import pytest

if __package__ in (None, ""):  # `python benchmarks/bench_wallclock.py`
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.conftest import SCALE, emit
from repro.analysis.wallclock import run_wallclock_suite, trace_run, write_json

pytestmark = pytest.mark.wallclock

#: The acceptance floor at real (small+) scale: end-to-end rMat CC.
FULL_SPEEDUP_FLOOR = 1.5
#: The smoke floor on tiny inputs: no regression.
QUICK_SPEEDUP_FLOOR = 1.0


def _format(payload: dict) -> str:
    lines = ["kernels:"]
    for kname, row in sorted(payload["kernels"].items()):
        lines.append(
            f"  {kname:<14} reference {row['reference']*1e3:8.2f} ms   "
            f"fast {row['fast']*1e3:8.2f} ms   speedup {row['speedup']:.2f}x"
        )
    lines.append("end-to-end decomp-arb-CC:")
    for gname, row in sorted(payload["end_to_end"].items()):
        lines.append(
            f"  {gname:<14} reference {row['reference']:8.3f} s    "
            f"fast {row['fast']:8.3f} s    speedup {row['speedup']:.2f}x"
        )
    return "\n".join(lines)


@pytest.fixture(scope="module")
def wallclock():
    return run_wallclock_suite(scale=SCALE, repeats=3)


def test_wallclock_trajectory(wallclock, tmp_path):
    """Emit the trajectory and sanity-check its shape."""
    emit("WALL CLOCK — backend trajectory", _format(wallclock))
    out = tmp_path / "BENCH_wallclock.json"
    write_json(wallclock, str(out))
    reread = json.loads(out.read_text())
    assert reread["meta"]["scale"] == SCALE
    # Environment + execution-context provenance must ride with the
    # numbers, or archived artifacts are not comparable across machines.
    assert reread["meta"]["python"] == platform.python_version()
    assert reread["meta"]["numpy"]
    assert reread["meta"]["platform"]
    # The hardware/parallelism facts (how many cores the box had, how
    # many workers the context was bound to, the chunk grid) must ride
    # with the numbers too — a scaling claim is meaningless without them.
    assert reread["meta"]["cpu_count"] == (os.cpu_count() or 1)
    assert reread["meta"]["workers"] >= 1
    # The timing protocol must ride with the numbers too: how many
    # repeats the min was taken over and how many discarded warmup
    # iterations preceded them (see repro.analysis.wallclock.best_of).
    assert reread["meta"]["repeats"] >= 1
    assert reread["meta"]["warmup"] >= 1
    assert reread["meta"]["chunk_size"] >= 1
    assert reread["meta"]["context"]["backend"] in ("reference", "fast", "parallel")
    assert reread["meta"]["context"]["sanitize"] is False
    assert set(reread["kernels"]) == {
        "first_winner", "radix_argsort", "expand", "hash_dedup",
    }


def test_fast_backend_speedup_floor(wallclock):
    """The headline acceptance number: >= 1.5x end-to-end on rMat."""
    floor = FULL_SPEEDUP_FLOOR if SCALE != "tiny" else QUICK_SPEEDUP_FLOOR
    speedup = wallclock["end_to_end"]["rMat"]["speedup"]
    assert speedup >= floor, (
        f"fast backend end-to-end speedup {speedup:.2f}x on rMat "
        f"is below the {floor}x floor"
    )


def test_kernel_no_regression(wallclock):
    """No individual kernel may regress under the fast backend."""
    for kname, row in wallclock["kernels"].items():
        assert row["speedup"] >= 0.9, (kname, row)


def main(argv: Optional[List[str]] = None) -> int:
    """Script entry point (CI's bench-smoke job)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny inputs, 1 repeat, no-regression floor (CI smoke)",
    )
    parser.add_argument(
        "--scale", choices=["tiny", "small", "medium"], default=None
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default="BENCH_wallclock.json")
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "also run one traced end-to-end rMat pass, write the "
            "Perfetto-loadable trace to PATH, and attach the per-phase "
            "wall-clock breakdown to the BENCH meta"
        ),
    )
    args = parser.parse_args(argv)

    scale = args.scale or ("tiny" if args.quick else "small")
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    floor = QUICK_SPEEDUP_FLOOR if (args.quick or scale == "tiny") else (
        FULL_SPEEDUP_FLOOR
    )

    payload = run_wallclock_suite(scale=scale, repeats=repeats)
    if args.trace:
        traced = trace_run(scale=scale, graph_name="rMat", path=args.trace)
        payload["meta"]["trace"] = traced  # type: ignore[index]
        phases = ", ".join(
            f"{name} {secs*1e3:.1f} ms"
            for name, secs in sorted(traced["phase_seconds"].items())  # type: ignore[union-attr]
        )
        print(f"traced rMat: {traced['rounds']} rounds — {phases}")
        print(f"wrote {args.trace}")
    print(_format(payload))
    write_json(payload, args.out)
    print(f"wrote {args.out}")

    speedup = payload["end_to_end"]["rMat"]["speedup"]
    if speedup < floor:
        print(
            f"FAIL: fast backend speedup {speedup:.2f}x on rMat "
            f"< {floor}x floor",
            file=sys.stderr,
        )
        return 1
    print(f"OK: fast backend {speedup:.2f}x >= {floor}x on rMat")
    return 0


if __name__ == "__main__":
    sys.exit(main())
