"""Figure 5 — 40-core phase breakdown of decomp-min-CC.

Regenerates the stacked-bar data (init / bfsPre / bfsPhase1 /
bfsPhase2 / contractGraph) for random, rMat, 3D-grid and line, and
asserts the paper's reading: 80-90% of the time goes to the two BFS
phases, with phase 1 the more expensive.
"""

import pytest

from benchmarks.conftest import SCALE, emit
from repro.experiments import ascii_series, fig5_breakdown_min
from repro.experiments.figures import BREAKDOWN_GRAPHS

_CACHE = {}


def _data():
    if "d" not in _CACHE:
        _CACHE["d"] = fig5_breakdown_min(scale=SCALE)
    return _CACHE["d"]


def test_fig5_report(benchmark):
    data = benchmark.pedantic(_data, rounds=1, iterations=1)
    emit("FIGURE 5 — decomp-min-CC phase breakdown (40h)", ascii_series(data))
    assert set(data) == set(BREAKDOWN_GRAPHS)


@pytest.mark.parametrize("gname", BREAKDOWN_GRAPHS)
def test_fig5_bfs_phases_dominate(benchmark, gname):
    phases = benchmark.pedantic(_data, rounds=1, iterations=1)[gname]
    total = sum(phases.values())
    bfs = phases["bfsPhase1"] + phases["bfsPhase2"]
    assert bfs > 0.45 * total, phases
    assert phases["bfsPhase1"] > phases["bfsPhase2"], phases


@pytest.mark.parametrize("gname", BREAKDOWN_GRAPHS)
def test_fig5_all_phases_present(benchmark, gname):
    phases = benchmark.pedantic(_data, rounds=1, iterations=1)[gname]
    for key in ("init", "bfsPre", "bfsPhase1", "bfsPhase2", "contractGraph"):
        assert key in phases
        assert phases[key] >= 0.0
