"""Figure 6 — 40-core phase breakdown of decomp-arb-CC.

The single bfsMain phase replaces decomp-min's two; the paper reads
55-75% of the time there, and attributes decomp-arb's win over
decomp-min precisely to this part shrinking (one pass over the edges,
single-word state).
"""

import pytest

from benchmarks.conftest import SCALE, emit
from repro.experiments import ascii_series, fig5_breakdown_min, fig6_breakdown_arb
from repro.experiments.figures import BREAKDOWN_GRAPHS

_CACHE = {}


def _data():
    if "d" not in _CACHE:
        _CACHE["d"] = fig6_breakdown_arb(scale=SCALE)
    return _CACHE["d"]


def test_fig6_report(benchmark):
    data = benchmark.pedantic(_data, rounds=1, iterations=1)
    emit("FIGURE 6 — decomp-arb-CC phase breakdown (40h)", ascii_series(data))
    assert set(data) == set(BREAKDOWN_GRAPHS)


@pytest.mark.parametrize("gname", BREAKDOWN_GRAPHS)
def test_fig6_bfs_main_dominates(benchmark, gname):
    phases = benchmark.pedantic(_data, rounds=1, iterations=1)[gname]
    total = sum(phases.values())
    assert phases["bfsMain"] > 0.35 * total, phases


@pytest.mark.parametrize("gname", BREAKDOWN_GRAPHS)
def test_fig6_savings_come_from_the_bfs(benchmark, gname):
    benchmark.pedantic(_data, rounds=1, iterations=1)
    """decomp-arb's bfsMain < decomp-min's bfsPhase1+bfsPhase2 (paper:
    'the savings in running time of decomp-arb-CC comes from this part
    of the computation')."""
    arb = _data()[gname]
    min_phases = fig5_breakdown_min(graphs=[gname], scale=SCALE)[gname]
    assert arb["bfsMain"] < min_phases["bfsPhase1"] + min_phases["bfsPhase2"]
