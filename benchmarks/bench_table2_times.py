"""Table 2 — single-thread and 40-core times for all eight implementations.

Regenerates the paper's headline table: simulated seconds at (1) and
(40h) for every implementation on every input graph, from one real run
per cell (DESIGN.md §5), and asserts the paper's qualitative claims:

* decomp-arb-CC and decomp-arb-hybrid-CC outperform decomp-min-CC;
* decomp-arb-hybrid-CC gains ~2x on the dense low-diameter graphs;
* parallel-SF-PRM beats parallel-SF-PBBS;
* the direction-optimizing BFS baselines win on dense single-component
  graphs and collapse on line;
* the decomposition implementations' self-relative speedups land in a
  good parallel band on every graph (the paper reports 18-39x).

Each implementation is also wall-clock benchmarked on the "random"
input via pytest-benchmark.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import (
    PAPER_ALGORITHM_ORDER,
    format_table2,
    get_algorithm,
    run_table2,
)

_TABLE_CACHE = {}


def _table(suite):
    key = id(suite)
    if key not in _TABLE_CACHE:
        _TABLE_CACHE[key] = run_table2(graphs=suite)
    return _TABLE_CACHE[key]


def test_table2_report(suite, benchmark):
    table = benchmark.pedantic(lambda: _table(suite), rounds=1, iterations=1)
    emit("TABLE 2 — Times (simulated seconds) for connected components",
         format_table2(table))

    def t(algo, g, col):
        return table[algo][g][col]

    # --- the paper's qualitative claims (shape checks) ---------------
    for g in suite:
        assert t("decomp-arb-CC", g, "1") <= t("decomp-min-CC", g, "1") * 1.15
        assert t("parallel-SF-PRM", g, "40h") < t("parallel-SF-PBBS", g, "40h")
    # hybrid's dense-graph advantage (paper: ~2x on rMat2/com-Orkut;
    # the exact ratio is seed-dependent at reproduction scale)
    for g in ("rMat2", "com-Orkut"):
        ratio = t("decomp-arb-CC", g, "40h") / t("decomp-arb-hybrid-CC", g, "40h")
        assert ratio > 1.35, (g, ratio)
    # direction-optimizing BFS dominates dense single-component graphs
    for g in ("rMat2", "com-Orkut"):
        assert t("hybrid-BFS-CC", g, "40h") < t("decomp-arb-hybrid-CC", g, "40h")
    # ... and collapses on the diameter adversary
    assert t("decomp-arb-hybrid-CC", "line", "40h") < t("hybrid-BFS-CC", "line", "40h")
    assert t("decomp-arb-hybrid-CC", "line", "40h") < t("serial-SF", "line", "1")
    # self-relative speedups in a plausible parallel band
    for algo in ("decomp-arb-CC", "decomp-arb-hybrid-CC", "decomp-min-CC"):
        for g in suite:
            s = t(algo, g, "1") / t(algo, g, "40h")
            assert 12.0 < s < 45.0, (algo, g, s)


@pytest.mark.parametrize("algo", PAPER_ALGORITHM_ORDER)
def test_wall_clock_on_random(benchmark, suite, algo):
    """Real (single-core NumPy) running time of each implementation."""
    graph = suite["random"]
    spec = get_algorithm(algo)
    kwargs = {"beta": 0.2, "seed": 1} if algo.startswith("decomp-") else {}
    result = benchmark.pedantic(
        lambda: spec.run(graph, **kwargs), rounds=1, iterations=1
    )
    assert result.labels.shape[0] == graph.num_vertices
