"""Benches for the library's extensions beyond the paper's scope.

* **spanning forest extraction** (the converse of the paper's footnote
  1): cost of producing a verified spanning forest via decomposition,
  against the sequential union-find forest;
* **union-find compression strategies** (the Patwary et al. design
  axis behind the parallel-SF-PRM baseline): sequential op counts per
  strategy on the same union workload;
* **low-diameter decomposition quality**: partitions/cut-fraction/radius
  across the input suite at the default beta.
"""


from benchmarks.conftest import emit
from repro.connectivity import (
    decomp_spanning_forest,
    serial_spanning_forest,
    verify_spanning_forest,
)
from repro.connectivity.union_find import COMPRESSION_STRATEGIES, UnionFind
from repro.decomp import low_diameter_decomposition
from repro.pram import PAPER_MACHINE, MachineModel, tracking


def test_spanning_forest_extraction(benchmark, suite):
    graph = suite["random"]
    with tracking() as t_decomp:
        src, dst = benchmark.pedantic(
            lambda: decomp_spanning_forest(graph, beta=0.2, seed=1),
            rounds=1,
            iterations=1,
        )
    verify_spanning_forest(graph, src, dst)
    with tracking() as t_serial:
        serial_spanning_forest(graph)
    t40 = PAPER_MACHINE.time_seconds(t_decomp)
    t1_serial = MachineModel(threads=1).time_seconds(t_serial)
    emit(
        "EXTENSION — spanning forest via decomposition (random)",
        f"  forest edges          : {src.size}\n"
        f"  decomp forest T(40h)  : {t40:.6f}s\n"
        f"  serial-SF forest T(1) : {t1_serial:.6f}s\n"
        f"  parallel advantage    : {t1_serial / t40:.1f}x",
    )
    assert t40 < t1_serial  # the point of the parallel algorithm


def test_union_find_strategy_ops(benchmark, suite):
    graph = suite["3D-grid"]
    from repro.graphs.ops import edges_as_undirected_pairs

    src, dst = edges_as_undirected_pairs(graph)
    pairs = list(zip(src.tolist(), dst.tolist()))

    def ops_for(strategy: str) -> int:
        with tracking() as t:
            uf = UnionFind(graph.num_vertices, compression=strategy)
            for u, v in pairs:
                uf.union(u, v)
            uf.flush_costs()
        return int(t.work_by_kind()["seq"])

    results = {s: ops_for(s) for s in COMPRESSION_STRATEGIES}
    benchmark.pedantic(lambda: ops_for("halving"), rounds=1, iterations=1)
    emit(
        "EXTENSION — union-find compression strategies (3D-grid, seq ops)",
        "\n".join(f"  {s:<10}: {ops:,}" for s, ops in results.items()),
    )
    # every compressing strategy beats no compression
    for s in ("halving", "splitting", "full"):
        assert results[s] <= results["none"]


def test_ldd_quality_suite(benchmark, suite):
    def run():
        rows = {}
        for name, graph in suite.items():
            ldd = low_diameter_decomposition(graph, beta=0.2, seed=1)
            rows[name] = ldd
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "EXTENSION — low-diameter decomposition quality (beta=0.2)",
        "\n".join(
            f"  {name:<10} partitions={ldd.num_partitions:>7,} "
            f"cut={ldd.inter_edge_fraction:6.4f} (bound {ldd.fraction_bound:.1f}) "
            f"radius={ldd.max_radius:>4} (bound ~{ldd.radius_bound:.0f})"
            for name, ldd in rows.items()
        ),
    )
    for name, ldd in rows.items():
        # statistical bounds with generous single-run slack
        assert ldd.inter_edge_fraction <= ldd.fraction_bound * 1.5 + 0.01, name
        assert ldd.max_radius <= 6 * ldd.radius_bound, name
