"""Figure 4 — number of remaining edges per iteration versus beta.

Regenerates the four panels (random, rMat, 3D-grid, line) for
decomp-arb-hybrid-CC and asserts the paper's observations:

* the edge count drops monotonically each iteration, faster for
  smaller beta (fewer phases to the base case);
* on every graph except line, duplicate-edge removal makes the drop
  far sharper than the 2*beta upper bound;
* the line graph (no duplicate edges to merge) tracks its bound much
  more closely, needing many more iterations at the same beta.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import ascii_series, fig4_edges_remaining

PANELS = ["random", "rMat", "3D-grid", "line"]

_CACHE = {}


def _series(suite, gname):
    if gname not in _CACHE:
        _CACHE[gname] = fig4_edges_remaining(suite[gname], gname)
    return _CACHE[gname]


@pytest.mark.parametrize("gname", PANELS)
def test_fig4_panel(benchmark, suite, gname):
    series = benchmark.pedantic(lambda: _series(suite, gname), rounds=1, iterations=1)
    pretty = {
        f"beta={b}": {i: m for i, m in enumerate(vals)}
        for b, vals in series.items()
    }
    emit(f"FIGURE 4 — edges remaining per iteration on {gname}",
         ascii_series(pretty))

    for beta, vals in series.items():
        # strictly decreasing edge counts
        assert all(a > b for a, b in zip(vals, vals[1:])), (gname, beta)
        # every per-iteration drop respects the 2*beta expectation bound
        # generously (it is an expectation; line tracks it closest)
        for a, b in zip(vals, vals[1:]):
            assert b <= max(2 * beta * a * 2.0, 64), (gname, beta, a, b)

    if gname != "line":
        # duplicate removal: the first contraction beats the bound by a
        # wide margin on non-line graphs
        for beta, vals in series.items():
            if len(vals) >= 2:
                assert vals[1] < 0.5 * 2 * beta * vals[0] + 64, (gname, beta)

    # smaller beta => no more iterations than larger beta (weak check)
    betas = sorted(series)
    assert len(series[betas[0]]) <= len(series[betas[-1]]) + 1


def test_fig4_line_needs_more_iterations_than_random(benchmark, suite):
    rnd = benchmark.pedantic(lambda: _series(suite, "random"), rounds=1, iterations=1)
    lin = _series(suite, "line")
    common = set(rnd) & set(lin)
    assert common, "line and random sweeps share at least one beta"
    for beta in common:
        assert len(lin[beta]) >= len(rnd[beta])
