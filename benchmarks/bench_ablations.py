"""Ablation benches for the design choices DESIGN.md calls out.

Not paper artifacts, but quantifications of the engineering claims the
paper makes in prose:

* **dense-switch threshold** (§4: 20%): sweep the hybrid's threshold
  and confirm 0.2 is near the bottom of the curve on a dense graph;
* **duplicate-edge removal** (§3: "the number of edges decreases by a
  constant factor ... even if we do not remove duplicates"): CC works
  without dedup but needs more iterations/edges;
* **schedule simulation** (§4): the permutation simulation is not
  slower than exact exponential draws;
* **approximate compaction** (§3 remark): packing with O(log* n)
  charged depth lowers total depth;
* **writeMin pair layout** (§4: pairs avoid "an additional cache miss
  per vertex visit"): quantified as decomp-min's gather overhead over
  decomp-arb.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.connectivity import decomp_cc
from repro.decomp import decomp_arb, decomp_min
from repro.experiments import profile_run
from repro.pram import PAPER_MACHINE, tracking

THRESHOLDS = [0.05, 0.1, 0.2, 0.4, 0.8]


def test_ablation_dense_threshold(benchmark, suite):
    graph = suite["com-Orkut"]

    def sweep():
        out = {}
        for th in THRESHOLDS:
            prof = profile_run(
                "decomp-arb-hybrid-CC",
                graph,
                beta=0.2,
                seed=1,
                verify=False,
                dense_threshold=th,
            )
            out[th] = prof.seconds_at("40h")
        return out

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ABLATION — hybrid dense-switch threshold (com-Orkut, 40h seconds)",
        "\n".join(f"  threshold={t:4.2f}: {s:.6f}" for t, s in times.items()),
    )
    best = min(times, key=times.get)
    assert times[0.2] <= 2.0 * times[best]
    # an effectively-disabled switch (0.8) must be slower than 0.2
    assert times[0.2] < times[0.8]


def test_ablation_duplicate_removal(benchmark, suite):
    graph = suite["random"]

    def run(dedup: bool):
        return decomp_cc(
            graph, 0.5, variant="arb", seed=2, remove_duplicates=dedup
        )

    with_dedup = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    without = run(False)
    emit(
        "ABLATION — duplicate-edge removal during contraction (random)",
        f"  with dedup   : iterations={with_dedup.iterations} "
        f"edges/iter={with_dedup.edges_per_iteration}\n"
        f"  without dedup: iterations={without.iterations} "
        f"edges/iter={without.edges_per_iteration}",
    )
    # both correct, dedup contracts at least as fast
    assert with_dedup.num_components == without.num_components
    assert with_dedup.iterations <= without.iterations
    if len(with_dedup.edges_per_iteration) > 1 and len(without.edges_per_iteration) > 1:
        assert (
            with_dedup.edges_per_iteration[1] <= without.edges_per_iteration[1]
        )


def test_ablation_schedule_modes(benchmark, suite):
    graph = suite["3D-grid"]

    def run(mode):
        prof = profile_run(
            "decomp-arb-CC", graph, beta=0.2, seed=3, verify=False,
            schedule_mode=mode,
        )
        return prof.seconds_at("40h")

    t_perm = benchmark.pedantic(lambda: run("permutation"), rounds=1, iterations=1)
    t_expo = run("exponential")
    emit(
        "ABLATION — start-time schedule (3D-grid, 40h seconds)",
        f"  permutation simulation: {t_perm:.6f}\n"
        f"  exact exponential      : {t_expo:.6f}",
    )
    assert t_perm <= 1.5 * t_expo


def test_ablation_approximate_compaction(benchmark, suite):
    """The paper's O(log^2 n log* n) remark, as a depth-accounting toggle."""
    from repro.primitives.pack import pack_index

    flags = np.ones(1 << 18, dtype=bool)
    with tracking() as exact:
        benchmark.pedantic(
            lambda: [pack_index(flags) for _ in range(50)], rounds=1, iterations=1
        )
    with tracking() as approx:
        for _ in range(50):
            pack_index(flags, approximate=True)
    emit(
        "ABLATION — approximate compaction depth",
        f"  exact packing depth : {exact.total_depth():.0f} units\n"
        f"  approx packing depth: {approx.total_depth():.0f} units",
    )
    assert approx.total_depth() < 0.5 * exact.total_depth()


def test_ablation_pair_layout_traffic(benchmark, suite):
    """decomp-min's (delta', C) pair costs extra memory traffic per
    visit; quantify its gather overhead over decomp-arb."""
    graph = suite["random"]
    with tracking() as t_min:
        benchmark.pedantic(
            lambda: decomp_min(graph, beta=0.2, seed=1), rounds=1, iterations=1
        )
    with tracking() as t_arb:
        decomp_arb(graph, beta=0.2, seed=1)
    g_min = t_min.work_by_kind()["gather"]
    g_arb = t_arb.work_by_kind()["gather"]
    a_min = t_min.work_by_kind()["atomic"]
    a_arb = t_arb.work_by_kind()["atomic"]
    emit(
        "ABLATION — decomp-min pair-layout traffic vs decomp-arb (random)",
        f"  gather work: min={g_min:.0f}  arb={g_arb:.0f}\n"
        f"  atomic work: min={a_min:.0f}  arb={a_arb:.0f}",
    )
    t1_min = PAPER_MACHINE.time_seconds(t_min)
    t1_arb = PAPER_MACHINE.time_seconds(t_arb)
    assert t1_min > t1_arb  # the paper's Table 2 ordering
    assert a_min > a_arb  # writeMin marks every unvisited-target edge
