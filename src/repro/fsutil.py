"""Atomic file-write helpers (write to a temp file, ``os.replace``).

A sweep checkpoint or a saved graph must never be observed half-written
— a crash mid-write would otherwise leave a file that parses as a
truncated (and silently wrong) artifact.  POSIX ``rename``/``replace``
within one directory is atomic, so every writer in this package funnels
through these helpers: the payload goes to a uniquely named sibling
temp file first and is moved over the destination only once fully
flushed.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Iterator, Union

__all__ = ["atomic_write_path", "atomic_write_text"]

PathLike = Union[str, os.PathLike]


@contextlib.contextmanager
def atomic_write_path(path: PathLike, suffix: str = "") -> Iterator[Path]:
    """Yield a temp path next to *path*; on clean exit, replace *path*.

    The temp file lives in the destination's directory (``os.replace``
    must not cross filesystems) and carries the pid so concurrent
    writers cannot collide.  *suffix* is appended to the temp name for
    writers that key behavior on the extension (``np.savez`` appends
    ``.npz`` unless the name already ends with it).  If the body
    raises, the temp file is removed and the destination is untouched.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}{suffix}")
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        with contextlib.suppress(FileNotFoundError):
            tmp.unlink()


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace *path* with *text* (tmp + ``os.replace``)."""
    with atomic_write_path(path) as tmp:
        tmp.write_text(text, encoding=encoding)
