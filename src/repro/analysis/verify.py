"""Labeling verification: is a claimed connectivity labeling correct?

Ground truth comes from this package's own sequential BFS sweep (no
external dependency in the library; the test suite additionally
cross-checks against networkx).  Two layers:

* :func:`labelings_equivalent` — do two labelings induce the same
  partition of the vertices?  (Labels are arbitrary names.)
* :func:`verify_labeling` — full check against the graph: every edge
  must join same-labeled vertices (the labeling *refines* into
  components) and same-labeled vertices must be connected (no
  over-merging), established by comparing against the BFS ground
  truth.  Raises :class:`~repro.errors.VerificationError` with a
  counterexample on failure.

Also exposes :func:`ground_truth_labels`, the reference sequential
implementation (iterative BFS, O(n + m)).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.connectivity.base import canonicalize_labels
from repro.errors import VerificationError
from repro.graphs.csr import CSRGraph

__all__ = [
    "ground_truth_labels",
    "labelings_equivalent",
    "verify_labeling",
    "verify_decomposition",
]


def ground_truth_labels(graph: CSRGraph) -> np.ndarray:
    """Reference labeling via sequential BFS (component ids in visit order)."""
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    offsets, targets = graph.offsets, graph.targets
    next_label = 0
    for s in range(n):
        if labels[s] != -1:
            continue
        labels[s] = next_label
        stack = [s]
        while stack:
            u = stack.pop()
            for w in targets[offsets[u] : offsets[u + 1]]:
                if labels[w] == -1:
                    labels[w] = next_label
                    stack.append(int(w))
        next_label += 1
    return labels


def labelings_equivalent(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff *a* and *b* induce the same partition of the vertices."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(canonicalize_labels(a), canonicalize_labels(b)))


def verify_labeling(
    graph: CSRGraph, labels: np.ndarray, reference: Optional[np.ndarray] = None
) -> None:
    """Raise :class:`VerificationError` unless *labels* solves the problem.

    Checks, in order:

    1. shape and definedness (one finite label per vertex);
    2. edge consistency: no edge may cross labels (otherwise the
       labeling splits a component);
    3. partition equality with the ground truth (otherwise it merges
       two components).
    """
    labels = np.asarray(labels)
    n = graph.num_vertices
    if labels.shape != (n,):
        raise VerificationError(
            f"labels shape {labels.shape} != ({n},) for this graph",
            reason="shape",
        )
    src, dst = graph.edge_array()
    crossing = labels[src] != labels[dst]
    if crossing.any():
        i = int(np.flatnonzero(crossing)[0])
        raise VerificationError(
            f"edge ({int(src[i])}, {int(dst[i])}) crosses labels "
            f"{int(labels[src[i]])} != {int(labels[dst[i]])}",
            reason="crossing-edge",
        )
    truth = reference if reference is not None else ground_truth_labels(graph)
    if not labelings_equivalent(labels, truth):
        got = int(np.unique(labels).size)
        want = int(np.unique(truth).size)
        raise VerificationError(
            f"labeling partitions vertices into {got} classes; "
            f"the graph has {want} components",
            reason="partition-mismatch",
        )


def verify_decomposition(
    graph: CSRGraph, labels: np.ndarray, check_connected: bool = True
) -> int:
    """Validate a (beta, d)-decomposition's structural invariants.

    Every vertex must be labeled with a vertex id inside its own
    partition (the BFS center), and — when *check_connected* — each
    partition must induce a connected subgraph (it was grown by one
    BFS).  Returns the number of inter-partition directed edges so
    callers can test the beta bound statistically.
    """
    labels = np.asarray(labels)
    n = graph.num_vertices
    if labels.shape != (n,):
        raise VerificationError(
            "decomposition labels must cover all vertices", reason="shape"
        )
    if n == 0:
        return 0
    if labels.min() < 0 or labels.max() >= n:
        raise VerificationError(
            "decomposition labels must be vertex ids", reason="label-range"
        )
    centers = np.unique(labels)
    if not np.array_equal(labels[centers], centers):
        bad = centers[labels[centers] != centers][0]
        raise VerificationError(
            f"center {int(bad)} is not in its own partition",
            reason="center-outside-partition",
        )
    if check_connected:
        # One BFS inside each partition, restricted to same-label edges.
        seen = np.zeros(n, dtype=bool)
        offsets, targets = graph.offsets, graph.targets
        for c in centers:
            seen[c] = True
            stack = [int(c)]
            while stack:
                u = stack.pop()
                for w in targets[offsets[u] : offsets[u + 1]]:
                    w = int(w)
                    if not seen[w] and labels[w] == labels[u]:
                        seen[w] = True
                        stack.append(w)
        if not seen.all():
            bad = int(np.flatnonzero(~seen)[0])
            raise VerificationError(
                f"vertex {bad} cannot reach its center {int(labels[bad])} "
                "inside its own partition",
                reason="disconnected-partition",
            )
    src, dst = graph.edge_array()
    return int(np.count_nonzero(labels[src] != labels[dst]))
