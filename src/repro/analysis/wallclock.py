"""Wall-clock benchmarking of the execution backends.

The simulated cost model answers "what would this cost on a CRCW
PRAM?"; this module answers the orthogonal engineering question "how
long does the NumPy simulation itself take?" — the number the
``fast`` execution backend (:mod:`repro.engine.backend`) exists to
shrink.  It times

* the hot kernels in isolation (CAS-race resolution, the stable radix
  permutation, frontier expansion, hash-table dedup) under each
  backend, and
* end-to-end connectivity (``decomp-arb-CC``) on a few paper graphs
  under each backend, cross-checking that the labelings are
  bit-identical — timing runs double as parity evidence.

:func:`run_wallclock_suite` packages both into one JSON-shaped dict
(written to ``BENCH_wallclock.json`` by ``benchmarks/bench_wallclock.py``,
which also asserts the speedup floor).  See docs/performance.md for how
to read the output.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.connectivity import decomp_cc
from repro.engine.backend import (
    BACKENDS,
    DEFAULT_BACKEND_NAME,
    use_backend,
)
from repro.engine.parallel import DEFAULT_CHUNK_SIZE
from repro.engine.workspace import Workspace, make_workspace
from repro.experiments.registry import build_graph
from repro.graphs.generators import random_kregular
from repro.pram.cost import tracking
from repro.primitives.atomics import first_winner, write_min
from repro.primitives.hashing import dedup
from repro.primitives.sort import radix_argsort
from repro.runtime.context import current_context

__all__ = [
    "DEFAULT_GRAPHS",
    "DEFAULT_WARMUP",
    "DEFAULT_WORKER_SWEEP",
    "best_of",
    "kernel_microbench",
    "end_to_end_bench",
    "run_wallclock_suite",
    "parallel_kernel_bench",
    "parallel_end_to_end_bench",
    "run_parallel_suite",
    "trace_run",
    "write_json",
]

#: End-to-end graphs: the paper input the fast backend targets (rMat's
#: many components stress every layer), a dense single-component input,
#: and a mesh.
DEFAULT_GRAPHS: List[str] = ["rMat", "random", "3D-grid"]

#: Kernel-microbench problem size per scale preset (stream length 2n).
_SCALE_N = {"tiny": 1 << 14, "small": 1 << 17, "medium": 1 << 20}

#: The thread-scaling sweep of the parallel suite (the paper's scaling
#: story in miniature: 1 is the chunking-overhead check, 8 the
#: oversubscription check on typical 4-core CI boxes).
DEFAULT_WORKER_SWEEP: Tuple[int, ...] = (1, 2, 4, 8)


def _environment_meta() -> Dict[str, object]:
    """The machine/context facts every bench artifact must record."""
    ctx = current_context()
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
        "workers": ctx.workers,
        "chunk_size": DEFAULT_CHUNK_SIZE,
        "context": {
            "backend": ctx.backend.name,
            "sanitize": ctx.sanitizer is not None,
            "fault_plan": ctx.fault_plan is not None,
            "seed": ctx.seed,
        },
    }


#: Discarded warmup iterations before any timed repeat (see best_of).
DEFAULT_WARMUP = 1


def best_of(fn: Callable[[], object], repeats: int, warmup: int = DEFAULT_WARMUP) -> float:
    """Best (minimum) wall-clock seconds of *repeats* calls of *fn*.

    Minimum-of-k is the standard noise filter for single-process
    benchmarks: every source of interference only ever adds time.  But
    min-of-k cannot filter what every repeat shares — and it filters
    *nothing* at ``repeats=1`` (the ``--quick`` CI mode), where the
    cold first call IS the reported number.  So the first *warmup*
    calls run untimed and are discarded: they pay the one-time costs
    (arena allocation, NumPy internal setup, cache warm-in) the
    steady-state regime the benchmarks compare does not contain.
    """
    for _ in range(max(0, warmup)):
        fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _timed_backends(
    make_fn: Callable[[str], Callable[[], object]],
    repeats: int,
    backends: Sequence[str],
) -> Dict[str, float]:
    """Time one kernel under each backend (warmup + best-of, per backend).

    :func:`best_of`'s discarded warmup lets the fast backend's arena
    reach steady state — the regime the backend optimizes — and
    equalizes any one-time NumPy costs for the reference side.
    """
    out: Dict[str, float] = {}
    for name in backends:
        with use_backend(name):
            out[name] = best_of(make_fn(name), repeats)
    return out


def kernel_microbench(
    scale: str = "small",
    repeats: int = 3,
    backends: Sequence[str] = ("reference", "fast"),
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Per-kernel seconds under each backend, plus the speedup ratio.

    Returns ``{kernel: {backend: seconds, ..., "speedup": ref/fast}}``.
    All kernels compute identical outputs under every backend (pinned
    by ``tests/test_backend_parity.py``); only the wall-clock differs.
    """
    n = _SCALE_N.get(scale, _SCALE_N["small"])
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, n, size=2 * n).astype(np.int64)
    keys = rng.integers(0, n, size=2 * n).astype(np.int64)
    graph = random_kregular(n, k=8, seed=seed)
    frontier = np.arange(n, dtype=np.int64)

    def make_first_winner(name: str) -> Callable[[], object]:
        ws = make_workspace(BACKENDS[name], n)
        return lambda: first_winner(idx, workspace=ws)

    def make_argsort(name: str) -> Callable[[], object]:
        return lambda: radix_argsort(keys, max_key=n - 1)

    def make_expand(name: str) -> Callable[[], object]:
        ws = Workspace(n) if BACKENDS[name].use_workspace else None
        return lambda: graph.expand(frontier, workspace=ws)

    def make_dedup(name: str) -> Callable[[], object]:
        return lambda: dedup(keys)

    kernels = {
        "first_winner": make_first_winner,
        "radix_argsort": make_argsort,
        "expand": make_expand,
        "hash_dedup": make_dedup,
    }
    out: Dict[str, Dict[str, float]] = {}
    for kname, make_fn in kernels.items():
        times = _timed_backends(make_fn, repeats, backends)
        times["speedup"] = (
            times["reference"] / times["fast"]
            if times.get("fast", 0.0) > 0 and "reference" in times
            else float("nan")
        )
        out[kname] = times
    return out


def end_to_end_bench(
    scale: str = "small",
    repeats: int = 3,
    graphs: Optional[Sequence[str]] = None,
    backends: Sequence[str] = ("reference", "fast"),
    beta: float = 0.2,
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    """End-to-end ``decomp-arb-CC`` seconds per graph per backend.

    Each timed run executes under a fresh cost tracker (as profiled
    runs do).  The labelings produced under every backend are asserted
    bit-identical before any number is reported — a wrong fast backend
    can never produce a "speedup".
    """
    graphs = list(graphs) if graphs is not None else list(DEFAULT_GRAPHS)
    out: Dict[str, Dict[str, float]] = {}
    for gname in graphs:
        graph = build_graph(gname, scale)
        labels: Dict[str, np.ndarray] = {}

        def make_run(name: str) -> Callable[[], object]:
            def run():
                with tracking():
                    result = decomp_cc(graph, beta=beta, seed=seed)
                labels[name] = result.labels
                return result

            return run

        times = _timed_backends(make_run, repeats, backends)
        first, *rest = backends
        for other in rest:
            if not np.array_equal(labels[first], labels[other]):
                raise AssertionError(
                    f"backend parity violated on {gname}: "
                    f"{first} and {other} labelings differ"
                )
        times["speedup"] = (
            times["reference"] / times["fast"]
            if times.get("fast", 0.0) > 0 and "reference" in times
            else float("nan")
        )
        out[gname] = times
    return out


def run_wallclock_suite(
    scale: str = "small",
    repeats: int = 3,
    graphs: Optional[Sequence[str]] = None,
    backends: Sequence[str] = ("reference", "fast"),
    beta: float = 0.2,
    seed: int = 1,
) -> Dict[str, object]:
    """The full wall-clock trajectory: kernels + end-to-end, one dict.

    JSON-shaped; ``benchmarks/bench_wallclock.py`` writes it to
    ``BENCH_wallclock.json`` and asserts the speedup floors.  ``meta``
    records the execution environment (python/numpy versions, platform)
    and the ambient execution-context configuration, so archived bench
    artifacts are comparable across machines and context setups.
    """
    meta: Dict[str, object] = {
        "scale": scale,
        "repeats": repeats,
        "warmup": DEFAULT_WARMUP,
        "beta": beta,
        "seed": seed,
        "backends": list(backends),
        "default_backend": DEFAULT_BACKEND_NAME,
        "algorithm": "decomp-arb-CC",
        "timer": "best-of wall clock (time.perf_counter), discarded warmup",
    }
    meta.update(_environment_meta())
    return {
        "meta": meta,
        "kernels": kernel_microbench(
            scale=scale, repeats=repeats, backends=backends, seed=seed
        ),
        "end_to_end": end_to_end_bench(
            scale=scale,
            repeats=repeats,
            graphs=graphs,
            backends=backends,
            beta=beta,
            seed=seed,
        ),
    }


# -- the thread-scaling (parallel backend) suite ---------------------------


def parallel_kernel_bench(
    scale: str = "small",
    repeats: int = 3,
    workers: Sequence[int] = DEFAULT_WORKER_SWEEP,
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Per-kernel seconds: serial ``fast`` vs ``parallel`` at each width.

    Returns ``{kernel: {"fast": s, "parallel@N": s, ..., "speedup@N":
    fast/parallel@N}}``.  Every configuration computes identical
    outputs (the chunked kernels' determinism contract); only the
    wall-clock differs.
    """
    n = _SCALE_N.get(scale, _SCALE_N["small"])
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, n, size=2 * n).astype(np.int64)
    keys = rng.integers(0, n, size=2 * n).astype(np.int64)
    values = rng.integers(0, 1 << 30, size=2 * n).astype(np.int64)
    pair = np.empty(n, dtype=np.int64)
    graph = random_kregular(n, k=8, seed=seed)
    frontier = np.arange(n, dtype=np.int64)

    def make_first_winner(name: str, w: int) -> Callable[[], object]:
        ws = make_workspace(BACKENDS[name], n, w)
        return lambda: first_winner(idx, workspace=ws)

    def make_write_min(name: str, w: int) -> Callable[[], object]:
        ws = make_workspace(BACKENDS[name], n, w)

        def run() -> None:
            pair.fill(np.iinfo(np.int64).max)
            write_min(pair, idx, values, workspace=ws)

        return run

    def make_expand(name: str, w: int) -> Callable[[], object]:
        ws = make_workspace(BACKENDS[name], n, w)
        return lambda: graph.expand(frontier, workspace=ws)

    def make_dedup(name: str, w: int) -> Callable[[], object]:
        return lambda: dedup(keys)

    kernels = {
        "first_winner": make_first_winner,
        "write_min": make_write_min,
        "expand": make_expand,
        "hash_dedup": make_dedup,
    }
    configs: List[Tuple[str, str, int]] = [("fast", "fast", 1)] + [
        ("parallel", f"parallel@{w}", w) for w in workers
    ]
    out: Dict[str, Dict[str, float]] = {}
    for kname, make_fn in kernels.items():
        times: Dict[str, float] = {}
        for backend_name, label, w in configs:
            ctx = current_context().child(
                backend=BACKENDS[backend_name], workers=w
            )
            with ctx.activate():
                # best_of's warmup lets the arena + shard pool reach
                # steady state before timing starts.
                times[label] = best_of(make_fn(backend_name, w), repeats)
        for w in workers:
            par = times.get(f"parallel@{w}", 0.0)
            times[f"speedup@{w}"] = (
                times["fast"] / par if par > 0 else float("nan")
            )
        out[kname] = times
    return out


def parallel_end_to_end_bench(
    scale: str = "small",
    repeats: int = 3,
    graphs: Optional[Sequence[str]] = None,
    workers: Sequence[int] = DEFAULT_WORKER_SWEEP,
    beta: float = 0.2,
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    """End-to-end ``decomp-arb-CC``: measured and predicted scaling.

    Per graph: seconds under serial ``fast`` and under ``parallel`` at
    each worker count (labelings asserted bit-identical first — a
    wrong chunked kernel can never report a "speedup"), plus the cost
    model's *predicted* speedup at the same thread counts
    (``MachineModel.with_threads`` over the run's (work, depth)
    profile) — the simulation finally validated against real hardware.
    """
    from repro.runtime.session import execute_profiled

    graphs = list(graphs) if graphs is not None else list(DEFAULT_GRAPHS)
    out: Dict[str, Dict[str, float]] = {}
    for gname in graphs:
        graph = build_graph(gname, scale)
        labels: Dict[str, np.ndarray] = {}

        def make_run(backend_name: str, w: int, label: str) -> Callable[[], object]:
            def run() -> object:
                with tracking():
                    result = decomp_cc(graph, beta=beta, seed=seed)
                labels[label] = result.labels
                return result

            return run

        times: Dict[str, float] = {}
        for backend_name, label, w in [("fast", "fast", 1)] + [
            ("parallel", f"parallel@{w}", w) for w in workers
        ]:
            ctx = current_context().child(
                backend=BACKENDS[backend_name], workers=w
            )
            with ctx.activate():
                times[label] = best_of(make_run(backend_name, w, label), repeats)
            if not np.array_equal(labels["fast"], labels[label]):
                raise AssertionError(
                    f"parallel parity violated on {gname}: fast and "
                    f"{label} labelings differ"
                )
        # Cost-model prediction from one profiled run's (work, depth).
        profile = execute_profiled(
            "decomp-arb-CC",
            graph,
            graph_name=gname,
            backend="fast",
            beta=beta,
            seed=seed,
        )
        predicted_base = profile.seconds_at(1)
        for w in workers:
            par = times.get(f"parallel@{w}", 0.0)
            times[f"speedup@{w}"] = (
                times["fast"] / par if par > 0 else float("nan")
            )
            predicted_w = profile.seconds_at(w)
            times[f"predicted_speedup@{w}"] = (
                predicted_base / predicted_w if predicted_w > 0 else float("nan")
            )
        out[gname] = times
    return out


def run_parallel_suite(
    scale: str = "small",
    repeats: int = 3,
    graphs: Optional[Sequence[str]] = None,
    workers: Sequence[int] = DEFAULT_WORKER_SWEEP,
    beta: float = 0.2,
    seed: int = 1,
) -> Dict[str, object]:
    """The thread-scaling trajectory: kernels + end-to-end, one dict.

    JSON-shaped; ``benchmarks/bench_parallel.py`` writes it to
    ``BENCH_parallel.json``.  ``meta.cpu_count`` records how many cores
    the sweep actually had — read any speedup column against it (a
    1-core container cannot beat 1.0x no matter how good the chunking
    is, and the artifact says so honestly).
    """
    meta: Dict[str, object] = {
        "scale": scale,
        "repeats": repeats,
        "warmup": DEFAULT_WARMUP,
        "beta": beta,
        "seed": seed,
        "baseline": "fast",
        "worker_sweep": list(workers),
        "algorithm": "decomp-arb-CC",
        "timer": "best-of wall clock (time.perf_counter), discarded warmup",
    }
    meta.update(_environment_meta())
    return {
        "meta": meta,
        "kernels": parallel_kernel_bench(
            scale=scale, repeats=repeats, workers=workers, seed=seed
        ),
        "end_to_end": parallel_end_to_end_bench(
            scale=scale,
            repeats=repeats,
            graphs=graphs,
            workers=workers,
            beta=beta,
            seed=seed,
        ),
    }


def trace_run(
    scale: str = "small",
    graph_name: str = "rMat",
    beta: float = 0.2,
    seed: int = 1,
    path: Optional[str] = None,
) -> Dict[str, object]:
    """One traced ``decomp-arb-CC`` run: per-phase wall seconds + trace file.

    Runs a single profiled end-to-end connectivity run with an active
    :class:`repro.obs.Tracer`, optionally writes the Perfetto-loadable
    trace document to *path*, and returns ``{"phase_seconds": {...},
    "rounds": int, "events": int}`` — the wall-clock-per-phase
    breakdown ``benchmarks/bench_wallclock.py --trace`` attaches to the
    BENCH meta, so the archived artifact says *where* the end-to-end
    seconds went, not just how many there were.
    """
    from repro.obs import Metrics, Tracer, phase_totals, write_trace
    from repro.runtime.session import execute_profiled

    graph = build_graph(graph_name, scale)
    tracer, metrics = Tracer(), Metrics()
    with current_context().child(tracer=tracer, metrics=metrics).activate():
        prof = execute_profiled(
            "decomp-arb-CC", graph, graph_name=graph_name, beta=beta, seed=seed
        )
    summary: Dict[str, object] = {
        "graph": graph_name,
        "scale": scale,
        "phase_seconds": phase_totals(tracer),
        "rounds": len(tracer.spans("round")),
        "events": len(tracer.events),
        "wall_seconds": prof.wall_seconds,
    }
    if path is not None:
        meta = dict(summary)
        meta.update(
            {
                "algorithm": "decomp-arb-CC",
                "beta": beta,
                "seed": seed,
                "work": prof.tracker.total_work(),
                "depth": prof.tracker.total_depth(),
            }
        )
        write_trace(path, tracer, metrics, meta=meta)
    return summary


def write_json(payload: Dict[str, object], path: str) -> None:
    """Write *payload* as stable, human-diffable JSON."""
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
