"""Decomposition and connectivity statistics (Figure 4 and friends).

Quantities the paper analyses:

* **inter-component edge fraction** per DECOMP call — Theorem 2's
  2*beta*m bound (beta*m for Decomp-Min), tested statistically;
* **partition radii** — the O(log n / beta) diameter guarantee;
* **edges remaining per CC iteration** — Figure 4's series, including
  the observation that duplicate-edge removal makes the drop much
  sharper than the bound ("up to an order of magnitude more than
  predicted");
* component-size histograms for the workload tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.connectivity.base import ConnectivityResult
from repro.decomp.base import Decomposition
from repro.graphs.csr import CSRGraph

__all__ = [
    "DecompositionStats",
    "decomposition_stats",
    "partition_radii",
    "edge_decay_ratios",
    "component_histogram",
]


@dataclass
class DecompositionStats:
    """Quality metrics of one decomposition against its (beta, d) bounds."""

    num_partitions: int
    inter_edge_fraction: float  # undirected inter-edges / m
    max_radius: int  # hops from the worst vertex to its center
    mean_radius: float
    theoretical_fraction_bound: float  # beta or 2*beta
    theoretical_radius_bound: float  # O(log n / beta) with unit constant


def partition_radii(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    """Hop distance from every vertex to its partition's center.

    Multi-source BFS: all centers start at distance 0 and waves only
    traverse same-partition edges.  O(n + m).
    """
    labels = np.asarray(labels)
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    dist = np.full(n, -1, dtype=np.int64)
    centers = np.unique(labels)
    dist[centers] = 0
    frontier = centers
    level = 0
    while frontier.size:
        level += 1
        src, dst = graph.expand(frontier)
        same = labels[src] == labels[dst]
        fresh = same & (dist[dst] == -1)
        nxt = np.unique(dst[fresh])
        dist[nxt] = level
        frontier = nxt
    return dist


def decomposition_stats(
    graph: CSRGraph, decomposition: Decomposition, beta: float, variant: str
) -> DecompositionStats:
    """Summarise one decomposition against its theoretical bounds."""
    n = graph.num_vertices
    m = max(graph.num_edges, 1)
    radii = partition_radii(graph, decomposition.labels)
    fraction = (decomposition.num_inter_directed / 2) / m
    bound = beta if variant == "min" else 2.0 * beta
    radius_bound = float(np.log(max(n, 2)) / beta)
    return DecompositionStats(
        num_partitions=decomposition.num_components,
        inter_edge_fraction=float(fraction),
        max_radius=int(radii.max(initial=0)),
        mean_radius=float(radii.mean()) if radii.size else 0.0,
        theoretical_fraction_bound=float(bound),
        theoretical_radius_bound=radius_bound,
    )


def edge_decay_ratios(result: ConnectivityResult) -> List[float]:
    """Per-iteration edge-count ratios m_{i+1}/m_i of a decomp-CC run.

    The paper's Figure 4 observation: these sit far below the 2*beta
    bound on most graphs because duplicate inter-component edges merge
    during contraction.
    """
    edges = result.edges_per_iteration
    return [
        edges[i + 1] / edges[i] if edges[i] else 0.0 for i in range(len(edges) - 1)
    ]


def component_histogram(labels: np.ndarray) -> Dict[str, float]:
    """Component count / largest / mean size for workload tables."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return {"num_components": 0, "largest": 0, "mean_size": 0.0}
    _, counts = np.unique(labels, return_counts=True)
    return {
        "num_components": int(counts.size),
        "largest": int(counts.max()),
        "mean_size": float(counts.mean()),
    }
