"""``reprolint.toml`` loading: the justified allowlist.

The linter's suppression policy is deliberately narrow: a violation is
only silenced by a checked-in allowlist entry naming the exact *site*
(``file::qualname``) and rule id, and every entry must carry a
``reason`` — the justification the reviewer reads instead of the code
change that would fix it.  Entries that no longer suppress anything are
*stale* and fail the lint, so the allowlist cannot rot.

Config format::

    [[allow]]
    rule = "RL001"
    site = "src/repro/engine/kernels.py::arb_round"
    reason = "winners come from first_winner: distinct, claim-once"

Site files are repo-relative POSIX paths; matching is by path suffix,
so the linter works from any working directory.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.errors import LintConfigError

__all__ = ["AllowEntry", "LintConfig", "load_config"]

#: The rule ids the analyzer implements (see docs/static_analysis.md).
KNOWN_RULES = (
    "RL001", "RL002", "RL003", "RL004", "RL005",
    "RL006", "RL007", "RL008", "RL009", "RL010",
)

#: The keys an ``[[allow]]`` table may carry.
_ENTRY_KEYS = frozenset({"rule", "site", "reason"})


@dataclass
class AllowEntry:
    """One justified suppression: (rule, site) with its reason."""

    rule: str
    site: str
    reason: str
    #: Violations this entry suppressed during the current lint run.
    hits: int = field(default=0, compare=False)

    @property
    def site_file(self) -> str:
        return self.site.partition("::")[0]

    @property
    def site_qualname(self) -> str:
        return self.site.partition("::")[2]

    def matches(self, path_key: str, rule: str, qualname: str) -> bool:
        """Suffix-match on the file path, exact match on rule + qualname."""
        if rule != self.rule or qualname != self.site_qualname:
            return False
        return path_key == self.site_file or path_key.endswith(
            "/" + self.site_file
        )


@dataclass
class LintConfig:
    """Parsed ``reprolint.toml`` (empty by default: no suppressions)."""

    allow: List[AllowEntry] = field(default_factory=list)
    source: Optional[Path] = None

    def suppresses(self, path_key: str, rule: str, qualname: str) -> bool:
        """Consume a violation if some entry covers it (counts the hit)."""
        for entry in self.allow:
            if entry.matches(path_key, rule, qualname):
                entry.hits += 1
                return True
        return False

    def stale_entries(self) -> List[AllowEntry]:
        """Entries that suppressed nothing in the last full run."""
        return [e for e in self.allow if e.hits == 0]

    def reset_hits(self) -> None:
        for entry in self.allow:
            entry.hits = 0


def _entry_lines(raw_text: str) -> List[int]:
    """1-based line number of each ``[[allow]]`` header, in order.

    tomllib discards positions, so the loader recovers them from the
    raw text; the i-th header annotates errors in the i-th entry.
    """
    lines: List[int] = []
    for lineno, line in enumerate(raw_text.splitlines(), start=1):
        if line.split("#", 1)[0].strip() == "[[allow]]":
            lines.append(lineno)
    return lines


def load_config(path: Path) -> LintConfig:
    """Load and validate a ``reprolint.toml``.

    Raises :class:`~repro.errors.LintConfigError` for unparseable TOML,
    unknown rule ids, malformed sites, unknown entry keys, or entries
    missing the required justification ``reason``.  Messages carry the
    ``file:line`` of the offending ``[[allow]]`` entry.
    """
    try:
        raw_bytes = path.read_bytes()
    except OSError as exc:
        raise LintConfigError(f"cannot read {path}: {exc}") from exc
    try:
        data = tomllib.loads(raw_bytes.decode("utf-8"))
    except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
        raise LintConfigError(f"invalid TOML in {path}: {exc}") from exc

    lines = _entry_lines(raw_bytes.decode("utf-8", errors="replace"))

    entries: List[AllowEntry] = []
    raw_allow = data.get("allow", [])
    if not isinstance(raw_allow, list):
        raise LintConfigError(f"{path}: [allow] must be an array of tables")
    for i, raw in enumerate(raw_allow):
        where = (
            f"{path}:{lines[i]}: allow[{i}]"
            if i < len(lines)
            else f"{path}: allow[{i}]"
        )
        if not isinstance(raw, dict):
            raise LintConfigError(f"{where} is not a table")
        rule = raw.get("rule")
        site = raw.get("site")
        reason = raw.get("reason")
        extra = set(raw) - _ENTRY_KEYS
        if extra:
            raise LintConfigError(
                f"{where} has unknown keys {sorted(extra)} "
                f"(allowed: {', '.join(sorted(_ENTRY_KEYS))})"
            )
        if rule not in KNOWN_RULES:
            raise LintConfigError(
                f"{where} has unknown rule {rule!r} "
                f"(expected one of {', '.join(KNOWN_RULES)})"
            )
        if not isinstance(site, str) or "::" not in site:
            raise LintConfigError(
                f"{where} site must look like "
                f"'src/repro/...py::qualname', got {site!r}"
            )
        if not isinstance(reason, str) or not reason.strip():
            raise LintConfigError(
                f"{where} ({rule} at {site}) is missing its "
                "justification 'reason' — unexplained suppressions are "
                "not allowed (docs/static_analysis.md)"
            )
        entries.append(AllowEntry(rule=rule, site=site, reason=reason.strip()))

    unknown = set(data) - {"allow"}
    if unknown:
        raise LintConfigError(
            f"{path}: unknown top-level keys {sorted(unknown)}"
        )
    return LintConfig(allow=entries, source=path)
