"""The interprocedural flow rules (RL006-RL009) and the rule docs.

These rules run on the framework trio — :mod:`.cfg` (per-function
control-flow graphs), :mod:`.callgraph` (module call graph with
registry resolution), :mod:`.dataflow` (taint summaries + forward
typestate solver) — instead of per-function AST pattern matching:

RL006  Worker-count taint.  Any value derived from
       ``ExecutionContext.workers`` / ``os.cpu_count`` / a ``workers``
       parameter must never size an allocation, the chunk grid, a
       ``range`` step, or a reduction operand.  The parallel backend's
       determinism proof rests on the chunk grid being a pure function
       of the *input size*.
RL007  Disjoint-slice proof.  Every write issued from a parallel task
       body must be provably private: the task's own ``[lo:hi]`` slice
       of a chunk-grid span, a worker-keyed shard, or a task-local
       buffer.  Anything the analysis cannot prove disjoint is a
       finding — the burden of proof is on the kernel.
RL008  Resource lifecycle typestate.  Claim/release pairs (Session
       pool, contextvar tokens) must release on *every* CFG path,
       normal and exceptional; ``acquire_workspace`` is claim-once and
       its result must be bound.
RL009  Order-sensitive shard combines.  Sequential shard-merge loops
       are only deterministic for the two sanctioned combiner shapes
       (reverse-span overwrite in ``winner_scatter``, ``np.minimum``
       in ``minimum_scatter``); arithmetic accumulation over shards is
       order-sensitive and always flagged.

Scoping lives in :mod:`.linter`; the checkers keep the classic
``(module_ast, path_key) -> list[Violation]`` signature, building a
single-module :class:`~repro.analysis.reprolint.callgraph.Program`
per file (cross-module calls degrade to conservative unknown-callee
taint transfer).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import FunctionInfo, Program
from .cfg import CFG, build_cfg
from .dataflow import TaintAnalysis, run_forward
from .rules import RULE_CHECKERS, Violation

__all__ = ["FLOW_RULE_CHECKERS", "RULE_DOCS"]


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk *fn* skipping nested function/class bodies (lambdas stay)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _terminal_name(expr: ast.expr) -> Optional[str]:
    """The last component of a Name/Attribute chain, or the subscript base."""
    while isinstance(expr, ast.Subscript):
        expr = expr.value
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _base_name(expr: ast.expr) -> Optional[str]:
    """The root variable of a subscript/attribute chain (``a`` in ``a.b[i]``)."""
    while isinstance(expr, (ast.Subscript, ast.Attribute)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


# ---------------------------------------------------------------------------
# RL006 — worker-count taint
# ---------------------------------------------------------------------------

#: Parameter names treated as worker-count sources wherever they appear.
_WORKER_PARAMS = ("workers", "num_workers", "n_workers", "max_workers")

#: np.<fn> calls whose arguments size a fresh allocation.
_RL006_NP_ALLOC = frozenset(
    {
        "empty", "zeros", "ones", "full",
        "empty_like", "zeros_like", "ones_like", "full_like",
        "arange",
    }
)

#: Arena/shard sizer methods; a worker-derived size here changes buffer
#: shapes with the worker count.
_RL006_SIZERS = frozenset(
    {"_buf", "_zeroed_bool", "_iota", "_shard_buf",
     "_shard_zeroed_bool", "_shard_filled"}
)

#: np ufuncs whose operands feed a value-producing reduction.
_RL006_REDUCERS = frozenset(
    {"minimum", "maximum", "fmin", "fmax",
     "add", "subtract", "multiply", "divide"}
)


def _is_worker_seed(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Attribute) and expr.attr == "workers":
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id == "cpu_count":
            return True
        if isinstance(func, ast.Attribute) and func.attr == "cpu_count":
            return True
    return False


def _np_reduction_attr(func: ast.expr) -> Optional[str]:
    """``minimum`` for ``np.minimum(...)`` or ``np.minimum.at(...)``."""
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "at" and isinstance(func.value, ast.Attribute):
        func = func.value
    if (
        isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
        and func.attr in _RL006_REDUCERS
    ):
        return func.attr
    return None


def check_rl006(tree: ast.Module, path: str) -> List[Violation]:
    """Worker-count-derived values in sizes, chunking, or reductions."""
    program = Program({path: tree})
    analysis = TaintAnalysis(
        program, seed_expr=_is_worker_seed, seed_params=_WORKER_PARAMS
    )
    violations: List[Violation] = []

    def report(node: ast.AST, info: FunctionInfo, message: str) -> None:
        violations.append(
            Violation(
                rule="RL006",
                path=path,
                line=getattr(node, "lineno", info.node.lineno),
                col=getattr(node, "col_offset", 0),
                qualname=info.qualname,
                message=message,
            )
        )

    for info in program.functions_in(path):
        env = analysis.local_env(info)

        def tainted(expr: ast.expr) -> bool:
            return analysis.is_tainted(expr, env, info)

        for node in _own_nodes(info.node):
            if isinstance(node, ast.Call):
                func = node.func
                size_args: Optional[Sequence[ast.expr]] = None
                what = None
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in ("np", "numpy")
                    and func.attr in _RL006_NP_ALLOC
                ):
                    size_args = list(node.args) + [
                        kw.value for kw in node.keywords if kw.arg == "shape"
                    ]
                    what = f"np.{func.attr}"
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in _RL006_SIZERS
                ):
                    # Shard sizers key on the worker id (arg 0) by
                    # design; only the size/fill arguments matter.
                    offset = 1 if func.attr.startswith("_shard") else 0
                    size_args = node.args[offset:]
                    what = func.attr
                elif isinstance(func, ast.Name) and func.id == "_grown":
                    size_args = node.args
                    what = "_grown"
                if size_args is not None and what is not None:
                    for arg in size_args:
                        if tainted(arg):
                            report(
                                node, info,
                                f"worker-count-derived value sizes {what}(); "
                                "buffer shapes and the chunk grid must be "
                                "pure functions of the input size",
                            )
                            break
                if (
                    isinstance(func, ast.Name)
                    and func.id == "range"
                    and len(node.args) >= 3
                    and tainted(node.args[2])
                ):
                    report(
                        node, info,
                        "worker-count-derived range() step partitions "
                        "iteration space by worker count",
                    )
                reducer = _np_reduction_attr(func)
                if reducer is not None and any(tainted(a) for a in node.args):
                    report(
                        node, info,
                        f"worker-count-derived operand reaches np.{reducer}; "
                        "reduction inputs must not depend on the worker "
                        "count",
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = node.value
                if value is None or not tainted(value):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    name = _terminal_name(target)
                    if name is not None and "chunk" in name:
                        report(
                            node, info,
                            f"chunk sizing {name!r} derived from the worker "
                            "count; the chunk grid must be fixed "
                            "(DEFAULT_CHUNK_SIZE), never workers-shaped",
                        )
    return violations


# ---------------------------------------------------------------------------
# RL007 — disjoint-slice proof for parallel task writes
# ---------------------------------------------------------------------------

#: Roles a name can carry inside a parallel task body.
_LO, _HI, _WORKER = "lo", "hi", "worker"

_SPAN_MAKERS = ("_chunks", "_worker_spans")
_SHARD_MAKERS = ("_shard_buf", "_shard_zeroed_bool", "_shard_filled")


def _is_span_maker_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _SPAN_MAKERS
    )


def _is_chunk_grid_listcomp(expr: ast.expr) -> bool:
    """``[(a, min(a + step, total)) for a in range(0, total, step)]``."""
    if not isinstance(expr, ast.ListComp) or len(expr.generators) != 1:
        return False
    gen = expr.generators[0]
    if not (
        isinstance(gen.iter, ast.Call)
        and isinstance(gen.iter.func, ast.Name)
        and gen.iter.func.id == "range"
        and not isinstance(gen.target, (ast.Tuple, ast.List))
    ):
        return False
    elt = expr.elt
    return (
        isinstance(elt, ast.Tuple)
        and len(elt.elts) == 2
        and isinstance(elt.elts[0], ast.Name)
        and isinstance(gen.target, ast.Name)
        and elt.elts[0].id == gen.target.id
        and isinstance(elt.elts[1], ast.Call)
        and isinstance(elt.elts[1].func, ast.Name)
        and elt.elts[1].func.id == "min"
    )


def _span_vars(info: FunctionInfo) -> Set[str]:
    """Names bound to a sanctioned chunk-grid span list in *info*."""
    out: Set[str] = set()
    for node in _own_nodes(info.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and (
                _is_span_maker_call(node.value)
                or _is_chunk_grid_listcomp(node.value)
            ):
                out.add(target.id)
    return out


def _tuple_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            out.extend(_tuple_names(elt))
        return out
    return []


def _span_iter_roles(
    target: ast.expr, iter_expr: ast.expr, spans: Set[str], params: Set[str]
) -> Optional[Dict[str, str]]:
    """Role map for ``for <target> in <iter>`` over a span list, or None.

    ``for lo, hi in spans``                 -> {lo: LO, hi: HI}
    ``for w, (lo, hi) in enumerate(spans)`` -> {w: WORKER, lo: LO, hi: HI}
    """
    src = iter_expr
    enumerated = False
    if (
        isinstance(src, ast.Call)
        and isinstance(src.func, ast.Name)
        and src.func.id == "enumerate"
        and src.args
    ):
        src = src.args[0]
        enumerated = True
    if not (isinstance(src, ast.Name) and (src.id in spans or src.id in params)):
        return None
    if enumerated:
        if (
            isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and isinstance(target.elts[0], ast.Name)
        ):
            inner = _tuple_names(target.elts[1])
            if len(inner) == 2:
                return {
                    target.elts[0].id: _WORKER,
                    inner[0]: _LO,
                    inner[1]: _HI,
                }
        return None
    names = _tuple_names(target)
    if len(names) == 2:
        return {names[0]: _LO, names[1]: _HI}
    return None


class _TaskBodyChecker:
    """Classify every write in one parallel task body."""

    def __init__(
        self,
        info: FunctionInfo,
        path: str,
        roles: Dict[str, str],
        violations: List[Violation],
    ) -> None:
        self.info = info
        self.path = path
        self.roles = roles
        self.violations = violations
        #: Names the task binds itself (fresh buffers, private shards,
        #: per-task slice views) — writes through them stay private.
        self.local: Set[str] = set()

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule="RL007",
                path=self.path,
                line=getattr(node, "lineno", self.info.node.lineno),
                col=getattr(node, "col_offset", 0),
                qualname=self.info.qualname,
                message=message,
            )
        )

    def _role(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return self.roles.get(expr.id)
        return None

    def _is_span_slice(self, sub: ast.Subscript) -> bool:
        """Exactly ``[lo:hi]`` with the task's own span roles, no step."""
        sl = sub.slice
        return (
            isinstance(sl, ast.Slice)
            and sl.step is None
            and sl.lower is not None
            and sl.upper is not None
            and self._role(sl.lower) == _LO
            and self._role(sl.upper) == _HI
        )

    def _is_private_base(self, expr: ast.expr) -> bool:
        base = _base_name(expr)
        return base is not None and base in self.local

    def _check_write_subscript(self, sub: ast.Subscript) -> None:
        if self._is_private_base(sub.value):
            return
        if self._is_span_slice(sub):
            return
        if not isinstance(sub.slice, ast.Slice) and self._role(sub.slice) == _WORKER:
            return  # worker-keyed cell, e.g. touched[w]
        self.report(
            sub,
            f"parallel task write to {ast.unparse(sub)!r} is not provably "
            "disjoint; write the task's own [lo:hi] span slice, a "
            "worker-keyed cell, or a private shard",
        )

    def _bind(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        name = stmt.targets[0].id
        value = stmt.value
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Attribute) and func.attr in _SHARD_MAKERS:
                # A shard is private iff it is keyed by this task's
                # worker id.
                if not (value.args and self._role(value.args[0]) == _WORKER):
                    self.report(
                        value,
                        f"{func.attr}() shard keyed by something other than "
                        "this task's worker id; shards are only private "
                        "when worker-keyed",
                    )
                self.local.add(name)
                return
            # Fresh value from a call (splitmix64, .astype, ...).
            self.local.add(name)
            return
        if isinstance(value, ast.Subscript) and self._is_span_slice(value):
            # A [lo:hi] view is this task's disjoint window.
            self.local.add(name)

    def check(self, body: ast.AST) -> None:
        """*body* is an expression (lambda body) or a statement list owner."""
        stmts: List[ast.stmt]
        if isinstance(body, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stmts = body.body
        elif isinstance(body, ast.expr):
            self._check_expr_writes(body)
            return
        else:
            return
        for stmt in stmts:
            for node in [stmt, *_own_nodes(stmt)]:
                if isinstance(node, ast.Assign):
                    self._bind(node)
            for node in [stmt, *_own_nodes(stmt)]:
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        self._check_target(target)
                elif isinstance(node, ast.AugAssign):
                    self._check_target(node.target)
                elif isinstance(node, ast.expr):
                    self._check_expr_writes(node, nested=True)

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Subscript):
            self._check_write_subscript(target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt)

    def _check_expr_writes(self, expr: ast.expr, nested: bool = False) -> None:
        """``out=`` keyword targets and ``np.<ufunc>.at`` first args."""
        nodes: List[ast.AST] = [expr] if nested else [expr, *_own_nodes(expr)]
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != "out":
                    continue
                if isinstance(kw.value, ast.Subscript):
                    self._check_write_subscript(kw.value)
                elif not self._is_private_base(kw.value):
                    self.report(
                        kw.value,
                        f"out={ast.unparse(kw.value)!r} targets a whole "
                        "shared array from a parallel task; write the "
                        "task's own [lo:hi] slice",
                    )
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "at"
                and node.args
            ):
                first = node.args[0]
                if isinstance(first, ast.Subscript):
                    self._check_write_subscript(first)
                elif not self._is_private_base(first):
                    self.report(
                        first,
                        f"ufunc.at on {ast.unparse(first)!r} scatters into "
                        "a shared array from a parallel task; scatter into "
                        "a private worker shard instead",
                    )


def _lambda_roles(
    lam: ast.Lambda, outer_roles: Dict[str, str]
) -> Dict[str, str]:
    """Map lambda params to roles via their ``p=p`` rebinding defaults."""
    roles: Dict[str, str] = {}
    args = lam.args.args
    defaults = lam.args.defaults
    bound = args[len(args) - len(defaults):]
    for param, default in zip(bound, defaults):
        if isinstance(default, ast.Name) and default.id in outer_roles:
            roles[param.arg] = outer_roles[default.id]
    return roles


def _positional_roles(
    call: ast.Call, roles: Dict[str, str], callee: FunctionInfo
) -> Optional[Dict[str, str]]:
    """Thread role names through ``body(w, lo, hi)`` into *callee* params."""
    params = [p for p in callee.params if p not in ("self", "cls")]
    out: Dict[str, str] = {}
    for param, arg in zip(params, call.args):
        if isinstance(arg, ast.Name) and arg.id in roles:
            out[param] = roles[arg.id]
    return out or None


def check_rl007(tree: ast.Module, path: str) -> List[Violation]:
    """Unprovable disjointness of writes issued from parallel tasks."""
    program = Program({path: tree})
    violations: List[Violation] = []

    for info in program.functions_in(path):
        spans = _span_vars(info)
        params = set(info.params)

        def local_def(name: str) -> Optional[FunctionInfo]:
            return program.functions.get((path, f"{info.qualname}.{name}"))

        def check_task(body: ast.AST, roles: Dict[str, str]) -> None:
            checker = _TaskBodyChecker(info, path, roles, violations)
            if isinstance(body, ast.Lambda):
                inner = _lambda_roles(body, roles)
                # A lambda that merely forwards to a local def threads
                # its roles through positionally.
                if (
                    isinstance(body.body, ast.Call)
                    and isinstance(body.body.func, ast.Name)
                ):
                    callee = local_def(body.body.func.id)
                    if callee is not None:
                        threaded = _positional_roles(
                            body.body, inner, callee
                        )
                        if threaded is not None:
                            check_task(callee.node, threaded)
                            return
                checker.roles = inner
                checker.check(body.body)
            else:
                checker.check(body)

        def flag_provenance(node: ast.AST, detail: str) -> None:
            violations.append(
                Violation(
                    rule="RL007",
                    path=path,
                    line=getattr(node, "lineno", info.node.lineno),
                    col=getattr(node, "col_offset", 0),
                    qualname=info.qualname,
                    message=(
                        f"parallel tasks built over {detail} without "
                        "chunk-grid provenance (_chunks/_worker_spans or "
                        "the fixed-step grid comprehension); disjointness "
                        "is unprovable"
                    ),
                )
            )

        for node in _own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # Pattern a: self._foreach_span(spans, body)
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "_foreach_span"
                and len(node.args) >= 2
            ):
                spans_expr, body_expr = node.args[0], node.args[1]
                if isinstance(spans_expr, ast.Name) and spans_expr.id in params:
                    continue  # concrete provenance checked at call sites
                if not (
                    (isinstance(spans_expr, ast.Name) and spans_expr.id in spans)
                    or _is_span_maker_call(spans_expr)
                ):
                    flag_provenance(node, ast.unparse(spans_expr))
                    continue
                base_roles = {"lo": _LO, "hi": _HI}
                if isinstance(body_expr, ast.Lambda):
                    lam_params = [a.arg for a in body_expr.args.args]
                    roles = dict(zip(lam_params, (_LO, _HI)))
                    checker = _TaskBodyChecker(info, path, roles, violations)
                    checker.check(body_expr.body)
                elif isinstance(body_expr, ast.Name):
                    callee = local_def(body_expr.id)
                    if callee is not None:
                        callee_params = [
                            p for p in callee.params if p not in ("self", "cls")
                        ]
                        roles = dict(zip(callee_params, (_LO, _HI)))
                        check_task(callee.node, roles)
                del base_roles
            # Pattern b: self._run([...]) over a span iteration.
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "_run"
                and node.args
            ):
                tasks = node.args[0]
                if isinstance(tasks, ast.Name) and tasks.id in params:
                    continue
                if isinstance(tasks, ast.ListComp) and len(tasks.generators) == 1:
                    gen = tasks.generators[0]
                    roles = _span_iter_roles(
                        gen.target, gen.iter, spans, params
                    ) or {}
                    if not roles:
                        flag_provenance(node, ast.unparse(gen.iter))
                        continue
                    elt = tasks.elt
                    if isinstance(elt, ast.Lambda):
                        check_task(elt, roles)
                elif isinstance(tasks, (ast.List, ast.Tuple)):
                    for elt in tasks.elts:
                        if isinstance(elt, ast.Lambda):
                            check_task(elt, {})
            # Pattern c: pool.submit(lambda ...) inside a span iteration.
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "submit"
                and node.args
                and isinstance(node.args[0], ast.Lambda)
            ):
                roles = _submit_context_roles(info, node, spans, params)
                if roles is None:
                    flag_provenance(node, "an unrecognized iteration")
                else:
                    check_task(node.args[0], roles)
    return violations


def _submit_context_roles(
    info: FunctionInfo,
    submit_call: ast.Call,
    spans: Set[str],
    params: Set[str],
) -> Optional[Dict[str, str]]:
    """Roles from the comprehension/for-loop enclosing a ``submit`` call."""
    for node in _own_nodes(info.node):
        candidates: List[Tuple[ast.expr, ast.expr, ast.AST]] = []
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            if len(node.generators) == 1:
                gen = node.generators[0]
                candidates.append((gen.target, gen.iter, node.elt))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            candidates.append((node.target, node.iter, node))
        for target, iter_expr, scope in candidates:
            if any(child is submit_call for child in ast.walk(scope)):
                return _span_iter_roles(target, iter_expr, spans, params)
    return None


# ---------------------------------------------------------------------------
# RL008 — resource lifecycle typestate
# ---------------------------------------------------------------------------

_ST_UNCLAIMED = "unclaimed"
_ST_CLAIMED = "claimed"
_ST_RELEASED = "released"
_ST_MAYBE = "maybe"

#: (kind, var, event) where event is "claim" | "release" | "rebind".
_Event = Tuple[str, str, str]

_EXIT_CHECKED_KINDS = ("pool", "token")
_KIND_DESC = {
    "pool": "Session pool claim",
    "token": "contextvar token",
    "workspace": "workspace claim",
}


def _claim_of(value: ast.expr) -> Optional[Tuple[str, Optional[ast.Call]]]:
    """Kind of claim a bound RHS value performs, if any."""
    for node in ast.walk(value):
        if isinstance(node, (ast.Lambda,)):
            continue
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "_claim_pool":
                return "pool", node
            if node.func.attr == "acquire_workspace":
                return "workspace", node
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "set"
        and len(value.args) == 1
        and not value.keywords
    ):
        return "token", value
    return None


def _stmt_events(
    stmt: Optional[ast.AST], tracked: Dict[str, str]
) -> List[_Event]:
    """Lifecycle events one CFG node's own statement performs."""
    if stmt is None or isinstance(stmt, (ast.Try, ast.ExceptHandler)):
        return []
    scan: List[ast.AST]
    if isinstance(stmt, (ast.If, ast.While)):
        scan = list(ast.walk(stmt.test))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        scan = list(ast.walk(stmt.iter))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        scan = [n for item in stmt.items for n in ast.walk(item.context_expr)]
    else:
        scan = [
            n
            for n in ast.walk(stmt)
            if not isinstance(n, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef))
        ]
    events: List[_Event] = []
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and stmt.value is not None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        claim = _claim_of(stmt.value)
        for target in targets:
            try:
                var = ast.unparse(target)
            except Exception:  # pragma: no cover - malformed target
                continue
            if claim is not None:
                events.append((claim[0], var, "claim"))
            elif var in tracked:
                events.append((tracked[var], var, "rebind"))
    for node in scan:
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr == "_release_pool" and node.args:
            try:
                events.append(("pool", ast.unparse(node.args[0]), "release"))
            except Exception:  # pragma: no cover
                pass
        elif node.func.attr == "reset" and len(node.args) == 1:
            try:
                var = ast.unparse(node.args[0])
            except Exception:  # pragma: no cover
                continue
            if tracked.get(var) == "token":
                events.append(("token", var, "release"))
    return events


def _collect_tracked(fn: ast.AST) -> Dict[str, str]:
    """var -> kind for every claim the function performs."""
    tracked: Dict[str, str] = {}
    for node in _own_nodes(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign)) and node.value is not None:
            claim = _claim_of(node.value)
            if claim is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                try:
                    tracked[ast.unparse(target)] = claim[0]
                except Exception:  # pragma: no cover
                    pass
    return tracked


def check_rl008(tree: ast.Module, path: str) -> List[Violation]:
    """Claim/release lifecycles proven safe on every CFG path."""
    program = Program({path: tree})
    violations: List[Violation] = []

    for info in program.functions_in(path):
        fn = info.node
        # Discarded acquire results first: ownership must be bound.
        for stmt in _own_nodes(fn):
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr in ("acquire_workspace", "_claim_pool")
            ):
                violations.append(
                    Violation(
                        rule="RL008",
                        path=path,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        qualname=info.qualname,
                        message=(
                            f"{stmt.value.func.attr}() result discarded; "
                            "the claim must be bound so it can be released "
                            "(or the workspace ownership tracked)"
                        ),
                    )
                )
        # Workspace claims are claim-once *per function*, regardless of
        # which name each claim binds: the first acquire takes the
        # pooled arena, so a second in the same function silently works
        # on a fresh arena — almost certainly not what the author meant.
        ws_claims = sorted(
            (
                node
                for node in _own_nodes(fn)
                if isinstance(node, (ast.Assign, ast.AnnAssign))
                and node.value is not None
                and (claim := _claim_of(node.value)) is not None
                and claim[0] == "workspace"
            ),
            key=lambda node: node.lineno,
        )
        for extra in ws_claims[1:]:
            violations.append(
                Violation(
                    rule="RL008",
                    path=path,
                    line=extra.lineno,
                    col=extra.col_offset,
                    qualname=info.qualname,
                    message=(
                        "second acquire_workspace() in one function "
                        "(claim-once contract): only the first claim gets "
                        "the pooled arena; hoist or thread the workspace"
                    ),
                )
            )
        tracked = _collect_tracked(fn)
        if not tracked:
            continue
        cfg = build_cfg(fn)  # type: ignore[arg-type]
        events = {
            nid: _stmt_events(node.stmt, tracked)
            for nid, node in cfg.nodes.items()
        }
        claim_once: Set[Tuple[int, str]] = set()

        StateT = Optional[Dict[str, str]]

        def join(a: StateT, b: StateT) -> StateT:
            if a is None:
                return dict(b) if b is not None else None
            if b is None:
                return dict(a)
            return {
                var: (a[var] if a[var] == b[var] else _ST_MAYBE)
                for var in a
            }

        def transfer(nid: int, state: StateT) -> StateT:
            if state is None:
                return None
            out = dict(state)
            for kind, var, event in events[nid]:
                if event == "claim":
                    if out.get(var) == _ST_CLAIMED:
                        claim_once.add((cfg.nodes[nid].line, var))
                    out[var] = _ST_CLAIMED
                elif event == "release":
                    out[var] = _ST_RELEASED
                else:  # rebind without claiming
                    out[var] = _ST_UNCLAIMED
            return out

        init: Dict[str, str] = {var: _ST_UNCLAIMED for var in tracked}
        result = run_forward(
            cfg,
            init=init,
            bottom=None,
            transfer=transfer,
            join=join,
            equals=lambda a, b: a == b,
        )
        for line, var in sorted(claim_once):
            if tracked[var] == "workspace":
                continue  # covered by the per-function claim-once scan
            violations.append(
                Violation(
                    rule="RL008",
                    path=path,
                    line=line,
                    col=0,
                    qualname=info.qualname,
                    message=(
                        f"{_KIND_DESC[tracked[var]]} {var!r} claimed again "
                        "while already claimed (claim-once contract)"
                    ),
                )
            )
        for node, via_exc in cfg.exit_preds():
            out_state = result.out_states.get(node.nid)
            if via_exc:
                out_state = join(
                    result.in_states.get(node.nid), out_state  # type: ignore[arg-type]
                )
            if not isinstance(out_state, dict):
                continue
            for var, state in out_state.items():
                if (
                    state == _ST_CLAIMED
                    and tracked.get(var) in _EXIT_CHECKED_KINDS
                ):
                    kind = "an exceptional" if via_exc else "a return"
                    violations.append(
                        Violation(
                            rule="RL008",
                            path=path,
                            line=node.line or fn.lineno,
                            col=0,
                            qualname=info.qualname,
                            message=(
                                f"{_KIND_DESC[tracked[var]]} {var!r} still "
                                f"claimed on {kind} path; release it in a "
                                "finally block covering every exit"
                            ),
                        )
                    )
    return violations


# ---------------------------------------------------------------------------
# RL009 — order-sensitive shard combines
# ---------------------------------------------------------------------------

#: Function names whose combine loops are the proven-deterministic
#: merges (reverse-span overwrite; np.minimum fold).
_SANCTIONED_COMBINERS = ("winner_scatter", "minimum_scatter")

_ORDER_SENSITIVE_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Pow)
_ARITH_UFUNCS = frozenset({"add", "subtract", "multiply", "divide", "sum"})
_MERGE_UFUNCS = frozenset({"minimum", "maximum", "fmin", "fmax"})


def _np_attr(func: ast.expr) -> Optional[str]:
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


def check_rl009(tree: ast.Module, path: str) -> List[Violation]:
    """Shard combine loops outside the sanctioned combiner shapes."""
    program = Program({path: tree})
    violations: List[Violation] = []

    for info in program.functions_in(path):
        spans = _span_vars(info)
        spans |= {p for p in info.params if p == "spans"}
        if not spans:
            continue
        sanctioned = info.name in _SANCTIONED_COMBINERS

        for loop in _own_nodes(info.node):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            iter_names = {
                n.id for n in ast.walk(loop.iter) if isinstance(n, ast.Name)
            }
            if not (iter_names & spans):
                continue
            # Names bound inside the loop body (shard views, hit lists)
            # are per-iteration scratch, not the merge destination.
            loop_locals = set(_tuple_names(loop.target))
            for node in ast.walk(loop):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and isinstance(
                            node.value, (ast.Call, ast.Subscript)
                        ):
                            loop_locals.add(target.id)

            def flag(node: ast.AST, message: str) -> None:
                violations.append(
                    Violation(
                        rule="RL009",
                        path=path,
                        line=getattr(node, "lineno", loop.lineno),
                        col=getattr(node, "col_offset", 0),
                        qualname=info.qualname,
                        message=message,
                    )
                )

            for node in ast.walk(loop):
                if isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Subscript
                ):
                    base = _base_name(node.target.value)
                    if base in loop_locals:
                        continue
                    if isinstance(node.op, _ORDER_SENSITIVE_OPS):
                        flag(
                            node,
                            f"order-sensitive accumulation into {base!r} in "
                            "a shard combine loop; per-shard arithmetic "
                            "folds depend on the merge order",
                        )
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if not isinstance(target, ast.Subscript):
                            continue
                        base = _base_name(target.value)
                        if base is None or base in loop_locals:
                            continue
                        rhs = node.value
                        np_fn = (
                            _np_attr(rhs.func)
                            if isinstance(rhs, ast.Call)
                            else None
                        )
                        arithmetic = (
                            isinstance(rhs, ast.BinOp)
                            and isinstance(rhs.op, _ORDER_SENSITIVE_OPS)
                            and base
                            in {
                                n.id
                                for n in ast.walk(rhs)
                                if isinstance(n, ast.Name)
                            }
                        ) or (np_fn in _ARITH_UFUNCS)
                        if arithmetic:
                            flag(
                                node,
                                f"order-sensitive accumulation into {base!r} "
                                "in a shard combine loop; use the sanctioned "
                                "overwrite/minimum merges",
                            )
                        elif not sanctioned:
                            flag(
                                node,
                                f"shard combine writes {base!r} outside the "
                                "sanctioned combiners "
                                "(winner_scatter/minimum_scatter); combine "
                                "determinism is only proven there",
                            )
    return violations


# ---------------------------------------------------------------------------
# Rule documentation (``repro lint --explain RLxxx``)
# ---------------------------------------------------------------------------

RULE_DOCS: Dict[str, str] = {
    "RL001": (
        "Shared-array writes must route through primitives.atomics.\n\n"
        "A bare subscript store (labels[idx] = ...) into a shared array —\n"
        "a parameter, self.<attr>, or an alias of either — is the bug\n"
        "class the simulated CRCW machine exists to prevent. Legal claim\n"
        "scatters are registered in the reprolint.toml allowlist.\n\n"
        "Runtime counterpart: the PRAM race sanitizer's post-round\n"
        "snapshot diff (repro --sanitize)."
    ),
    "RL002": (
        "No allocating NumPy calls in the fast-backend kernels.\n\n"
        "Steady-state rounds draw buffers from the Workspace arena; a\n"
        "fresh np.zeros/np.concatenate (without out=) re-introduces the\n"
        "per-round allocation the backend seam removed. Zero-length\n"
        "sentinels (np.zeros(0)) are exempt.\n\n"
        "Runtime counterpart: Workspace.bytes_held plateaus asserted by\n"
        "the arena tests."
    ),
    "RL003": (
        "Edge-expanding kernels must charge the cost tracker on every\n"
        "post-expand return path.\n\n"
        "Otherwise the (work, depth) profiles undercount exactly when a\n"
        "kernel exits early and the figures silently diverge from the\n"
        "paper's O(m) accounting.\n\n"
        "Runtime counterpart: the cost-model parity fixtures."
    ),
    "RL004": (
        "No np.random module-global state and no wall-clock reads in\n"
        "simulation code.\n\n"
        "Randomness flows through seeded generators (primitives.rand /\n"
        "default_rng(seed)); real time belongs to the wall-clock harness\n"
        "(analysis/wallclock.py).\n\n"
        "Runtime counterpart: byte-identical golden parity replays."
    ),
    "RL005": (
        "No reads of the retired global-singleton accessors outside the\n"
        "runtime package.\n\n"
        "Ambient state (tracker, sanitizer, fault plan, backend) is read\n"
        "from repro.runtime.current_context(). Deprecated shim\n"
        "definitions are flagged too, so retiring one forces its\n"
        "allowlist entry out with it."
    ),
    "RL006": (
        "Worker-count taint: no value derived from\n"
        "ExecutionContext.workers, os.cpu_count(), or a workers\n"
        "parameter may size an allocation, the chunk grid, a range()\n"
        "step, or a reduction operand.\n\n"
        "The parallel backend is deterministic because the chunk grid is\n"
        "a pure function of the input size (DEFAULT_CHUNK_SIZE); a\n"
        "worker-shaped buffer or chunk makes results depend on\n"
        "--workers. Interprocedural taint summaries follow the value\n"
        "through helper calls and the backend registry.\n\n"
        "Runtime counterpart: golden parity replays at w=2 vs w=4.\n"
        "Allowlist policy: only span *partitioning* proven\n"
        "result-independent (e.g. ParallelWorkspace._worker_spans, whose\n"
        "combine notes carry the proof) may be suppressed."
    ),
    "RL007": (
        "Disjoint-slice proof: every write issued from a parallel task\n"
        "body must be provably private — the task's own [lo:hi] slice of\n"
        "a chunk-grid span, a worker-keyed shard/cell, or a buffer the\n"
        "task allocated itself. Span lists must come from\n"
        "_chunks()/_worker_spans() or the fixed-step grid comprehension.\n"
        "Anything the analysis cannot prove disjoint is a finding.\n\n"
        "Runtime counterpart: the PRAM race sanitizer and the w=2/w=4\n"
        "parity fixtures catch overlapping slices as nondeterminism.\n"
        "Allowlist policy: none expected; fix the kernel instead."
    ),
    "RL008": (
        "Resource lifecycle typestate: Session pool claims\n"
        "(_claim_pool/_release_pool) and contextvar tokens (set/reset)\n"
        "must release on every CFG path, normal and exceptional —\n"
        "i.e. in a finally block covering every exit.\n"
        "acquire_workspace() is claim-once and its result must be bound.\n\n"
        "The analysis runs a forward typestate dataflow\n"
        "{unclaimed, claimed, released, maybe} over the per-function\n"
        "CFG, including exceptional edges; only definitely-claimed exits\n"
        "are flagged, so conditional claims released conditionally stay\n"
        "clean.\n\n"
        "Runtime counterpart: the concurrency smoke tests (a leaked pool\n"
        "claim deadlocks the session pool).\n"
        "Allowlist policy: none expected; restructure with try/finally."
    ),
    "RL009": (
        "Order-sensitive shard combines: sequential shard-merge loops\n"
        "(for ... over a span list) are only deterministic for the two\n"
        "sanctioned combiner shapes — winner_scatter's reverse-span\n"
        "overwrite and minimum_scatter's np.minimum fold. Arithmetic\n"
        "accumulation (+=, np.add, ...) over shards depends on the merge\n"
        "order and is always flagged; overwrite/min-merges outside the\n"
        "sanctioned combiners are flagged until proven and sanctioned.\n\n"
        "Runtime counterpart: sanitizer record_combine coverage plus the\n"
        "golden parity fixtures.\n"
        "Allowlist policy: a new combiner needs a written determinism\n"
        "proof in its docstring before an allowlist entry is acceptable."
    ),
    "RL010": (
        "Observational purity of the tracing layer (repro.obs).\n\n"
        "Tracer and metrics code observes a run; it may never write\n"
        "back: no subscript/augmented/attribute stores rooted at a\n"
        "function parameter (the run state handed in for observation),\n"
        "no in-place np.* or ndarray-method mutation, no cost-tracker\n"
        "charges (tracker.add/sync). Timestamps are wall-clock by\n"
        "design — repro.obs is exempt from RL004's clock ban, and this\n"
        "rule polices its purity instead.\n\n"
        "Runtime counterpart: the tracing-determinism parity tests\n"
        "(tests/test_obs.py) replay golden captures with tracing off\n"
        "and on and require byte-identical labelings and charges.\n"
        "Allowlist policy: none expected; fix the tracer instead."
    ),
}


FLOW_RULE_CHECKERS: Dict[str, Callable[[ast.Module, str], List[Violation]]] = {
    "RL006": check_rl006,
    "RL007": check_rl007,
    "RL008": check_rl008,
    "RL009": check_rl009,
}

# One registry for the linter and the tests: the flow rules join the
# syntactic ones.
RULE_CHECKERS.update(FLOW_RULE_CHECKERS)
