"""Forward dataflow engines for the interprocedural lint rules.

Two engines live here:

* **Taint propagation** (:class:`TaintAnalysis`) — an origin-set
  analysis over the :class:`~repro.analysis.reprolint.callgraph.Program`
  call graph.  Each function gets a :class:`Summary` saying whether its
  return value carries a seed taint and which parameters flow to the
  return; summaries are iterated to a fixpoint, so mutual recursion and
  cyclic call graphs terminate (the lattice — sets of origins over a
  finite universe — has finite height and the transfer functions are
  monotone).  RL006 instantiates this with worker-count seeds.

* **Typestate runner** (:func:`run_forward`) — a generic worklist
  solver over a per-function :class:`~repro.analysis.reprolint.cfg.CFG`
  for must-style lifecycle analyses.  RL008 instantiates it with the
  {UNCLAIMED, CLAIMED, RELEASED, MAYBE} lattice.  Exceptional edges
  propagate ``join(in, out)`` of the raising statement, modelling a
  raise at any point mid-statement.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from .callgraph import FunctionInfo, Program
from .cfg import CFG

__all__ = [
    "SEED",
    "Summary",
    "TaintAnalysis",
    "run_forward",
]

#: Distinguished origin meaning "derived from an analysis seed".
SEED = "<seed>"

Origins = FrozenSet[str]
_EMPTY: Origins = frozenset()


@dataclass
class Summary:
    """Interprocedural taint summary of one function.

    ``returns`` holds origins of the return value: :data:`SEED` and/or
    parameter names of *this* function whose value reaches the return.
    """

    returns: Origins = _EMPTY


class TaintAnalysis:
    """Origin-set taint over a :class:`Program`.

    ``seed_expr(expr) -> bool`` marks the atoms that introduce the
    :data:`SEED` origin (e.g. a ``.workers`` attribute read).
    ``seed_params`` names parameters treated as seed sources wherever
    they appear (e.g. a ``workers`` keyword argument threaded through
    constructors).

    The per-function environment is deliberately flow-insensitive
    (one origin set per local name, iterated to a local fixpoint):
    the rules built on top are "does a tainted value *ever* reach this
    sink", for which flow-insensitivity is the sound and cheap choice.
    """

    def __init__(
        self,
        program: Program,
        *,
        seed_expr: Callable[[ast.expr], bool],
        seed_params: Tuple[str, ...] = (),
    ) -> None:
        self.program = program
        self.seed_expr = seed_expr
        self.seed_params = seed_params
        self.summaries: Dict[Tuple[str, str], Summary] = {
            key: Summary() for key in program.functions
        }
        self._solve_summaries()

    # -- summary fixpoint --------------------------------------------------

    def _solve_summaries(self) -> None:
        changed = True
        iterations = 0
        # |functions| * (|params|+1) bounds lattice ascents; the extra
        # slack is for multi-edge propagation per round.
        limit = 4 * len(self.program.functions) + 16
        while changed and iterations < limit:
            changed = False
            iterations += 1
            for key, info in self.program.functions.items():
                env = self.local_env(info)
                returns: Set[str] = set()
                for node in ast.walk(info.node):
                    if isinstance(node, ast.Return) and node.value is not None:
                        returns |= self.origins_of(node.value, env, info)
                new = frozenset(returns)
                if new != self.summaries[key].returns:
                    self.summaries[key] = Summary(returns=new)
                    changed = True

    # -- per-function environment -----------------------------------------

    def local_env(self, info: FunctionInfo) -> Dict[str, Origins]:
        """Name -> origin set inside *info*, at local fixpoint."""
        env: Dict[str, Origins] = {p: frozenset({p}) for p in info.params}
        for p in info.params:
            if p in self.seed_params:
                env[p] = env[p] | {SEED}
        changed = True
        while changed:
            changed = False
            for node in ast.walk(info.node):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.AugAssign):
                    targets, value = [node.target], node.value
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    targets, value = [node.target], node.iter
                elif isinstance(node, ast.comprehension):
                    targets, value = [node.target], node.iter
                elif isinstance(node, ast.NamedExpr):
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                origins = self.origins_of(value, env, info)
                if isinstance(node, ast.AugAssign):
                    # x += e keeps x's old origins too.
                    base = _target_name(node.target)
                    if base is not None:
                        origins = origins | env.get(base, _EMPTY)
                for target in targets:
                    for name in _bound_names(target):
                        if origins - env.get(name, _EMPTY):
                            env[name] = env.get(name, _EMPTY) | origins
                            changed = True
        return env

    # -- expression transfer ----------------------------------------------

    def origins_of(
        self,
        expr: ast.expr,
        env: Dict[str, Origins],
        info: Optional[FunctionInfo] = None,
    ) -> Origins:
        """Origin set of *expr* under *env*."""
        if self.seed_expr(expr):
            return frozenset({SEED})
        if isinstance(expr, ast.Name):
            return env.get(expr.id, _EMPTY)
        if isinstance(expr, ast.Call):
            return self._call_origins(expr, env, info)
        if isinstance(expr, ast.Subscript):
            # The *value* carries the taint; a tainted index selecting
            # from an untainted container yields untainted data.
            return self.origins_of(expr.value, env, info)
        if isinstance(expr, ast.Attribute):
            return self.origins_of(expr.value, env, info)
        if isinstance(expr, ast.IfExp):
            return (
                self.origins_of(expr.body, env, info)
                | self.origins_of(expr.orelse, env, info)
            )
        if isinstance(expr, ast.BinOp):
            return (
                self.origins_of(expr.left, env, info)
                | self.origins_of(expr.right, env, info)
            )
        if isinstance(expr, ast.UnaryOp):
            return self.origins_of(expr.operand, env, info)
        if isinstance(expr, ast.Compare):
            out = self.origins_of(expr.left, env, info)
            for comp in expr.comparators:
                out |= self.origins_of(comp, env, info)
            return out
        if isinstance(expr, ast.BoolOp):
            out: Origins = _EMPTY
            for value in expr.values:
                out |= self.origins_of(value, env, info)
            return out
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = _EMPTY
            for elt in expr.elts:
                out |= self.origins_of(elt, env, info)
            return out
        if isinstance(expr, ast.Starred):
            return self.origins_of(expr.value, env, info)
        if isinstance(expr, ast.NamedExpr):
            return self.origins_of(expr.value, env, info)
        return _EMPTY

    def _call_origins(
        self,
        call: ast.Call,
        env: Dict[str, Origins],
        info: Optional[FunctionInfo],
    ) -> Origins:
        arg_origins = [self.origins_of(a, env, info) for a in call.args]
        kw_origins = {
            kw.arg: self.origins_of(kw.value, env, info)
            for kw in call.keywords
            if kw.arg is not None
        }
        callees = self.program.resolve_call(call, info)
        if not callees:
            # Unknown callee: conservatively, taint-in taint-out.
            out: Origins = _EMPTY
            for o in arg_origins:
                out |= o
            for o in kw_origins.values():
                out |= o
            # A method call also carries its receiver's taint through.
            if isinstance(call.func, ast.Attribute):
                out |= self.origins_of(call.func.value, env, info)
            return out
        out = _EMPTY
        for callee in callees:
            summary = self.summaries.get((callee.path, callee.qualname))
            if summary is None:
                continue
            params = callee.params
            offset = 1 if params[:1] in (["self"], ["cls"]) else 0
            for origin in summary.returns:
                if origin == SEED:
                    out |= {SEED}
                    continue
                # Map the callee parameter back to this call's argument.
                try:
                    idx = params.index(origin) - offset
                except ValueError:
                    continue
                if origin in kw_origins:
                    out |= kw_origins[origin]
                elif 0 <= idx < len(arg_origins):
                    out |= arg_origins[idx]
        return out

    def is_tainted(
        self,
        expr: ast.expr,
        env: Dict[str, Origins],
        info: Optional[FunctionInfo] = None,
    ) -> bool:
        return SEED in self.origins_of(expr, env, info)


def _bound_names(target: ast.expr) -> List[str]:
    """Plain names bound by an assignment target (tuple-aware)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            out.extend(_bound_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _bound_names(target.value)
    return []


def _target_name(target: ast.expr) -> Optional[str]:
    return target.id if isinstance(target, ast.Name) else None


# -- generic forward CFG solver -------------------------------------------

S = TypeVar("S")


@dataclass
class ForwardResult:
    """IN/OUT states per CFG node after the worklist converges."""

    in_states: Dict[int, Any] = field(default_factory=dict)
    out_states: Dict[int, Any] = field(default_factory=dict)


def run_forward(
    cfg: CFG,
    *,
    init: S,
    bottom: S,
    transfer: Callable[[int, S], S],
    join: Callable[[S, S], S],
    equals: Callable[[S, S], bool],
) -> ForwardResult:
    """Forward worklist solver over *cfg*.

    ``transfer(nid, in_state)`` is the per-node transfer function.
    Normal edges propagate the OUT state; exceptional edges propagate
    ``join(in, out)`` — a raising statement may have executed any
    prefix of its effects, so the landing state must cover both the
    before and after views.  ``bottom`` is the identity of ``join``
    (the state of an unvisited node).
    """
    in_states: Dict[int, S] = {nid: bottom for nid in cfg.nodes}
    out_states: Dict[int, S] = {nid: bottom for nid in cfg.nodes}
    in_states[cfg.entry] = init
    work: List[int] = [cfg.entry]
    seen: Set[int] = {cfg.entry}
    while work:
        nid = work.pop(0)
        seen.discard(nid)
        node = cfg.nodes[nid]
        out = transfer(nid, in_states[nid])
        out_states[nid] = out
        exc_out = join(in_states[nid], out)
        for succ, prop in [(s, out) for s in node.succs] + [
            (s, exc_out) for s in node.exc_succs
        ]:
            merged = join(in_states[succ], prop)
            if not equals(merged, in_states[succ]):
                in_states[succ] = merged
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
    result = ForwardResult()
    result.in_states = dict(in_states)
    result.out_states = dict(out_states)
    return result
