"""SARIF 2.1.0 output for GitHub code scanning.

:func:`to_sarif` converts a :class:`~repro.analysis.reprolint.linter.
LintReport` into a SARIF ``2.1.0`` log: one run, the ``reprolint``
driver with full per-rule metadata (from
:data:`~repro.analysis.reprolint.rules_flow.RULE_DOCS`), one result
per violation pinned to ``artifactLocation`` + ``region`` so findings
annotate PR diffs.  Parse errors and stale allowlist entries surface
as results of two synthetic reporting rules — they fail CI, so they
must be visible in the same channel.

:func:`validate_sarif` checks a produced log against an embedded,
trimmed SARIF 2.1.0 schema (the subset of the official schema this
emitter exercises — required keys, version literal, result/location
shapes).  It uses ``jsonschema`` when available and degrades to the
structural checks otherwise, so the validator never adds a hard
dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from .rules import Violation
from .rules_flow import RULE_DOCS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .linter import LintReport

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "to_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Synthetic reporting rules for non-violation findings.
_STALE_RULE = "stale-allowlist"
_PARSE_RULE = "parse-error"

#: Trimmed SARIF 2.1.0 schema: the subset of the official OASIS schema
#: that this emitter's output exercises.  ``additionalProperties`` stays
#: permissive (real SARIF allows vendor extensions); the *required*
#: shapes — version literal, run/tool/driver nesting, result and
#: location structure — match the official schema.
TRIMMED_SARIF_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "fullDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "level", "message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error"
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation"
                                                ],
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                        "properties": {
                                                            "uri": {
                                                                "type": (
                                                                    "string"
                                                                )
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": (
                                                                    "integer"
                                                                ),
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": (
                                                                    "integer"
                                                                ),
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _first_line(text: str) -> str:
    return text.strip().splitlines()[0]


def _driver_rules() -> List[Dict[str, Any]]:
    rules: List[Dict[str, Any]] = []
    for rule_id, doc in RULE_DOCS.items():
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": _first_line(doc)},
                "fullDescription": {"text": doc},
                "defaultConfiguration": {"level": "error"},
            }
        )
    rules.append(
        {
            "id": _STALE_RULE,
            "shortDescription": {
                "text": "Allowlist entry suppressed nothing (stale)"
            },
            "fullDescription": {
                "text": (
                    "Every reprolint.toml [[allow]] entry must suppress at "
                    "least one live violation on a full-tree lint; entries "
                    "that no longer match are dead weight and must be "
                    "removed with the code change that retired them."
                )
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    rules.append(
        {
            "id": _PARSE_RULE,
            "shortDescription": {"text": "File failed to parse"},
            "fullDescription": {
                "text": "reprolint could not parse this file; nothing in "
                "it was analyzed."
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    return rules


def _violation_result(violation: Violation) -> Dict[str, Any]:
    return {
        "ruleId": violation.rule,
        "level": "error",
        "message": {
            "text": f"{violation.message} [{violation.qualname}]"
        },
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(1, violation.line),
                        "startColumn": max(1, violation.col + 1),
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reprolintSite/v1": (
                f"{violation.path}::{violation.qualname}::{violation.rule}"
            )
        },
    }


def to_sarif(report: "LintReport") -> Dict[str, Any]:
    """The SARIF 2.1.0 log dict for *report*."""
    results = [_violation_result(v) for v in report.violations]
    for entry in report.stale_entries:
        results.append(
            {
                "ruleId": _STALE_RULE,
                "level": "error",
                "message": {
                    "text": (
                        f"stale allowlist entry: {entry.rule} at "
                        f"{entry.site} suppressed nothing (reason was: "
                        f"{entry.reason})"
                    )
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": "reprolint.toml",
                                "uriBaseId": "%SRCROOT%",
                            }
                        }
                    }
                ],
            }
        )
    for error in report.parse_errors:
        # Formatted as "path:line:col: cannot parse: ...".
        uri = error.split(":", 1)[0]
        results.append(
            {
                "ruleId": _PARSE_RULE,
                "level": "error",
                "message": {"text": error},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": uri,
                                "uriBaseId": "%SRCROOT%",
                            }
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "docs/static_analysis.md"
                        ),
                        "semanticVersion": "2.0.0",
                        "rules": _driver_rules(),
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def validate_sarif(log: Dict[str, Any]) -> None:
    """Raise ``ValueError`` if *log* violates the trimmed 2.1.0 schema."""
    try:
        import jsonschema
    except ImportError:  # pragma: no cover - jsonschema ships in CI
        _validate_structurally(log)
        return
    try:
        jsonschema.validate(log, TRIMMED_SARIF_SCHEMA)
    except jsonschema.ValidationError as exc:
        raise ValueError(f"invalid SARIF output: {exc.message}") from exc


def _validate_structurally(log: Dict[str, Any]) -> None:
    """Dependency-free subset of :func:`validate_sarif`."""
    if log.get("version") != SARIF_VERSION:
        raise ValueError("invalid SARIF output: version must be '2.1.0'")
    runs = log.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("invalid SARIF output: runs must be non-empty")
    for run in runs:
        driver = run.get("tool", {}).get("driver", {})
        if not isinstance(driver.get("name"), str):
            raise ValueError("invalid SARIF output: missing driver name")
        if not isinstance(run.get("results"), list):
            raise ValueError("invalid SARIF output: missing results array")
        for result in run["results"]:
            if not isinstance(result.get("ruleId"), str):
                raise ValueError("invalid SARIF output: result lacks ruleId")
            if not isinstance(
                result.get("message", {}).get("text"), str
            ):
                raise ValueError(
                    "invalid SARIF output: result lacks message.text"
                )
