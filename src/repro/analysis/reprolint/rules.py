"""The repo-specific AST rules (RL001-RL005).

Each rule is a function ``(module_ast, path_key) -> list[Violation]``.
Scoping — which files each rule applies to — lives in
:mod:`repro.analysis.reprolint.linter`; the rules themselves only
inspect syntax.  The catalog, with rationale and worked examples, is
``docs/static_analysis.md``.

RL001  Shared-array writes must route through ``primitives.atomics``.
       A bare subscript store (``labels[idx] = ...``) whose base array
       is *shared* — a parameter, ``self.<attr>``, or an alias of
       either — is the exact bug class the simulated CRCW machine
       exists to prevent.  Legal claim scatters live in the kernel
       registry (the ``reprolint.toml`` allowlist).
RL002  No allocating NumPy calls in the fast-backend kernels.  PR 3's
       zero-allocation discipline: steady-state rounds draw from the
       Workspace arena; a fresh ``np.zeros``/``np.concatenate``/...
       (without ``out=``) re-introduces the per-round allocation the
       backend seam removed.  Zero-length literals (``np.zeros(0)``
       empty-return sentinels) are exempt.
RL003  A kernel that expands edges must charge the cost tracker on
       every return path *after* the expansion — otherwise the (work,
       depth) profiles undercount exactly when a kernel exits early
       and the figures silently diverge from the paper's.
RL004  No ``np.random`` module-global state and no wall-clock reads in
       simulation code: randomness flows through seeded generators
       (``primitives.rand`` / ``default_rng(seed)``), real time only
       through the wall-clock harness (``analysis/wallclock.py``).
RL005  No reads of the retired global-singleton accessors
       (``current_tracker``, ``active_sanitizer``/``current_sanitizer``,
       ``active_fault_plan``, ``set_default_backend``) outside the
       runtime package that hosts their replacement: ambient state is
       read from ``repro.runtime.current_context()``.  The deprecated
       shim *definitions* are flagged too, so retiring one forces the
       allowlist entry to be removed with it.
RL010  Observational purity of the tracing layer (``repro.obs``): code
       there may never mutate caller-owned state — no subscript or
       augmented stores into parameters, no attribute stores on them,
       no mutating ``np.*`` calls or in-place ndarray methods, and no
       cost-tracker charges.  With the tracer active, a run must be
       byte-identical to the untraced run; the golden tracing-parity
       tests check that empirically, this rule pins it structurally.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["Violation", "RULE_CHECKERS", "iter_functions"]


@dataclass(frozen=True)
class Violation:
    """One rule hit, pinned to file:line for the report."""

    rule: str
    path: str
    line: int
    col: int
    qualname: str
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: {self.rule} "
            f"{self.message} [{self.qualname}]"
        )


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Yield ``(qualname, node)`` for every function/method in a module."""

    def walk(body: List[ast.stmt], prefix: str) -> Iterator[
        Tuple[str, ast.FunctionDef]
    ]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                yield qualname, node  # type: ignore[misc]
                yield from walk(node.body, f"{qualname}.")
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}{node.name}.")

    yield from walk(tree.body, "")


def _root_name(expr: ast.expr) -> Optional[ast.expr]:
    """The base Name/terminal of an Attribute/Subscript access chain."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr


def _chain_has_private(expr: ast.expr) -> bool:
    """Does any attribute on the access chain start with an underscore?

    Underscore-prefixed containers (``self._buffers[key]``) are host-side
    Python bookkeeping — dicts, caches, arena registries — not simulated
    PRAM memory, so RL001 does not treat stores into them as shared
    writes.
    """
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        if isinstance(expr, ast.Attribute) and expr.attr.startswith("_"):
            return True
        expr = expr.value
    return isinstance(expr, ast.Name) and expr.id.startswith("_")


class _SharedNames:
    """Intra-function shared/local classification of names.

    Parameters and ``self``-rooted state are *shared*; names bound from
    call results (workspace views, fresh arrays) are *local*; names
    bound from shared names (``C = state.C``) inherit sharedness.
    Unknown names (module globals, loop variables) are conservatively
    treated as not shared — RL001 favors precision over recall, and the
    runtime sanitizer backstops what the heuristic cannot see.
    """

    def __init__(self, fn: ast.FunctionDef) -> None:
        self.shared: Set[str] = set()
        self.local: Set[str] = set()
        args = fn.args
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        ):
            self.shared.add(a.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._bind(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind(node.target, node.value)

    def _bind(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple):
            for t, v in zip(target.elts, value.elts):
                self._bind(t, v)
            return
        if not isinstance(target, ast.Name):
            return
        kind = self._classify(value)
        if kind == "shared":
            self.shared.add(target.id)
            self.local.discard(target.id)
        elif kind == "local":
            self.local.add(target.id)
            self.shared.discard(target.id)

    def _classify(self, value: ast.expr) -> str:
        if isinstance(value, ast.Call):
            return "local"
        if isinstance(value, (ast.Attribute, ast.Subscript, ast.Name)):
            root = _root_name(value)
            if isinstance(root, ast.Name):
                if root.id in self.shared:
                    return "shared"
                if root.id in self.local:
                    return "local"
            return "unknown"
        # Arithmetic, comparisons, literals, comprehensions: fresh values.
        return "local"

    def is_shared(self, expr: ast.expr) -> bool:
        root = _root_name(expr)
        return isinstance(root, ast.Name) and root.id in self.shared


def check_rl001(tree: ast.Module, path: str) -> List[Violation]:
    """Bare subscript stores into shared arrays."""
    violations: List[Violation] = []
    for qualname, fn in iter_functions(tree):
        names = _SharedNames(fn)
        for node in ast.walk(fn):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                for sub in _subscript_targets(target):
                    base = sub.value
                    if _chain_has_private(base):
                        continue
                    if names.is_shared(base):
                        violations.append(
                            Violation(
                                rule="RL001",
                                path=path,
                                line=sub.lineno,
                                col=sub.col_offset,
                                qualname=qualname,
                                message=(
                                    "bare write into shared array "
                                    f"{ast.unparse(base)!r}; route through "
                                    "primitives.atomics or register the "
                                    "kernel in reprolint.toml"
                                ),
                            )
                        )
    return violations


def _subscript_targets(target: ast.expr) -> Iterator[ast.Subscript]:
    if isinstance(target, ast.Subscript):
        yield target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _subscript_targets(elt)


#: NumPy callables whose plain form allocates a fresh array.  The fused
#: one-pass search primitives (``flatnonzero``, ``searchsorted``) are
#: deliberately absent: their compact outputs are the documented
#: exception to the arena discipline (see workspace.py's module note).
_RL002_ALLOCATORS = frozenset(
    {
        "empty", "zeros", "ones", "full",
        "empty_like", "zeros_like", "ones_like", "full_like",
        "arange", "array", "copy", "tile", "repeat",
        "concatenate", "stack", "vstack", "hstack",
        "sort", "argsort", "unique", "cumsum", "where",
    }
)


def check_rl002(tree: ast.Module, path: str) -> List[Violation]:
    """Allocating ``np.*`` calls inside the fast-kernel scope."""
    violations: List[Violation] = []
    for qualname, fn in iter_functions(tree):
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
                and func.attr in _RL002_ALLOCATORS
            ):
                continue
            if any(kw.arg == "out" for kw in node.keywords):
                continue
            if (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
            ):
                # Zero-length sentinel returns (np.zeros(0, ...)) do not
                # grow with the input; exempt.
                continue
            violations.append(
                Violation(
                    rule="RL002",
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    qualname=qualname,
                    message=(
                        f"allocating np.{func.attr} in fast-kernel scope; "
                        "use the Workspace arena or pass out="
                    ),
                )
            )
    return violations


def _is_expand_call(node: ast.Call) -> bool:
    return isinstance(node.func, ast.Attribute) and node.func.attr == "expand"


def _is_charge_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in ("end_round", "write_min", "first_winner")
    if isinstance(func, ast.Attribute) and func.attr in ("add", "sync"):
        base = func.value
        if isinstance(base, ast.Name):
            return "tracker" in base.id
        if isinstance(base, ast.Attribute):
            # ctx.tracker.add / current_context().tracker.add
            return base.attr == "tracker"
        if isinstance(base, ast.Call) and isinstance(base.func, ast.Name):
            return base.func.id == "current_tracker"
    return False


@dataclass
class _ChargeState:
    expanded: bool = False
    uncharged: bool = False  # an expand with no later charge on this path
    terminated: bool = False  # every path through here returned/raised


def check_rl003(tree: ast.Module, path: str) -> List[Violation]:
    """Edge-expanding kernels must charge on every post-expand return path."""
    violations: List[Violation] = []
    for qualname, fn in iter_functions(tree):
        if not any(
            isinstance(n, ast.Call) and _is_expand_call(n)
            for n in ast.walk(fn)
        ):
            continue

        def visit_stmts(
            stmts: List[ast.stmt], state: _ChargeState
        ) -> _ChargeState:
            for stmt in stmts:
                if state.terminated:
                    break
                state = visit(stmt, state)
            return state

        def scan_expr(stmt: ast.stmt, state: _ChargeState) -> _ChargeState:
            # Order within one statement: expansion happens in the
            # value, charges count afterwards — both marks in source
            # order is more precision than these kernels need, so any
            # charge call in the same statement clears the flag.
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and _is_expand_call(node):
                    state.expanded = True
                    state.uncharged = True
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and _is_charge_call(node):
                    state.uncharged = False
            return state

        def visit(stmt: ast.stmt, state: _ChargeState) -> _ChargeState:
            if isinstance(stmt, ast.Return):
                state = scan_expr(stmt, state)
                if state.expanded and state.uncharged:
                    violations.append(
                        Violation(
                            rule="RL003",
                            path=path,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            qualname=qualname,
                            message=(
                                "return after graph.expand() without "
                                "charging the cost tracker "
                                "(end_round/tracker.add) on this path"
                            ),
                        )
                    )
                state.terminated = True
                return state
            if isinstance(stmt, ast.Raise):
                state.terminated = True
                return state
            if isinstance(stmt, ast.If):
                then = visit_stmts(
                    stmt.body, _ChargeState(state.expanded, state.uncharged)
                )
                other = visit_stmts(
                    stmt.orelse, _ChargeState(state.expanded, state.uncharged)
                )
                if then.terminated and other.terminated:
                    state.terminated = True
                elif then.terminated:
                    state = other
                elif other.terminated:
                    state = then
                else:
                    state = _ChargeState(
                        then.expanded or other.expanded,
                        then.uncharged or other.uncharged,
                    )
                return state
            if isinstance(stmt, (ast.With, ast.For, ast.While)):
                inner = visit_stmts(stmt.body, state)
                # A loop body may run zero times, so a return inside it
                # does not terminate the outer path; a with-body does.
                if not isinstance(stmt, ast.With):
                    inner.terminated = False
                return visit_stmts(getattr(stmt, "orelse", []), inner)
            if isinstance(stmt, ast.Try):
                state = visit_stmts(stmt.body, state)
                for handler in stmt.handlers:
                    h = visit_stmts(
                        handler.body,
                        _ChargeState(state.expanded, state.uncharged),
                    )
                    state.uncharged = state.uncharged or h.uncharged
                state.terminated = False
                return visit_stmts(stmt.finalbody, state)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return state  # nested defs are separate kernels
            return scan_expr(stmt, state)

        final = visit_stmts(fn.body, _ChargeState())
        if not final.terminated and final.expanded and final.uncharged:
            violations.append(
                Violation(
                    rule="RL003",
                    path=path,
                    line=fn.lineno,
                    col=fn.col_offset,
                    qualname=qualname,
                    message=(
                        "kernel falls off the end after graph.expand() "
                        "without charging the cost tracker"
                    ),
                )
            )
    return violations


#: ``np.random.<fn>`` calls that read/write NumPy's module-global RNG
#: state.  ``np.random.default_rng(seed)`` and ``Generator`` methods
#: are the sanctioned, seedable alternative.
_RL004_GLOBAL_RANDOM = frozenset(
    {
        "seed", "rand", "randn", "random", "randint", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
        "normal", "exponential", "poisson", "get_state", "set_state",
    }
)

_RL004_CLOCKS = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
        "clock",
    }
)


def check_rl004(tree: ast.Module, path: str) -> List[Violation]:
    """Global RNG state / wall-clock reads in simulation code."""
    violations: List[Violation] = []
    qualnames: Dict[int, str] = {}
    for qualname, fn in iter_functions(tree):
        for node in ast.walk(fn):
            qualnames.setdefault(id(node), qualname)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        qualname = qualnames.get(id(node), "<module>")
        base = func.value
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in ("np", "numpy")
            and func.attr in _RL004_GLOBAL_RANDOM
        ):
            violations.append(
                Violation(
                    rule="RL004",
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    qualname=qualname,
                    message=(
                        f"np.random.{func.attr} uses module-global RNG "
                        "state; use primitives.rand / a seeded "
                        "default_rng"
                    ),
                )
            )
        elif (
            isinstance(base, ast.Name)
            and base.id == "time"
            and func.attr in _RL004_CLOCKS
        ):
            violations.append(
                Violation(
                    rule="RL004",
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    qualname=qualname,
                    message=(
                        f"wall-clock read time.{func.attr} in simulation "
                        "code; real time belongs to the wall-clock "
                        "harness (analysis/wallclock.py)"
                    ),
                )
            )
        elif (
            func.attr in ("now", "utcnow")
            and isinstance(base, (ast.Name, ast.Attribute))
            and (
                (isinstance(base, ast.Name) and base.id == "datetime")
                or (
                    isinstance(base, ast.Attribute)
                    and base.attr == "datetime"
                )
            )
        ):
            violations.append(
                Violation(
                    rule="RL004",
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    qualname=qualname,
                    message=(
                        f"datetime.{func.attr}() wall-clock read in "
                        "simulation code; real time belongs to the "
                        "wall-clock harness"
                    ),
                )
            )
    return violations


#: The retired singleton accessors (and their shim definitions).  Reads
#: of ambient run state go through ``repro.runtime.current_context()``.
_RL005_ACCESSORS = frozenset(
    {
        "current_tracker",
        "active_sanitizer",
        "current_sanitizer",
        "active_fault_plan",
        "set_default_backend",
    }
)


def check_rl005(tree: ast.Module, path: str) -> List[Violation]:
    """Calls to (or definitions of) the retired singleton accessors."""
    violations: List[Violation] = []
    qualnames: Dict[int, str] = {}
    for qualname, fn in iter_functions(tree):
        for node in ast.walk(fn):
            qualnames.setdefault(id(node), qualname)
        if fn.name in _RL005_ACCESSORS:
            violations.append(
                Violation(
                    rule="RL005",
                    path=path,
                    line=fn.lineno,
                    col=fn.col_offset,
                    qualname=qualname,
                    message=(
                        f"definition of deprecated accessor {fn.name}(); "
                        "shims live behind allowlist entries until "
                        "retirement"
                    ),
                )
            )
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in _RL005_ACCESSORS:
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr in _RL005_ACCESSORS:
            name = func.attr
        if name is None:
            continue
        violations.append(
            Violation(
                rule="RL005",
                path=path,
                line=node.lineno,
                col=node.col_offset,
                qualname=qualnames.get(id(node), "<module>"),
                message=(
                    f"deprecated global-singleton accessor {name}(); read "
                    "repro.runtime.current_context() instead"
                ),
            )
        )
    return violations


#: ``np.*`` callables that mutate an existing array in place.
_RL010_NP_MUTATORS = frozenset(
    {"copyto", "put", "place", "putmask", "fill_diagonal", "shuffle"}
)

#: ndarray methods that mutate the receiver in place.
_RL010_METHOD_MUTATORS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "itemset"}
)


def _fn_params(fn: ast.FunctionDef) -> Set[str]:
    args = fn.args
    names = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        )
    }
    return names - {"self", "cls"}


def check_rl010(tree: ast.Module, path: str) -> List[Violation]:
    """Observational purity: the obs layer never mutates what it watches.

    Inside ``repro.obs``, any write whose target is rooted at a function
    parameter (the run state handed in for observation), any in-place
    ``np.*`` / ndarray-method mutation, and any cost-tracker charge
    (``tracker.add``/``tracker.sync``) is a violation.  Mutation of the
    tracer's *own* state (``self.events``, local dicts) is fine.
    """
    violations: List[Violation] = []

    def hit(node: ast.AST, qualname: str, message: str) -> None:
        violations.append(
            Violation(
                rule="RL010",
                path=path,
                line=node.lineno,  # type: ignore[attr-defined]
                col=node.col_offset,  # type: ignore[attr-defined]
                qualname=qualname,
                message=message,
            )
        )

    for qualname, fn in iter_functions(tree):
        params = _fn_params(fn)
        for node in ast.walk(fn):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                for sub in _subscript_targets(target):
                    root = _root_name(sub.value)
                    if isinstance(root, ast.Name) and root.id in params:
                        hit(
                            sub,
                            qualname,
                            f"store into caller-owned {root.id!r}; the "
                            "observability layer observes, it never writes",
                        )
                if isinstance(target, ast.Attribute):
                    root = _root_name(target)
                    if isinstance(root, ast.Name) and root.id in params:
                        hit(
                            target,
                            qualname,
                            f"attribute store on caller-owned {root.id!r} "
                            "from tracer code",
                        )
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                func = node.func
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id in ("np", "numpy")
                    and func.attr in _RL010_NP_MUTATORS
                ):
                    hit(
                        node,
                        qualname,
                        f"in-place np.{func.attr} in tracer code",
                    )
                root = _root_name(func.value)
                if (
                    func.attr in _RL010_METHOD_MUTATORS
                    and isinstance(root, ast.Name)
                    and root.id in params
                ):
                    hit(
                        node,
                        qualname,
                        f"in-place .{func.attr}() on caller-owned "
                        f"{root.id!r} from tracer code",
                    )
                if func.attr in ("add", "sync", "end_round"):
                    base = func.value
                    is_tracker = (
                        isinstance(base, ast.Name) and "tracker" in base.id
                    ) or (
                        isinstance(base, ast.Attribute)
                        and base.attr == "tracker"
                    )
                    if is_tracker:
                        hit(
                            node,
                            qualname,
                            "tracer code charges the cost tracker; "
                            "tracing must not perturb (work, depth)",
                        )
    return violations


#: rule id -> checker, in report order.
RULE_CHECKERS = {
    "RL001": check_rl001,
    "RL002": check_rl002,
    "RL003": check_rl003,
    "RL004": check_rl004,
    "RL005": check_rl005,
    "RL010": check_rl010,
}
