"""Module-level call graphs with class-aware method resolution.

:class:`Program` indexes one or more parsed modules: every function
and method by qualified name, every class with its base-class chain.
:meth:`Program.resolve_call` maps a call expression to the candidate
callee(s):

* ``f(...)`` — the module-level function named ``f`` (same module
  first, then any analyzed module);
* ``self.m(...)`` — method ``m`` on the enclosing class, walking the
  (name-resolved) base chain, exactly how ``ParallelWorkspace``
  inherits the serial ``Workspace`` vocabulary;
* ``Class.m(...)`` / ``Class(...)`` — the named class's method /
  ``__init__``;
* ``obj.m(...)`` with a receiver whose class is locally evident
  (``obj = Class(...)`` in the same function) — that class's ``m``;
* ``obj.m(...)`` with an *unknown* receiver — **registry resolution**:
  every analyzed class that defines (or inherits) ``m``.  This is how
  calls through the execution-backend seam (a workspace handed over as
  ``state.ws``) resolve to all registered implementations
  (``NullWorkspace`` / ``Workspace`` / ``ParallelWorkspace``), so a
  taint summary covers whichever backend runs.

Resolution is deliberately an over-approximation: extra candidates
make the dataflow summaries built on top *more* conservative, never
less.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["FunctionInfo", "ClassInfo", "Program"]

FunctionNode = ast.FunctionDef  # AsyncFunctionDef shares the layout


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    path: str
    qualname: str
    node: FunctionNode
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> List[str]:
        args = self.node.args
        out = [a.arg for a in (*args.posonlyargs, *args.args)]
        if args.vararg:
            out.append(args.vararg.arg)
        out.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            out.append(args.kwarg.arg)
        return out


@dataclass
class ClassInfo:
    """One analyzed class: direct methods plus named bases."""

    path: str
    name: str
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


class Program:
    """A set of parsed modules with a resolvable call structure."""

    def __init__(self, modules: Dict[str, ast.Module]) -> None:
        self.modules = modules
        #: (path, qualname) -> FunctionInfo, insertion-ordered.
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        #: module-level functions by bare name (cross-module).
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        #: classes by bare name (cross-module).
        self.classes: Dict[str, ClassInfo] = {}
        for path, tree in modules.items():
            self._index_module(path, tree)

    # -- indexing ----------------------------------------------------------

    def _index_module(self, path: str, tree: ast.Module) -> None:
        def walk(body: List[ast.stmt], prefix: str, cls: Optional[ClassInfo]) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{node.name}"
                    info = FunctionInfo(
                        path=path,
                        qualname=qualname,
                        node=node,  # type: ignore[arg-type]
                        class_name=cls.name if cls is not None else None,
                    )
                    self.functions[(path, qualname)] = info
                    if cls is not None:
                        cls.methods.setdefault(node.name, info)
                    else:
                        self._by_name.setdefault(node.name, []).append(info)
                    walk(node.body, f"{qualname}.", None)
                elif isinstance(node, ast.ClassDef):
                    cinfo = ClassInfo(
                        path=path,
                        name=node.name,
                        bases=[
                            base.id
                            for base in node.bases
                            if isinstance(base, ast.Name)
                        ]
                        + [
                            base.attr
                            for base in node.bases
                            if isinstance(base, ast.Attribute)
                        ],
                    )
                    self.classes.setdefault(node.name, cinfo)
                    walk(node.body, f"{node.name}.", cinfo)

        walk(tree.body, "", None)

    # -- queries -----------------------------------------------------------

    def functions_in(self, path: str) -> Iterator[FunctionInfo]:
        for (p, _), info in self.functions.items():
            if p == path:
                yield info

    def method_on(self, class_name: str, method: str) -> Optional[FunctionInfo]:
        """Resolve *method* on *class_name*, walking the base chain."""
        seen = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self.classes.get(name)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            queue.extend(cls.bases)
        return None

    def implementations_of(self, method: str) -> List[FunctionInfo]:
        """Registry resolution: every class whose interface has *method*.

        Each analyzed class contributes the implementation it would
        actually dispatch to (its own override, else the inherited
        one) — the full candidate set for a receiver whose concrete
        backend is only known at run time.
        """
        out: List[FunctionInfo] = []
        for cls in self.classes.values():
            info = self.method_on(cls.name, method)
            if info is not None and info not in out:
                out.append(info)
        return out

    def _local_receiver_class(
        self, caller: Optional[FunctionInfo], receiver: str
    ) -> Optional[str]:
        """The class of *receiver* when a local ``x = Class(...)`` binds it."""
        if caller is None:
            return None
        for node in ast.walk(caller.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == receiver
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id in self.classes
                ):
                    return node.value.func.id
        return None

    def resolve_call(
        self, call: ast.Call, caller: Optional[FunctionInfo] = None
    ) -> List[FunctionInfo]:
        """Candidate callees of *call* from within *caller* (may be [])."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.classes:
                init = self.method_on(func.id, "__init__")
                return [init] if init is not None else []
            candidates = self._by_name.get(func.id, [])
            if caller is not None:
                same = [c for c in candidates if c.path == caller.path]
                if same:
                    return same
            return list(candidates)
        if isinstance(func, ast.Attribute):
            method = func.attr
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and caller is not None and caller.class_name:
                    info = self.method_on(caller.class_name, method)
                    return [info] if info is not None else []
                if base.id == "cls" and caller is not None and caller.class_name:
                    info = self.method_on(caller.class_name, method)
                    return [info] if info is not None else []
                if base.id in self.classes:
                    info = self.method_on(base.id, method)
                    return [info] if info is not None else []
                local_cls = self._local_receiver_class(caller, base.id)
                if local_cls is not None:
                    info = self.method_on(local_cls, method)
                    return [info] if info is not None else []
            # Unknown receiver: registry resolution across all classes.
            return self.implementations_of(method)
        return []

    def call_edges(
        self, info: FunctionInfo
    ) -> Iterator[Tuple[ast.Call, List[FunctionInfo]]]:
        """``(call site, candidate callees)`` for every call in *info*."""
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                yield node, self.resolve_call(node, info)
