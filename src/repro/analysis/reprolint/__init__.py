"""reprolint: the PRAM-invariant static analyzer (``repro lint``).

Nine rules machine-check the disciplines the reproduction's
guarantees rest on (see docs/static_analysis.md for the catalog).
The syntactic family (per-function AST patterns):

* **RL001** — shared-array writes in ``engine/``, ``decomp/``,
  ``connectivity/`` route through ``primitives.atomics`` or appear in
  the justified kernel registry (``reprolint.toml``);
* **RL002** — no allocating NumPy calls in the fast-backend kernels
  (PR 3's zero-allocation discipline);
* **RL003** — edge-expanding kernels charge the cost tracker on every
  post-expand return path;
* **RL004** — no ``np.random`` global state or wall-clock reads in
  simulation code;
* **RL005** — no reads of the retired global-singleton accessors.

The interprocedural family (call graph + CFG + dataflow; see
:mod:`~repro.analysis.reprolint.cfg`,
:mod:`~repro.analysis.reprolint.callgraph`,
:mod:`~repro.analysis.reprolint.dataflow`):

* **RL006** — worker-count taint never reaches allocation sizes, the
  chunk grid, or reduction operands;
* **RL007** — parallel task writes carry a disjoint-slice proof;
* **RL008** — claim/release resource lifecycles hold on every CFG
  path, including exceptional ones;
* **RL009** — shard combines stay inside the sanctioned deterministic
  combiner shapes.

The static half's runtime complement — the PRAM race sanitizer behind
the global ``--sanitize`` flag — lives in :mod:`repro.pram.sanitizer`
(re-exported here for discoverability).
"""

from repro.analysis.reprolint.cache import LINT_VERSION, LintCache
from repro.analysis.reprolint.callgraph import ClassInfo, FunctionInfo, Program
from repro.analysis.reprolint.cfg import CFG, CFGNode, build_cfg
from repro.analysis.reprolint.config import (
    KNOWN_RULES,
    AllowEntry,
    LintConfig,
    load_config,
)
from repro.analysis.reprolint.dataflow import (
    SEED,
    Summary,
    TaintAnalysis,
    run_forward,
)
from repro.analysis.reprolint.linter import (
    RULE_SCOPES,
    LintReport,
    default_lint_root,
    discover_config,
    lint_paths,
    path_key_for,
    rules_for_path,
    run_lint,
)
from repro.analysis.reprolint.rules import RULE_CHECKERS, Violation
from repro.analysis.reprolint.rules_flow import FLOW_RULE_CHECKERS, RULE_DOCS
from repro.analysis.reprolint.sarif import to_sarif, validate_sarif
from repro.pram.sanitizer import (  # noqa: F401  (discoverability re-export)
    PramSanitizer,
    RaceReport,
    active_sanitizer,
    sanitizing,
)

__all__ = [
    "KNOWN_RULES",
    "AllowEntry",
    "LintConfig",
    "load_config",
    "RULE_SCOPES",
    "LintReport",
    "default_lint_root",
    "discover_config",
    "lint_paths",
    "path_key_for",
    "rules_for_path",
    "run_lint",
    "RULE_CHECKERS",
    "Violation",
    "FLOW_RULE_CHECKERS",
    "RULE_DOCS",
    "CFG",
    "CFGNode",
    "build_cfg",
    "ClassInfo",
    "FunctionInfo",
    "Program",
    "SEED",
    "Summary",
    "TaintAnalysis",
    "run_forward",
    "LINT_VERSION",
    "LintCache",
    "to_sarif",
    "validate_sarif",
    "PramSanitizer",
    "RaceReport",
    "active_sanitizer",
    "sanitizing",
]
