"""reprolint: the PRAM-invariant static analyzer (``repro lint``).

Four AST rules machine-check the disciplines the reproduction's
guarantees rest on (see docs/static_analysis.md for the catalog):

* **RL001** — shared-array writes in ``engine/``, ``decomp/``,
  ``connectivity/`` route through ``primitives.atomics`` or appear in
  the justified kernel registry (``reprolint.toml``);
* **RL002** — no allocating NumPy calls in the fast-backend kernels
  (PR 3's zero-allocation discipline);
* **RL003** — edge-expanding kernels charge the cost tracker on every
  post-expand return path;
* **RL004** — no ``np.random`` global state or wall-clock reads in
  simulation code.

The static half's runtime complement — the PRAM race sanitizer behind
the global ``--sanitize`` flag — lives in :mod:`repro.pram.sanitizer`
(re-exported here for discoverability).
"""

from repro.analysis.reprolint.config import (
    KNOWN_RULES,
    AllowEntry,
    LintConfig,
    load_config,
)
from repro.analysis.reprolint.linter import (
    RULE_SCOPES,
    LintReport,
    default_lint_root,
    discover_config,
    lint_paths,
    path_key_for,
    rules_for_path,
    run_lint,
)
from repro.analysis.reprolint.rules import RULE_CHECKERS, Violation
from repro.pram.sanitizer import (  # noqa: F401  (discoverability re-export)
    PramSanitizer,
    RaceReport,
    active_sanitizer,
    sanitizing,
)

__all__ = [
    "KNOWN_RULES",
    "AllowEntry",
    "LintConfig",
    "load_config",
    "RULE_SCOPES",
    "LintReport",
    "default_lint_root",
    "discover_config",
    "lint_paths",
    "path_key_for",
    "rules_for_path",
    "run_lint",
    "RULE_CHECKERS",
    "Violation",
    "PramSanitizer",
    "RaceReport",
    "active_sanitizer",
    "sanitizing",
]
