"""Per-function control-flow graphs for the flow-based lint rules.

One :class:`CFG` node per statement (plus synthetic entry/exit and
join nodes), built directly from the ``ast``.  The graph models the
control constructs the lifecycle rules care about:

* ``if`` / ``while`` / ``for`` branching, with loop back edges and
  ``break`` / ``continue`` resolution;
* ``try`` / ``except`` / ``else`` / ``finally`` — the body's normal
  exit and every handler route through the ``finally`` subgraph, and
  potentially-raising statements get an *exceptional* edge to the
  innermost handler (or ``finally`` head, or the function exit when
  nothing encloses them).  A ``return`` inside a ``try`` routes
  through the enclosing ``finally`` blocks, which is exactly what the
  RL008 typestate analysis needs to prove a ``finally``-released
  resource safe;
* ``with`` bodies (linear; the construct itself does not catch);
* comprehensions and lambdas stay inside their statement's node —
  they are expressions, not control flow, at this level.

Exceptional edges are deliberately coarse: any statement containing a
call, ``yield``, ``assert`` or ``raise`` may transfer to the innermost
exception target.  Over-approximating raise sites only ever *adds*
paths, which keeps the must-style analyses built on top conservative
(they may miss a safe proof, never invent one).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["CFG", "CFGNode", "build_cfg"]


@dataclass
class CFGNode:
    """One statement (or synthetic point) in the flow graph."""

    nid: int
    #: The statement (or except-handler clause) this node executes.
    stmt: Optional[ast.AST]
    label: str
    #: Normal-flow successor node ids.
    succs: Set[int] = field(default_factory=set)
    #: Exceptional successors (the statement raised mid-execution).
    exc_succs: Set[int] = field(default_factory=set)

    @property
    def line(self) -> int:
        return int(getattr(self.stmt, "lineno", 0))


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    nodes: Dict[int, CFGNode]
    entry: int
    exit: int

    def preds(self) -> Dict[int, Set[int]]:
        """Predecessor map over both normal and exceptional edges."""
        preds: Dict[int, Set[int]] = {nid: set() for nid in self.nodes}
        for node in self.nodes.values():
            for succ in node.succs | node.exc_succs:
                preds[succ].add(node.nid)
        return preds

    def exit_preds(self) -> List[Tuple[CFGNode, bool]]:
        """``(node, via_exception)`` pairs for every edge into the exit."""
        pairs: List[Tuple[CFGNode, bool]] = []
        for node in self.nodes.values():
            if self.exit in node.succs:
                pairs.append((node, False))
            if self.exit in node.exc_succs:
                pairs.append((node, True))
        return pairs


def _may_raise(stmt: ast.stmt) -> bool:
    """Whether *stmt* itself can transfer to an exception handler.

    Nested function/class bodies are separate CFGs; a call *inside* a
    nested ``def`` does not raise here, so the walk stops at them.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # ast.walk is breadth-first over everything; approximate by
            # ignoring these subtrees via an explicit check below.
            continue
        if isinstance(node, (ast.Call, ast.Yield, ast.YieldFrom, ast.Await)):
            if _inside_nested_def(stmt, node):
                continue
            return True
    return False


def _expr_may_raise(*exprs: ast.expr) -> bool:
    """Whether evaluating any of *exprs* can raise (contains a call)."""
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Call, ast.Yield, ast.YieldFrom, ast.Await)):
                return True
    return False


def _inside_nested_def(root: ast.stmt, target: ast.AST) -> bool:
    """Is *target* nested under a function/lambda defined inside *root*?"""
    # Build a parent map lazily per statement; statements are small.
    stack: List[Tuple[ast.AST, bool]] = [(root, False)]
    while stack:
        node, nested = stack.pop()
        if node is target:
            return nested
        for child in ast.iter_child_nodes(node):
            child_nested = nested or isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            stack.append((child, child_nested))
    return False


class _Builder:
    def __init__(self) -> None:
        self.nodes: Dict[int, CFGNode] = {}
        self._next = 0

    def new(self, stmt: Optional[ast.AST] = None, label: str = "") -> int:
        nid = self._next
        self._next += 1
        self.nodes[nid] = CFGNode(nid=nid, stmt=stmt, label=label)
        return nid

    def edge(self, src: int, dst: int) -> None:
        self.nodes[src].succs.add(dst)

    def exc_edge(self, src: int, dst: int) -> None:
        self.nodes[src].exc_succs.add(dst)


def build_cfg(fn: ast.FunctionDef) -> CFG:
    """Build the statement-level CFG of *fn* (sync or async)."""
    b = _Builder()
    entry = b.new(label="entry")
    exit_ = b.new(label="exit")

    # Loop targets: (continue_target, break_target) stack.
    loops: List[Tuple[int, int]] = []
    # Heads of the active ``finally`` subgraphs, innermost last: a
    # ``return`` transfers through the innermost one (whose own exit
    # continues onward — over-approximate, never path-hiding).
    finallies: List[int] = []

    def connect_all(srcs: Set[int], dst: int) -> None:
        for src in srcs:
            b.edge(src, dst)

    def build_stmts(
        stmts: List[ast.stmt], preds: Set[int], exc_target: int
    ) -> Set[int]:
        """Wire *stmts* after *preds*; return the fall-through node set."""
        current = set(preds)
        for stmt in stmts:
            if not current:
                break  # unreachable tail
            current = build_stmt(stmt, current, exc_target)
        return current

    def build_stmt(
        stmt: ast.stmt, preds: Set[int], exc_target: int
    ) -> Set[int]:
        if isinstance(stmt, ast.If):
            node = b.new(stmt, "if")
            connect_all(preds, node)
            if _expr_may_raise(stmt.test):
                b.exc_edge(node, exc_target)
            then = build_stmts(stmt.body, {node}, exc_target)
            other = build_stmts(stmt.orelse, {node}, exc_target)
            return then | other

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = b.new(stmt, "loop")
            connect_all(preds, header)
            header_exprs = (
                [stmt.test] if isinstance(stmt, ast.While) else [stmt.iter]
            )
            if _expr_may_raise(*header_exprs):
                b.exc_edge(header, exc_target)
            post = b.new(label="loop-join")
            loops.append((header, post))
            body_exits = build_stmts(stmt.body, {header}, exc_target)
            loops.pop()
            connect_all(body_exits, header)
            orelse_exits = build_stmts(stmt.orelse, {header}, exc_target)
            connect_all(orelse_exits or {header}, post)
            if not stmt.orelse:
                b.edge(header, post)
            return {post}

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = b.new(stmt, "with")
            connect_all(preds, node)
            if _expr_may_raise(*(item.context_expr for item in stmt.items)):
                b.exc_edge(node, exc_target)
            return build_stmts(stmt.body, {node}, exc_target)

        if isinstance(stmt, ast.Try):
            finally_head = (
                b.new(label="finally") if stmt.finalbody else None
            )
            handler_heads = [
                b.new(h, "except") for h in stmt.handlers
            ]
            # Exceptions inside the body go to the handlers (any of
            # them — matching is dynamic), else straight to finally,
            # else out.
            if handler_heads:
                body_exc = handler_heads[0]
            elif finally_head is not None:
                body_exc = finally_head
            else:
                body_exc = exc_target
            if finally_head is not None:
                finallies.append(finally_head)
            body_exits = build_stmts(stmt.body, preds, body_exc)
            # All handler heads are alternative exception landing spots.
            for extra in handler_heads[1:]:
                for node in b.nodes.values():
                    if body_exc in node.exc_succs:
                        node.exc_succs.add(extra)
            orelse_exits = build_stmts(stmt.orelse, body_exits, body_exc)
            if stmt.orelse:
                body_exits = orelse_exits
            handler_exc = (
                finally_head if finally_head is not None else exc_target
            )
            handler_exits: Set[int] = set()
            for head, handler in zip(handler_heads, stmt.handlers):
                handler_exits |= build_stmts(
                    handler.body, {head}, handler_exc
                )
            normal = body_exits | handler_exits
            if finally_head is not None:
                finallies.pop()
                connect_all(normal, finally_head)
                return build_stmts(stmt.finalbody, {finally_head}, exc_target)
            return normal

        if isinstance(stmt, ast.Return):
            node = b.new(stmt, "return")
            connect_all(preds, node)
            if _may_raise(stmt):
                b.exc_edge(node, exc_target)
            # A return inside a try must run the innermost finally; the
            # finally subgraph's own exit continues to the code after
            # the try, which over-approximates (extra paths), never
            # hides one.
            if finallies:
                b.edge(node, finallies[-1])
            else:
                b.edge(node, exit_)
            return set()

        if isinstance(stmt, ast.Raise):
            node = b.new(stmt, "raise")
            connect_all(preds, node)
            b.exc_edge(node, exc_target)
            return set()

        if isinstance(stmt, ast.Break):
            node = b.new(stmt, "break")
            connect_all(preds, node)
            if loops:
                b.edge(node, loops[-1][1])
            return set()

        if isinstance(stmt, ast.Continue):
            node = b.new(stmt, "continue")
            connect_all(preds, node)
            if loops:
                b.edge(node, loops[-1][0])
            return set()

        # Plain statement (assignments, expression statements, nested
        # defs, imports, ...).  Comprehensions/lambdas inside stay in
        # this single node.
        node = b.new(stmt, "stmt")
        connect_all(preds, node)
        if _may_raise(stmt):
            b.exc_edge(node, exc_target)
        return {node}

    tails = build_stmts(fn.body, {entry}, exit_)
    connect_all(tails, exit_)
    if not fn.body:
        b.edge(entry, exit_)
    return CFG(nodes=b.nodes, entry=entry, exit=exit_)
