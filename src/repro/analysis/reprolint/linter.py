"""The reprolint driver: file discovery, rule scoping, allowlisting.

``lint_paths`` walks the given files/directories, runs each rule over
the files inside its scope, filters the hits through the justified
allowlist (:mod:`~repro.analysis.reprolint.config`), and returns a
:class:`LintReport`.  ``repro lint`` is a thin CLI shell around it.

Scoping is by repo-relative path (the part of the absolute path from
``src/repro/`` on), so the linter behaves identically from any working
directory — and so tests can stage doctored copies of real kernels
under a temporary ``src/repro/...`` tree and lint them as if in-repo.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.reprolint import rules_flow  # noqa: F401  (registers RL006-RL009)
from repro.analysis.reprolint.cache import CACHE_BASENAME, LintCache
from repro.analysis.reprolint.config import AllowEntry, LintConfig, load_config
from repro.analysis.reprolint.rules import RULE_CHECKERS, Violation

__all__ = [
    "LintReport",
    "default_lint_root",
    "discover_config",
    "lint_paths",
    "path_key_for",
    "rules_for_path",
]

#: Which files each rule inspects (path-key prefixes; a trailing ``/``
#: means the whole subtree).  RL004's simulation scope is everything in
#: the package except the layers whose *job* is real time / host I/O.
RULE_SCOPES: Dict[str, Tuple[str, ...]] = {
    "RL001": (
        "src/repro/engine/",
        "src/repro/decomp/",
        "src/repro/connectivity/",
    ),
    "RL002": (
        "src/repro/engine/kernels.py",
        "src/repro/engine/workspace.py",
        "src/repro/engine/parallel.py",
    ),
    "RL003": (
        "src/repro/engine/",
        "src/repro/decomp/",
        "src/repro/connectivity/",
    ),
    "RL004": ("src/repro/",),
    "RL005": ("src/repro/",),
    # The flow rules (interprocedural; see rules_flow.py).
    "RL006": ("src/repro/engine/",),
    "RL007": ("src/repro/engine/parallel.py",),
    "RL008": (
        "src/repro/runtime/",
        "src/repro/engine/",
        "src/repro/primitives/hashing.py",
        "src/repro/decomp/",
        "src/repro/connectivity/",
    ),
    "RL009": ("src/repro/engine/parallel.py",),
    "RL010": ("src/repro/obs/",),
}

#: Carve-outs from RL004's blanket scope: the wall-clock harness and
#: the experiment/benchmark layers measure real elapsed time by design,
#: the fuzz loop enforces its ``--time-budget`` stopping condition, the
#: session layer's ``execute_profiled`` reports real run time in its
#: profiles (it *is* the run harness), and the tracer timestamps spans
#: with real time by definition (RL010 polices its purity instead).
RL004_EXEMPT: Tuple[str, ...] = (
    "src/repro/analysis/wallclock.py",
    "src/repro/experiments/",
    "src/repro/fuzz/harness.py",
    "src/repro/obs/",
    "src/repro/runtime/session.py",
)

#: Carve-out from RL005's blanket scope: the runtime package hosts the
#: replacement API, so reads of the deprecated names there are the
#: shims' own implementation plumbing, not call sites to migrate.
RL005_EXEMPT: Tuple[str, ...] = ("src/repro/runtime/",)


def path_key_for(path: Path) -> str:
    """Repo-relative POSIX key for *path* (from ``src/repro/`` on).

    Falls back to the plain POSIX path when the file is not under a
    ``src/repro`` tree (ad-hoc lint targets).
    """
    posix = path.resolve().as_posix()
    marker = "/src/repro/"
    i = posix.rfind(marker)
    if i >= 0:
        return posix[i + 1 :]
    if posix.startswith("src/repro/"):
        return posix
    return path.as_posix()


def rules_for_path(path_key: str) -> List[str]:
    """The rule ids whose scope covers *path_key* (report order)."""
    selected = []
    for rule, prefixes in RULE_SCOPES.items():
        if not any(
            path_key == p or (p.endswith("/") and path_key.startswith(p))
            for p in prefixes
        ):
            continue
        if rule == "RL004" and any(
            path_key == p or (p.endswith("/") and path_key.startswith(p))
            for p in RL004_EXEMPT
        ):
            continue
        if rule == "RL005" and any(
            path_key == p or (p.endswith("/") and path_key.startswith(p))
            for p in RL005_EXEMPT
        ):
            continue
        selected.append(rule)
    return selected


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    stale_entries: List[AllowEntry] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.violations
            and not self.stale_entries
            and not self.parse_errors
        )

    def format_lines(self) -> List[str]:
        lines = [v.format() for v in self.violations]
        lines.extend(self.parse_errors)
        for entry in self.stale_entries:
            lines.append(
                f"reprolint.toml: stale allowlist entry {entry.rule} at "
                f"{entry.site} suppressed nothing — remove it or fix the site"
            )
        return lines

    def summary(self) -> str:
        return (
            f"reprolint: {self.files_checked} file(s), "
            f"{len(self.violations)} violation(s), "
            f"{self.suppressed} allowlisted"
        )


def default_lint_root() -> Path:
    """The package's own source tree (what bare ``repro lint`` checks)."""
    import repro

    return Path(repro.__file__).resolve().parent


def discover_config(start: Optional[Path] = None) -> Optional[Path]:
    """Find ``reprolint.toml``: CWD first, then the source checkout root."""
    candidates = [Path.cwd() / "reprolint.toml"]
    root = start if start is not None else default_lint_root()
    # <checkout>/src/repro -> <checkout>/reprolint.toml
    candidates.append(root.parent.parent / "reprolint.toml")
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def _iter_py_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _lint_file_raw(
    path: Path, path_key: str, rules: Sequence[str]
) -> Tuple[List[Violation], Optional[str]]:
    """Pre-allowlist violations (and parse error) of one file."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError as exc:
        return [], f"{path_key}:{exc.lineno or 0}:1: cannot parse: {exc.msg}"
    violations: List[Violation] = []
    for rule in rules:
        violations.extend(RULE_CHECKERS[rule](tree, path_key))
    return violations, None


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    *,
    enforce_stale: bool = True,
    cache: Optional[LintCache] = None,
) -> LintReport:
    """Lint *paths* (files or trees) under *config*'s allowlist.

    ``enforce_stale=False`` skips the stale-allowlist check — used when
    linting an explicit subset of files, where most entries legitimately
    never get the chance to fire.  *cache* (content-hash keyed) stores
    *raw* per-file findings, so the allowlist — and therefore stale-entry
    detection — is re-applied exactly on warm runs.
    """
    if config is None:
        config = LintConfig()
    config.reset_hits()
    report = LintReport()
    for path in _iter_py_files(paths):
        path_key = path_key_for(path)
        rules = rules_for_path(path_key)
        if not rules:
            continue
        report.files_checked += 1
        cached = None
        sha = None
        if cache is not None:
            try:
                sha = LintCache.digest(path.read_bytes())
            except OSError:
                sha = None
            if sha is not None:
                cached = cache.lookup(path_key, sha, rules)
        if cached is not None:
            raw, parse_error = cached
        else:
            raw, parse_error = _lint_file_raw(path, path_key, rules)
            if cache is not None and sha is not None:
                cache.store(path_key, sha, rules, raw, parse_error)
        if parse_error is not None:
            report.parse_errors.append(parse_error)
            continue
        for violation in raw:
            if config.suppresses(path_key, violation.rule, violation.qualname):
                report.suppressed += 1
            else:
                report.violations.append(violation)
    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    if enforce_stale:
        report.stale_entries = config.stale_entries()
    if cache is not None:
        cache.save()
    return report


def run_lint(
    paths: Optional[Sequence[str]] = None,
    config_path: Optional[str] = None,
    *,
    use_cache: bool = True,
) -> LintReport:
    """CLI-facing wrapper: resolve defaults, load config, lint.

    With no *paths* the package source tree is linted and stale
    allowlist entries are an error; with explicit paths the stale check
    is skipped.  The incremental cache lives next to the config file
    (``.reprolint-cache.json``) and is skipped entirely when no config
    exists or ``use_cache`` is False.
    """
    explicit = bool(paths)
    targets = (
        [Path(p) for p in paths] if paths else [default_lint_root()]
    )
    if config_path is not None:
        config = load_config(Path(config_path))
    else:
        found = discover_config()
        config = load_config(found) if found is not None else LintConfig()
    cache = None
    if use_cache and config.source is not None:
        cache = LintCache.load(config.source.parent / CACHE_BASENAME)
    return lint_paths(
        targets, config, enforce_stale=not explicit, cache=cache
    )
