"""Incremental lint cache keyed by file content hash.

``repro lint`` on an unchanged tree should cost one hash per file, not
one analysis per rule: the cache stores, per path key, the SHA-256 of
the file's bytes, the rule set that ran, and the **pre-allowlist**
violations (plus any parse error).  Storing raw violations — before
suppression — keeps two properties:

* editing ``reprolint.toml`` never invalidates the cache (suppression
  is re-applied on every run, so stale-entry detection stays exact);
* a cache hit replays byte-identical findings, so ``--format sarif``
  output is stable across warm runs.

Entries also record :data:`LINT_VERSION`; bump it whenever a rule's
behavior changes so stale caches self-invalidate.  The cache file is
JSON next to the config (``.reprolint-cache.json``), git-ignored, and
best-effort: unreadable or corrupt caches are treated as empty.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .rules import Violation

__all__ = ["LINT_VERSION", "LintCache", "CACHE_BASENAME"]

#: Bump on any rule-behavior change; mismatched entries are ignored.
LINT_VERSION = 2

CACHE_BASENAME = ".reprolint-cache.json"


@dataclass
class LintCache:
    """Content-hash keyed store of per-file raw lint results."""

    path: Optional[Path] = None
    #: path_key -> {"sha": ..., "rules": [...], "version": int,
    #:              "violations": [...], "parse_error": str | None}
    entries: Dict[str, dict] = field(default_factory=dict)
    hits: int = field(default=0, compare=False)
    misses: int = field(default=0, compare=False)
    _dirty: bool = field(default=False, compare=False)

    @classmethod
    def load(cls, path: Optional[Path]) -> "LintCache":
        cache = cls(path=path)
        if path is None:
            return cache
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return cache
        if (
            isinstance(data, dict)
            and data.get("version") == LINT_VERSION
            and isinstance(data.get("files"), dict)
        ):
            cache.entries = data["files"]
        return cache

    @staticmethod
    def digest(content: bytes) -> str:
        return hashlib.sha256(content).hexdigest()

    def lookup(
        self, path_key: str, sha: str, rules: Sequence[str]
    ) -> Optional[Tuple[List[Violation], Optional[str]]]:
        """Cached ``(raw violations, parse error)`` or None on a miss."""
        entry = self.entries.get(path_key)
        if (
            not isinstance(entry, dict)
            or entry.get("sha") != sha
            or entry.get("version") != LINT_VERSION
            or entry.get("rules") != list(rules)
        ):
            self.misses += 1
            return None
        try:
            violations = [
                Violation(**item) for item in entry.get("violations", [])
            ]
        except TypeError:
            self.misses += 1
            return None
        self.hits += 1
        parse_error = entry.get("parse_error")
        return violations, parse_error if isinstance(parse_error, str) else None

    def store(
        self,
        path_key: str,
        sha: str,
        rules: Sequence[str],
        violations: Sequence[Violation],
        parse_error: Optional[str],
    ) -> None:
        self.entries[path_key] = {
            "sha": sha,
            "version": LINT_VERSION,
            "rules": list(rules),
            "violations": [vars(v) for v in violations],
            "parse_error": parse_error,
        }
        self._dirty = True

    def save(self) -> None:
        """Best-effort write-back (read-only checkouts stay readable)."""
        if self.path is None or not self._dirty:
            return
        payload = {"version": LINT_VERSION, "files": self.entries}
        try:
            self.path.write_text(json.dumps(payload, indent=1, sort_keys=True))
        except OSError:
            return
        self._dirty = False
