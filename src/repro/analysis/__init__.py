"""Verification and statistics for decompositions and labelings."""

from repro.analysis.stats import (
    DecompositionStats,
    component_histogram,
    decomposition_stats,
    edge_decay_ratios,
    partition_radii,
)
from repro.analysis.verify import (
    ground_truth_labels,
    labelings_equivalent,
    verify_decomposition,
    verify_labeling,
)

__all__ = [
    "DecompositionStats",
    "component_histogram",
    "decomposition_stats",
    "edge_decay_ratios",
    "ground_truth_labels",
    "labelings_equivalent",
    "partition_radii",
    "verify_decomposition",
    "verify_labeling",
]
