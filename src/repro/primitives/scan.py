"""Prefix sums (scans), the workhorse primitive of PRAM algorithms.

Every compaction, offset computation and relabeling step in the paper
reduces to a prefix sum.  On a CRCW PRAM an n-element scan costs O(n)
work and O(log n) depth (balanced-tree up-sweep/down-sweep); we execute
it with ``numpy.cumsum`` (one vectorized pass — the guide-recommended
idiom) and charge exactly that PRAM cost to the ambient tracker.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.runtime.context import current_context

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "scan_with_total",
    "segmented_scan",
]


def _charge(n: int) -> None:
    """Charge the PRAM cost of one n-element scan."""
    tracker = current_context().tracker
    tracker.add("scan", work=float(n), depth=float(max(1, math.ceil(math.log2(n + 1)))))


def inclusive_scan(values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum: ``out[i] = sum(values[:i+1])``.

    O(n) work, O(log n) depth.
    """
    values = np.asarray(values)
    _charge(values.size)
    return np.cumsum(values)


def exclusive_scan(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])``; ``out[0] = 0``.

    O(n) work, O(log n) depth.
    """
    values = np.asarray(values)
    _charge(values.size)
    out = np.empty(values.size, dtype=np.result_type(values.dtype, np.int64))
    if values.size:
        np.cumsum(values[:-1], out=out[1:])
        out[0] = 0
    return out


def scan_with_total(values: np.ndarray) -> Tuple[np.ndarray, int]:
    """Exclusive scan plus the grand total, as PBBS's ``plusScan`` returns.

    Returns ``(offsets, total)`` where ``offsets[i]`` is the exclusive
    prefix sum and ``total = sum(values)``.  This is the shape needed to
    size output arrays before a parallel pack.
    """
    values = np.asarray(values)
    offsets = exclusive_scan(values)
    total = int(offsets[-1] + values[-1]) if values.size else 0
    return offsets, total


def segmented_scan(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: Optional[int] = None
) -> np.ndarray:
    """Per-segment exclusive prefix sums.

    ``segment_ids`` must be non-decreasing (values grouped by segment),
    the layout produced by the frontier bookkeeping in the paper's proof
    of Theorem 1, where each BFS's vertices occupy a contiguous slice of
    the shared frontier array.  O(n) work, O(log n) depth on a PRAM.

    Parameters
    ----------
    values:
        The values to scan.
    segment_ids:
        Same length as *values*; identifies each element's segment.
    num_segments:
        Unused except for validation; inferred when omitted.
    """
    values = np.asarray(values)
    segment_ids = np.asarray(segment_ids)
    if values.shape != segment_ids.shape:
        raise ValueError("values and segment_ids must have the same shape")
    if values.size == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(np.diff(segment_ids) < 0):
        raise ValueError("segment_ids must be non-decreasing (grouped layout)")
    _charge(values.size)
    running = np.cumsum(values)
    # Subtract, within each segment, the running total at the segment's
    # start — a gather of the per-segment boundary values.
    boundaries = np.flatnonzero(np.diff(segment_ids)) + 1
    starts = np.zeros(values.size, dtype=np.int64)
    # carry[i] = inclusive total just before each segment start
    carry = running[boundaries - 1]
    starts[boundaries] = carry - np.concatenate(([0], carry[:-1]))
    seg_base = np.cumsum(starts)
    out = running - seg_base - values
    return out.astype(np.int64, copy=False)
