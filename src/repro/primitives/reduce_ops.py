"""Parallel reductions and histograms.

Reductions cost O(n) work and O(log n) depth on a PRAM (balanced tree).
Histograms over a key range of size k cost O(n) work and O(log n) depth
using per-processor counts plus a transpose-and-scan; we run them with
``numpy.bincount`` and charge that cost.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.runtime.context import current_context

__all__ = ["reduce_sum", "reduce_max", "reduce_min", "count_true", "histogram"]


def _charge(n: int, kind: str = "scan") -> None:
    current_context().tracker.add(
        kind, work=float(n), depth=float(max(1, math.ceil(math.log2(n + 1))))
    )


def reduce_sum(values: np.ndarray) -> float:
    """Sum of *values*; O(n) work, O(log n) depth."""
    values = np.asarray(values)
    _charge(values.size)
    return float(np.sum(values)) if values.size else 0.0


def reduce_max(values: np.ndarray) -> float:
    """Maximum of *values*; raises on empty input."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("reduce_max of empty array")
    _charge(values.size)
    return float(np.max(values))


def reduce_min(values: np.ndarray) -> float:
    """Minimum of *values*; raises on empty input."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("reduce_min of empty array")
    _charge(values.size)
    return float(np.min(values))


def count_true(flags: np.ndarray) -> int:
    """Number of true entries; O(n) work, O(log n) depth."""
    flags = np.asarray(flags, dtype=bool)
    _charge(flags.size)
    return int(np.count_nonzero(flags))


def histogram(keys: np.ndarray, num_bins: Optional[int] = None) -> np.ndarray:
    """Counts of each key in ``[0, num_bins)``.

    Random-scatter memory behaviour, so charged under the ``scatter``
    kind.  Keys must be non-negative integers.
    """
    keys = np.asarray(keys)
    if keys.size and keys.min() < 0:
        raise ValueError("histogram keys must be non-negative")
    _charge(keys.size, kind="scatter")
    if num_bins is None:
        num_bins = int(keys.max()) + 1 if keys.size else 0
    return np.bincount(keys, minlength=num_bins).astype(np.int64, copy=False)
