"""Parallel primitives: scan, pack, reduce, integer sort, hashing, atomics.

These are the substrate routines the paper's implementation builds on
(PBBS-style): prefix sums for offsets and compaction, a linear-work
radix integer sort, a phase-concurrent hash table for duplicate-edge
removal, parallel random permutations, and the CRCW write-conflict
primitives (``writeMin``, arbitrary CAS) that distinguish Decomp-Min
from Decomp-Arb.  Every routine runs as one or more vectorized NumPy
passes and charges its PRAM work/depth to the ambient cost tracker.
"""

from repro.primitives.atomics import (
    decode_pair,
    encode_pair,
    first_winner,
    write_min,
)
from repro.primitives.hashing import HashTable, dedup
from repro.primitives.pack import pack, pack_index, split_by_flag
from repro.primitives.rand import (
    exponential_shifts,
    hash_randoms,
    random_permutation,
    splitmix64,
    uniform_fractions,
)
from repro.primitives.reduce_ops import (
    count_true,
    histogram,
    reduce_max,
    reduce_min,
    reduce_sum,
)
from repro.primitives.scan import (
    exclusive_scan,
    inclusive_scan,
    scan_with_total,
    segmented_scan,
)
from repro.primitives.sort import radix_argsort, radix_sort, sort_pairs_by_key

__all__ = [
    "HashTable",
    "count_true",
    "decode_pair",
    "dedup",
    "encode_pair",
    "exclusive_scan",
    "exponential_shifts",
    "first_winner",
    "hash_randoms",
    "histogram",
    "inclusive_scan",
    "pack",
    "pack_index",
    "radix_argsort",
    "radix_sort",
    "random_permutation",
    "reduce_max",
    "reduce_min",
    "reduce_sum",
    "scan_with_total",
    "segmented_scan",
    "sort_pairs_by_key",
    "split_by_flag",
    "splitmix64",
    "uniform_fractions",
    "write_min",
]
