"""Parallel-friendly randomness: hash PRNG, permutations, exponential shifts.

Three pieces the decomposition algorithms need:

* a **counter-based hash PRNG** (splitmix64) so every vertex can draw
  an independent random value in O(1) work with no shared state —
  exactly how PBBS's ``dataGen::hash`` powers its parallel generators;
* a **parallel random permutation**, built by drawing a random 64-bit
  key per element and radix-sorting — the classic linear-work,
  polylog-depth permutation-by-sorting construction.  The paper's §4
  uses such a permutation to simulate exponential start times;
* **exponential shift draws** for the Miller-Peng-Xu decomposition,
  both as exact draws (for the theory-faithful mode) and via the
  paper's permutation + exponentially-growing-chunks simulation (in
  :mod:`repro.decomp.shifts`).
"""

from __future__ import annotations


import numpy as np

from repro.errors import ParameterError
from repro.primitives.sort import radix_argsort
from repro.runtime.context import current_context

__all__ = [
    "splitmix64",
    "hash_randoms",
    "random_permutation",
    "exponential_shifts",
    "uniform_fractions",
]

_U64 = np.uint64


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer: uint64 -> well-mixed uint64.

    A counter-based generator: ``splitmix64(seed + i)`` yields an
    i.i.d.-quality stream indexed by ``i``, so all draws can happen in
    one data-parallel step.
    """
    z = np.asarray(x, dtype=_U64) + _U64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
    return z ^ (z >> _U64(31))


def hash_randoms(n: int, seed: int, stream: int = 0) -> np.ndarray:
    """n i.i.d. uint64 randoms from a (seed, stream) pair; O(n) work, O(1) depth."""
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    current_context().tracker.add("scan", work=float(n), depth=1.0)
    base = _U64(
        (seed & 0xFFFFFFFFFFFFFFFF)
        ^ ((stream * 0xD6E8FEB86659FD93) & 0xFFFFFFFFFFFFFFFF)
    )
    idx = np.arange(n, dtype=_U64)
    return splitmix64(idx + splitmix64(np.array([base], dtype=_U64))[0])


def uniform_fractions(n: int, seed: int, stream: int = 0) -> np.ndarray:
    """n i.i.d. uniforms in [0, 1) derived from :func:`hash_randoms`."""
    bits = hash_randoms(n, seed, stream)
    # Use the top 53 bits for a dense double in [0, 1).
    return (bits >> _U64(11)).astype(np.float64) * (1.0 / (1 << 53))


def random_permutation(n: int, seed: int, stream: int = 1) -> np.ndarray:
    """A uniformly random permutation of ``range(n)``.

    Built by sorting random 64-bit keys (duplicate keys are broken by
    the sort's stability, i.e. by index — with 64-bit keys collisions
    are negligible for any n this package handles).  Linear work,
    polylog depth — the parallel permutation the paper's §4 calls for.

    *stream* decorrelates independent consumers that may share a seed
    (e.g. a generator's label permutation and a decomposition's start
    order — a collision there would correlate BFS start order with
    graph structure).
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    keys = hash_randoms(n, seed, stream=stream)
    # Radix sort operates on non-negative int64; fold the top bit away.
    keys63 = (keys >> _U64(1)).astype(np.int64)
    return radix_argsort(keys63)


def exponential_shifts(n: int, beta: float, seed: int) -> np.ndarray:
    """n i.i.d. Exponential(beta) draws (mean 1/beta), via inverse CDF.

    These are the Miller-Peng-Xu shift values ``delta_v``; the maximum
    is O(log n / beta) w.h.p., which bounds the number of BFS rounds.
    """
    if not 0.0 < beta < 1.0:
        raise ParameterError(f"beta must be in (0,1), got {beta}")
    u = uniform_fractions(n, seed, stream=2)
    # Guard log(0); 1-u is in (0, 1].
    return -np.log1p(-u) / beta
