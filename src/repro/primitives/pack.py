"""Parallel pack / filter (compaction).

"Packing out" deleted edges and compacting BFS frontiers is the step
that dominates the depth of the paper's decomposition (O(log n) per BFS
round).  A pack of n elements is a scan over 0/1 flags followed by a
scatter: O(n) work, O(log n) depth.  We execute it with boolean
indexing (single vectorized pass) and charge that PRAM cost.

The paper also remarks that approximate compaction [Gil-Matias-Vishkin]
would lower the packing depth to O(log* n); :func:`pack` takes an
``approximate`` flag that only changes the *charged* depth, so the
cost-model ablation in ``benchmarks/`` can quantify the remark without
changing any values.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.runtime.context import current_context

__all__ = ["pack", "pack_index", "split_by_flag"]

#: Iterated-log proxy used when charging approximate-compaction depth.
_LOG_STAR = 4.0


def _charge(n: int, approximate: bool) -> None:
    tracker = current_context().tracker
    depth = _LOG_STAR if approximate else float(max(1, math.ceil(math.log2(n + 1))))
    tracker.add("scan", work=float(n), depth=depth)


def pack(
    values: np.ndarray, flags: np.ndarray, approximate: bool = False
) -> np.ndarray:
    """Keep ``values[i]`` where ``flags[i]`` is true, preserving order.

    O(n) work; O(log n) depth (O(log* n) with ``approximate=True``,
    which affects only the charged cost — the output is identical).
    """
    values = np.asarray(values)
    flags = np.asarray(flags, dtype=bool)
    if values.shape[0] != flags.shape[0]:
        raise ValueError("values and flags must have equal length")
    _charge(values.shape[0], approximate)
    return values[flags]


def pack_index(flags: np.ndarray, approximate: bool = False) -> np.ndarray:
    """Indices ``i`` where ``flags[i]`` is true, in increasing order.

    The PBBS ``packIndex`` idiom: used to turn a boolean frontier bitmap
    into a sparse frontier array.
    """
    flags = np.asarray(flags, dtype=bool)
    _charge(flags.shape[0], approximate)
    return np.flatnonzero(flags)


def split_by_flag(
    values: np.ndarray, flags: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable two-way split: ``(values[flags], values[~flags])``.

    Used when an edge pass must separate kept (inter-component) edges
    from deleted (intra-component) ones in a single pack.
    """
    values = np.asarray(values)
    flags = np.asarray(flags, dtype=bool)
    if values.shape[0] != flags.shape[0]:
        raise ValueError("values and flags must have equal length")
    _charge(values.shape[0], approximate=False)
    return values[flags], values[~flags]
