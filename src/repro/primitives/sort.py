"""Linear-work LSD radix integer sort (the PBBS ``intSort`` stand-in).

The paper's contraction phase collects the vertices of each component
with "the linear-work and O(m^eps) depth (0 < eps < 1) integer sort
algorithm from the Problem Based Benchmark Suite".  This module
implements that primitive as a least-significant-digit radix sort over
16-bit digits.  Each pass is a stable counting sort, which we execute
with NumPy's stable integer ``argsort`` — itself an LSD radix kernel —
so the pass structure, stability guarantees and cost profile all match
the PBBS primitive.

Cost accounting: a sort of n keys spanning ``b`` bits performs
``ceil(b/16)`` passes of O(n) work each; depth is charged as
O(n^eps) with eps = 0.3 per pass, matching the PBBS bound the paper
cites.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.runtime.context import current_context

__all__ = ["radix_argsort", "radix_sort", "sort_pairs_by_key", "RADIX_BITS"]

#: Digit width per pass.
RADIX_BITS = 16

#: Exponent used when charging the O(n^eps) per-pass depth.
_DEPTH_EPS = 0.3


def _num_passes(max_key: int) -> int:
    if max_key <= 0:
        return 1
    bits = int(max_key).bit_length()
    return (bits + RADIX_BITS - 1) // RADIX_BITS


def _charge(n: int, passes: int) -> None:
    tracker = current_context().tracker
    depth_per_pass = float(max(1.0, n**_DEPTH_EPS))
    tracker.add("sort", work=float(n * passes), depth=depth_per_pass * passes)


def _fused_sort() -> bool:
    return current_context().backend.fused_sort


def radix_argsort(keys: np.ndarray, max_key: Optional[int] = None) -> np.ndarray:
    """Stable sorting permutation for non-negative integer *keys*.

    ``out`` satisfies ``keys[out]`` sorted, with equal keys in input
    order.  Linear work (per pass), O(n^eps) depth per pass.

    Parameters
    ----------
    keys:
        Non-negative integers.
    max_key:
        Optional upper bound on the keys; passing it avoids a reduction
        and bounds the number of passes.  Keys above it are an error.
    """
    keys = np.asarray(keys)
    n = keys.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if keys.min() < 0:
        raise ValueError("radix sort requires non-negative keys")
    if max_key is None:
        max_key = int(keys.max())
    elif keys.max() > max_key:
        raise ValueError("key exceeds declared max_key")
    passes = _num_passes(max_key)
    _charge(n, passes)

    if _fused_sort():
        # One fused stable sort in place of the per-digit passes: the
        # stable sorting permutation of a key sequence is unique, so
        # this is bit-identical to the pass loop below — the charge
        # above still reflects the simulated pass structure.
        return np.argsort(keys, kind="stable").astype(np.int64, copy=False)

    perm = np.arange(n, dtype=np.int64)
    shifted = keys.astype(np.uint64, copy=False)
    mask = np.uint64((1 << RADIX_BITS) - 1)
    for p in range(passes):
        digit = (shifted >> np.uint64(p * RADIX_BITS)) & mask
        if p > 0:
            digit = digit[perm]
        # Stable counting sort on one 16-bit digit; NumPy's stable
        # integer argsort is an LSD radix kernel, so this *is* the
        # counting-sort pass, not a comparison sort.
        pass_perm = np.argsort(digit, kind="stable")
        perm = perm[pass_perm] if p > 0 else pass_perm.astype(np.int64)
    return perm


def radix_sort(
    keys: np.ndarray, max_key: Optional[int] = None
) -> np.ndarray:
    """Sorted copy of non-negative integer *keys* (stable LSD radix)."""
    keys = np.asarray(keys)
    return keys[radix_argsort(keys, max_key=max_key)]


def sort_pairs_by_key(
    keys: np.ndarray, values: np.ndarray, max_key: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort ``(keys, values)`` pairs by key, stably.

    This is the shape the contraction phase uses to gather all vertices
    of the same component together (sort vertex ids by component label).
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape[0] != values.shape[0]:
        raise ValueError("keys and values must have equal length")
    perm = radix_argsort(keys, max_key=max_key)
    return keys[perm], values[perm]
