"""Vectorized CRCW write-conflict resolution: writeMin, CAS races.

The paper's two decomposition variants differ precisely in the
concurrent-write rule used when several BFS frontiers reach the same
unvisited vertex in one round:

* **Decomp-Min** uses ``writeMin`` — a *priority* concurrent write: of
  all values written to a location in one step, the minimum survives.
  The paper implements it with a CAS loop; on our simulated PRAM a
  whole round of writeMins is one ``np.minimum.at`` scatter.
* **Decomp-Arb** uses a bare CAS — an *arbitrary* concurrent write: any
  single writer may win.  NumPy's "first occurrence" reduction is one
  legal arbitrary schedule (and a deterministic one, which makes tests
  reproducible; the paper's correctness does not depend on the choice).

Both are exposed as batch operations over ``(destination index, value)``
streams, mirroring one synchronous PRAM step, and charge ``atomic``
work per write attempt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Tuple

import numpy as np

from repro.pram.cost import CostTracker
from repro.runtime.context import current_context

if TYPE_CHECKING:  # layering: primitives must not import engine at runtime
    from repro.engine.workspace import NullWorkspace

__all__ = [
    "write_min",
    "first_winner",
    "encode_pair",
    "decode_pair",
    "PAIR_SHIFT",
]

#: Bits reserved for the payload half of an encoded (priority, payload)
#: pair.  Payloads (vertex / component ids) must fit in 31 bits, which
#: caps graphs at ~2.1e9 vertices — far above anything this package runs.
PAIR_SHIFT = 31
_PAIR_MASK = (1 << PAIR_SHIFT) - 1

#: Sentinel distinguishing "not passed" from "no plan" (the round
#: kernels read ``current_context().fault_plan`` once per round and
#: pass it down; legacy callers fall back to the context read).
_LOOKUP_PLAN = object()


def encode_pair(
    priority: np.ndarray,
    payload: np.ndarray,
    *,
    check: bool = True,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Pack (priority, payload) into one int64 ordered lexicographically.

    ``encode_pair(p1, x1) < encode_pair(p2, x2)`` iff ``(p1, x1) <
    (p2, x2)`` lexicographically, so a writeMin on encoded pairs is a
    writeMin on pairs with ties broken by smaller payload — exactly the
    comparison Decomp-Min's pseudo-code performs on its (delta', C) pairs.

    ``check=False`` skips the range scans — only for callers that
    validated their whole value domain up front (the fast backend's
    Decomp-Min setup proves the schedule's delta' range and the vertex
    count once, instead of rescanning every round).  ``out`` receives
    the encoding in place (it may alias *priority*).
    """
    priority = np.asarray(priority, dtype=np.int64)
    payload = np.asarray(payload, dtype=np.int64)
    if check:
        if priority.size and (priority.min() < 0 or priority.max() > _PAIR_MASK):
            raise ValueError(f"priority out of range [0, 2^{PAIR_SHIFT})")
        if payload.size and (payload.min() < 0 or payload.max() > _PAIR_MASK):
            raise ValueError(f"payload out of range [0, 2^{PAIR_SHIFT})")
    if out is None:
        return (priority << PAIR_SHIFT) | payload
    np.left_shift(priority, PAIR_SHIFT, out=out)
    np.bitwise_or(out, payload, out=out)
    return out


def decode_pair(encoded: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_pair` (valid for non-sentinel entries)."""
    encoded = np.asarray(encoded, dtype=np.int64)
    return encoded >> PAIR_SHIFT, encoded & _PAIR_MASK


def write_min(
    dest: np.ndarray,
    idx: np.ndarray,
    values: np.ndarray,
    *,
    tracker: Optional[CostTracker] = None,
    workspace: Optional[NullWorkspace] = None,
) -> None:
    """One synchronous round of priority-CRCW writeMins.

    For every ``i``, atomically ``dest[idx[i]] = min(dest[idx[i]],
    values[i])``; concurrent writes to the same location resolve to the
    minimum, matching the paper's ``writeMin`` primitive.  Charged as
    one atomic op per write attempt plus O(1) depth for the round.

    Mutates *dest* in place.  *tracker* lets round kernels pass the
    tracker they already resolved (one context-var read per round, not
    per primitive).  *workspace* is the execution seam: when the round
    kernel passes one, its ``minimum_scatter`` runs the scatter (the
    chunked backend shards it per worker); charging and the sanitizer
    record stay here either way, so the execution strategy is
    cost-model invisible.
    """
    idx = np.asarray(idx)
    values = np.asarray(values)
    if idx.shape[0] != values.shape[0]:
        raise ValueError("idx and values must have equal length")
    if tracker is None:
        tracker = current_context().tracker
    tracker.add("atomic", work=float(idx.shape[0]), depth=1.0)
    sanitizer = current_context().sanitizer
    if sanitizer is not None:
        sanitizer.record_atomic(dest, idx)
    if workspace is not None:
        workspace.minimum_scatter(dest, idx, values)
    else:
        np.minimum.at(dest, idx, values)


def first_winner(
    idx: np.ndarray,
    *,
    workspace: Optional[NullWorkspace] = None,
    tracker: Optional[CostTracker] = None,
    plan: Any = _LOOKUP_PLAN,
) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve an arbitrary-CRCW race: one winner per distinct destination.

    Given the destinations ``idx`` of a batch of concurrent CAS
    attempts, returns ``(winner_positions, winner_destinations)`` where
    ``winner_positions`` indexes into the batch (first occurrence per
    destination — one legal arbitrary schedule) and
    ``winner_destinations = idx[winner_positions]``.

    Charged as one atomic op per attempt plus O(1) depth.

    A :class:`~repro.engine.workspace.Workspace` with
    ``scatter_winner`` routes the resolution through its O(n)
    reverse-order scatter; otherwise the sort-based ``np.unique`` pass
    runs.  Both pick the first occurrence per destination, so the
    winner schedule is identical (``tests/test_backend_parity.py``
    pins this element for element).  *tracker* / *plan* let round
    kernels pass their cached context lookups down the hot path.

    An armed :class:`~repro.resilience.faults.FaultPlan` may flip
    winners to *other legal contenders* (a different arbitrary
    schedule) — the hook cannot invent a winner that did not race.
    """
    idx = np.asarray(idx)
    if tracker is None:
        tracker = current_context().tracker
    tracker.add("atomic", work=float(idx.shape[0]), depth=1.0)
    if idx.shape[0] == 0:
        return np.zeros(0, dtype=np.int64), idx
    if workspace is not None and workspace.scatter_winner:
        positions, dests = workspace.winner_scatter(idx)
    else:
        dests, positions = np.unique(idx, return_index=True)
        positions = positions.astype(np.int64, copy=False)
    if plan is _LOOKUP_PLAN:
        plan = current_context().fault_plan
    sanitizer = current_context().sanitizer
    if plan is not None:
        # The pre-perturbation resolution IS the machine's deterministic
        # schedule; an armed sanitizer validates whatever comes back
        # against it, so a cas_flip surfaces as a cas-order race.
        canonical_positions, canonical_dests = positions, dests
        positions, dests = plan.perturb_cas(idx, positions, dests)
        if sanitizer is not None:
            sanitizer.check_cas(
                idx, canonical_positions, canonical_dests, positions, dests
            )
    if sanitizer is not None:
        sanitizer.sanction(dests)
    return positions, dests
