"""Phase-concurrent linear-probing hash table (Shun-Blelloch, SPAA 2014).

The paper removes duplicate inter-component edges during contraction
"using a parallel hash table [55]" — the phase-concurrent linear
probing table of Shun and Blelloch, in its insert-only phase.  This
module implements that table with the synchronous-round execution style
used throughout the package:

Each round, every still-unplaced key computes its current probe slot;
concurrent claims on a slot resolve by arbitrary-CRCW (first winner);
a key finding its own value already in a slot retires as a duplicate;
a key finding a different value moves to the next slot (linear probe).
With a table at most half full, the expected number of rounds is O(1)
and O(log n) w.h.p. — mirroring the real table's probe-length bounds.

Only the operations the reproduction needs are exposed: bulk
deduplication of non-negative int64 keys (:func:`dedup`) and the
underlying :class:`HashTable` for tests and reuse.
"""

from __future__ import annotations


import numpy as np

from repro.errors import ConvergenceError
from repro.primitives.atomics import first_winner
from repro.primitives.rand import splitmix64
from repro.runtime.context import current_context

__all__ = ["HashTable", "dedup"]

_EMPTY = np.int64(-1)
#: Probe-round budget: linear probing in a <=50%-loaded table finishes in
#: O(log n) rounds w.h.p.; this is far above that for any feasible n.
_MAX_ROUNDS_FACTOR = 64


def _table_size(n: int) -> int:
    """Smallest power of two >= 2n (load factor <= 0.5), minimum 16."""
    if n <= 8:
        return 16
    return 1 << (2 * n - 1).bit_length()


class HashTable:
    """Insert-only phase-concurrent hash table over non-negative int64 keys.

    Parameters
    ----------
    capacity:
        Maximum number of distinct keys that will be inserted.  The
        backing array is sized to keep load factor <= 0.5.
    seed:
        Seed for the (splitmix64) hash function.
    """

    def __init__(self, capacity: int, seed: int = 0x5EED) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.size = _table_size(max(capacity, 1))
        self._mask = np.uint64(self.size - 1)
        self._seed = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
        self.slots = np.full(self.size, _EMPTY, dtype=np.int64)
        current_context().tracker.add("alloc", work=float(self.size), depth=1.0)
        self._workspace = current_context().acquire_workspace(self.size)

    def _hash(self, keys: np.ndarray) -> np.ndarray:
        # Workspace seam: the chunked backend splits the slot hash
        # across workers; every implementation computes
        # splitmix64(keys ^ seed) & mask into a fresh array (the probe
        # loop mutates the slots as it advances).
        return self._workspace.hash_slots(keys, self._seed, self._mask, "hash#slots")

    def insert(self, keys: np.ndarray) -> np.ndarray:
        """Insert *keys*; returns a bool mask of which were newly inserted.

        Duplicate keys (within the batch or against prior inserts) get
        ``False``.  All keys must be non-negative (``-1`` is the empty
        sentinel).
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        if keys.min() < 0:
            raise ValueError("hash table keys must be non-negative")

        inserted = np.zeros(keys.shape[0], dtype=bool)
        pending = np.arange(keys.shape[0], dtype=np.int64)
        slot = self._hash(keys)
        max_rounds = _MAX_ROUNDS_FACTOR * max(
            1, int(np.ceil(np.log2(self.size + 1)))
        )
        # Context lookups cached once per insert (round granularity);
        # the probe loop passes them straight into the primitives.
        tracker = current_context().tracker
        plan = current_context().fault_plan
        ws = self._workspace
        for _ in range(max_rounds):
            if pending.size == 0:
                return inserted
            cur_slot = slot[pending]
            occupant = self.slots[cur_slot]
            tracker.add("hash", work=float(pending.size), depth=1.0)

            # Keys whose slot already holds their value retire (duplicate).
            dup = occupant == keys[pending]
            # Keys whose slot is empty race to claim it.
            empty = occupant == _EMPTY
            claimers = pending[empty]
            if claimers.size:
                win_pos, win_slots = first_winner(
                    cur_slot[empty], workspace=ws, tracker=tracker, plan=plan
                )
                winners = claimers[win_pos]
                self.slots[win_slots] = keys[winners]
                inserted[winners] = True
                won = np.zeros(keys.shape[0], dtype=bool)
                won[winners] = True
                # Losers of the race re-read the slot next round: if the
                # winner holds their key they will retire as duplicates,
                # otherwise they probe onward.  Keeping them at the same
                # slot for one more round reproduces the CAS-failure
                # retry of the real table.
                retry_same = empty & ~won[pending]
            else:
                retry_same = np.zeros(pending.size, dtype=bool)

            # Keys blocked by a different occupant probe the next slot.
            move_on = ~dup & ~empty
            slot[pending[move_on]] = (slot[pending[move_on]] + 1) % self.size

            keep = (move_on | retry_same) & ~dup
            pending = pending[keep]
        raise ConvergenceError(
            "hash table insert exceeded probe-round budget "
            f"(size={self.size}, capacity={self.capacity})"
        )

    def contents(self) -> np.ndarray:
        """All stored keys, in arbitrary (slot) order."""
        current_context().tracker.add("scan", work=float(self.size), depth=1.0)
        return self.slots[self.slots != _EMPTY]


def dedup(keys: np.ndarray, seed: int = 0x5EED) -> np.ndarray:
    """Distinct values of *keys* (non-negative int64), arbitrary order.

    The contraction phase's duplicate-edge removal: each undirected
    inter-component edge is encoded as one int64 key and inserted; the
    table's survivors are the deduplicated edge set.  O(n) expected
    work, O(log n) depth w.h.p.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return keys.copy()
    table = HashTable(capacity=keys.size, seed=seed)
    table.insert(keys)
    return table.contents()
