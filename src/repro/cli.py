"""Command-line interface: ``python -m repro <command>``.

Gives shell access to the whole reproduction:

``list``
    Show the registered input graphs and algorithms.
``run ALGO GRAPH``
    Run one implementation on one input; print components, iteration
    metadata, and simulated times at chosen thread counts.
``decompose GRAPH``
    Run the low-diameter decomposition and report its quality against
    the theoretical bounds.
``forest GRAPH``
    Extract and verify a spanning forest via the decomposition.
``table1`` / ``table2``
    Regenerate the paper's tables.
``figure {2,3,4,5,6,7,8}``
    Regenerate one of the paper's figures as ASCII series.
``lint``
    Run the reprolint PRAM-invariant static analyzer (RL001–RL004; see
    docs/static_analysis.md).
``fuzz``
    Run the differential fuzzer: seed-determined adversarial inputs
    through every implementation x backend, failures delta-debugged to
    minimal JSON repros (see docs/robustness.md).
``replay``
    Replay one fuzz-corpus case file against the full oracle.
``trace``
    Run one algorithm with the tracer armed and write a Chrome
    ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``;
    see docs/observability.md).

All commands accept ``--scale {tiny,small,medium}`` (default small),
``--backend`` naming any registered execution backend (default fast),
and ``--workers N`` (thread count for the chunked ``parallel``
backend) — the execution backend changes wall-clock speed only, never
results or simulated costs (see docs/performance.md).  The global
``--sanitize`` flag arms the runtime PRAM race sanitizer around
whatever command runs (optimized backends only; a detected race aborts
with exit code 2).  The global ``--trace PATH`` arms the
:mod:`repro.obs` tracer/metrics around whatever command runs and
writes the combined trace document to PATH on exit.

``run``, ``decompose`` and ``forest`` take ``--format {text,json}``
(and ``--output PATH``) for machine-readable results; JSON payloads
are scrubbed of NumPy scalar keys/values at the boundary.  Piping any
command into ``head`` exits 1 cleanly (never a ``BrokenPipeError``
traceback) — the dispatcher owns that contract for stdout *and*
stderr.

``run`` and ``table2`` additionally take the resilience options
(``--retries``, ``--inject-fault``; ``table2`` also ``--checkpoint`` /
``--resume``) — see docs/robustness.md.  Any :class:`~repro.errors.
ReproError` surfaces as a one-line ``error: ...`` on stderr and exit
code 2, never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.engine.backend import BACKENDS, DEFAULT_BACKEND_NAME, resolve_backend
from repro.errors import ParameterError, ReproError
from repro.experiments import (
    ALGORITHMS,
    GRAPHS,
    PAPER_GRAPH_ORDER,
    ascii_series,
    build_graph,
    fig2_thread_sweep,
    fig3_beta_sweep,
    fig4_edges_remaining,
    fig5_breakdown_min,
    fig6_breakdown_arb,
    fig7_breakdown_hybrid,
    fig8_size_scaling,
    format_table1,
    format_table2,
    profile_run,
    run_table1,
    run_table2,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro`` (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Simple and Practical Linear-Work Parallel "
            "Algorithm for Connectivity' (SPAA 2014)"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=["tiny", "small", "medium"],
        default="small",
        help="input size preset (default: small)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=DEFAULT_BACKEND_NAME,
        help="execution backend: same results and simulated costs with "
        f"any of {{{', '.join(sorted(BACKENDS))}}}; the optimized backends "
        "only change wall-clock speed "
        f"(default: {DEFAULT_BACKEND_NAME}; see docs/performance.md)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for the chunked 'parallel' backend "
        "(default: 1; other backends ignore it)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="arm the runtime PRAM race sanitizer: every engine run is "
        "checked for same-round conflicting non-atomic writes and CAS "
        "schedule violations (optimized backends: "
        f"{', '.join(sorted(n for n in BACKENDS if n != 'reference'))}; "
        "see docs/static_analysis.md)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="arm the repro.obs tracer and metrics registry around the "
        "command and write a Chrome trace_event JSON (with the metrics "
        "snapshot riding along) to PATH on exit — tracing never changes "
        "results or simulated costs (see docs/observability.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered graphs and algorithms")

    run = sub.add_parser("run", help="run one algorithm on one graph")
    run.add_argument("algorithm", choices=sorted(ALGORITHMS))
    run.add_argument("graph", choices=sorted(GRAPHS))
    run.add_argument("--beta", type=float, default=0.2)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--threads",
        nargs="*",
        default=["1", "40h"],
        help="thread counts to report (e.g. 1 8 40h)",
    )
    run.add_argument("--no-verify", action="store_true")
    _add_output_options(run)
    _add_resilience_options(run)

    dec = sub.add_parser("decompose", help="low-diameter decomposition quality")
    dec.add_argument("graph", choices=sorted(GRAPHS))
    dec.add_argument("--beta", type=float, default=0.2)
    dec.add_argument(
        "--variant",
        choices=["min", "arb", "arb-hybrid", "min-hybrid"],
        default="arb",
    )
    dec.add_argument("--seed", type=int, default=1)
    _add_output_options(dec)

    forest = sub.add_parser("forest", help="spanning forest via decomposition")
    forest.add_argument("graph", choices=sorted(GRAPHS))
    forest.add_argument("--beta", type=float, default=0.2)
    forest.add_argument("--seed", type=int, default=1)
    _add_output_options(forest)

    trace = sub.add_parser(
        "trace",
        help="run one algorithm with the tracer armed; write a Chrome "
        "trace_event JSON (Perfetto-loadable)",
    )
    trace.add_argument("graph", choices=sorted(GRAPHS))
    trace.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="decomp-arb-CC"
    )
    trace.add_argument("--beta", type=float, default=0.2)
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument(
        "--output",
        metavar="PATH",
        default="run.trace.json",
        help="trace document destination (default: run.trace.json)",
    )

    sub.add_parser("table1", help="regenerate Table 1")
    t2 = sub.add_parser("table2", help="regenerate Table 2")
    t2.add_argument("--beta", type=float, default=0.2)
    t2.add_argument("--seed", type=int, default=1)
    _add_resilience_options(t2)
    t2.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="record each finished cell to PATH (atomic JSON checkpoint)",
    )
    t2.add_argument(
        "--resume",
        action="store_true",
        help="load PATH first and skip already-recorded cells "
        "(requires --checkpoint)",
    )

    fig = sub.add_parser("figure", help="regenerate a figure's series")
    fig.add_argument("number", type=int, choices=[2, 3, 4, 5, 6, 7, 8])
    fig.add_argument("--graph", choices=sorted(GRAPHS), default="random")

    rep = sub.add_parser(
        "report", help="write every artifact (JSON/CSV + summary.md) to a directory"
    )
    rep.add_argument("outdir")
    rep.add_argument("--beta", type=float, default=0.2)
    rep.add_argument("--seed", type=int, default=1)

    lint = sub.add_parser(
        "lint", help="run the reprolint PRAM-invariant static analyzer"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the whole repro "
        "package, with stale allowlist entries treated as errors)",
    )
    lint.add_argument(
        "--config",
        metavar="PATH",
        help="explicit reprolint.toml (default: auto-discovered from the "
        "working directory or the source checkout root)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "sarif"],
        default="text",
        dest="format_",
        help="report format: human-readable text (default) or SARIF 2.1.0 "
        "for GitHub code scanning",
    )
    lint.add_argument(
        "--output",
        metavar="PATH",
        help="write the report to PATH instead of stdout (text summary "
        "still prints to stdout for sarif)",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the incremental cache (.reprolint-cache.json next "
        "to the config) and re-analyze every file",
    )
    lint.add_argument(
        "--explain",
        metavar="RLxxx",
        help="print the documentation of one rule (what it proves, its "
        "runtime counterpart, allowlist policy) and exit",
    )

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing with delta-debugging shrinker"
    )
    fuzz.add_argument(
        "--seed",
        default="1",
        help="case-stream seed: an integer, or 'from-run-id' to derive "
        "one from $GITHUB_RUN_ID (CI smoke; default: 1)",
    )
    fuzz.add_argument(
        "--max-cases",
        type=int,
        default=100,
        metavar="N",
        help="number of generated cases to judge (default: 100)",
    )
    fuzz.add_argument(
        "--time-budget",
        type=float,
        metavar="SECONDS",
        help="stop (between cases) once this much wall time has elapsed",
    )
    fuzz.add_argument(
        "--shrink",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="delta-debug failing cases to minimal repros (default: on)",
    )
    fuzz.add_argument(
        "--corpus",
        metavar="DIR",
        default="fuzz-failures",
        help="directory shrunk repros are written to as replayable JSON "
        "(default: ./fuzz-failures)",
    )
    fuzz.add_argument(
        "--planted",
        metavar="NAME",
        help="arm a deliberate bug from repro.fuzz.planted — the "
        "pipeline's self-test (the fuzzer must find and shrink it)",
    )

    rpl = sub.add_parser("replay", help="replay one fuzz corpus case file")
    rpl.add_argument("case", metavar="CASE.json", help="path to a case file")
    return parser


def _add_output_options(sub: argparse.ArgumentParser) -> None:
    """The ``--format``/``--output`` pair shared by the result commands."""
    sub.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="format_",
        help="result format: human-readable text (default) or a JSON "
        "document (NumPy scalars coerced at the boundary)",
    )
    sub.add_argument(
        "--output",
        metavar="PATH",
        help="write the result to PATH instead of stdout",
    )


def _emit(args, payload: dict, text_lines: List[str]) -> None:
    """Write the command result in the requested format and destination."""
    if getattr(args, "format_", "text") == "json":
        import json

        from repro.experiments.export import to_jsonable

        rendered = json.dumps(to_jsonable(payload), indent=2, sort_keys=True)
    else:
        rendered = "\n".join(text_lines)
    output = getattr(args, "output", None)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    else:
        print(rendered)


def _add_resilience_options(sub: argparse.ArgumentParser) -> None:
    """The flags shared by the resilient commands (run, table2)."""
    sub.add_argument(
        "--retries",
        type=int,
        metavar="N",
        help="retry failing runs up to N times per implementation, "
        "rotating the seed each attempt (enables the resilient runner)",
    )
    sub.add_argument(
        "--inject-fault",
        metavar="SPEC",
        help="deterministic mid-run fault injection, e.g. "
        "'drop_frontier:vertices=10|11' or 'cas_flip:p=0.5' "
        "(see docs/robustness.md for the grammar)",
    )


def _resilient_runner(args, checkpoint=None, verify: bool = True):
    """Build a ResilientRunner from the parsed resilience flags."""
    from repro.resilience import ResilientRunner, RetryPolicy, parse_fault_plan

    retry = None
    if args.retries is not None:
        retry = RetryPolicy(max_attempts=args.retries + 1)
    plan = None
    if args.inject_fault:
        plan = parse_fault_plan(args.inject_fault, seed=getattr(args, "seed", 1))
    return ResilientRunner(
        retry=retry, checkpoint=checkpoint, verify=verify, fault_plan=plan
    )


def _cmd_list(args) -> int:
    print("graphs:")
    for name in PAPER_GRAPH_ORDER:
        print(f"  {name:<12} {GRAPHS[name].description}")
    print("algorithms:")
    for name, spec in ALGORITHMS.items():
        star = "*" if spec.in_paper else " "
        print(f" {star} {name:<22} {spec.description}")
    print("(* = in the paper's Table 2)")
    return 0


def _cmd_run(args) -> int:
    graph = build_graph(args.graph, args.scale)
    resilient = args.retries is not None or args.inject_fault is not None
    outcome = None
    if resilient:
        runner = _resilient_runner(args, verify=not args.no_verify)
        outcome = runner.run_cell(
            args.algorithm, graph, graph_name=args.graph,
            beta=args.beta, seed=args.seed,
        )
        prof = outcome.profile
    else:
        kwargs = (
            {"beta": args.beta, "seed": args.seed}
            if args.algorithm.startswith("decomp-")
            else {}
        )
        prof = profile_run(
            args.algorithm, graph, graph_name=args.graph,
            verify=not args.no_verify, **kwargs,
        )
    res = prof.result
    lines = [
        f"{args.graph} [{args.scale}]: {graph}",
        f"components : {res.num_components}",
        f"iterations : {res.iterations}",
    ]
    if res.edges_per_iteration:
        lines.append(f"edges/iter : {res.edges_per_iteration}")
    lines.append(f"wall clock : {prof.wall_seconds:.3f}s (single-core NumPy)")
    for spec in args.threads:
        lines.append(f"T({spec:>4})    : {prof.seconds_at(spec):.6f}s simulated")
    if not args.no_verify:
        lines.append("verified   : OK")
    payload: dict = {
        "graph": args.graph,
        "scale": args.scale,
        "algorithm": args.algorithm,
        "components": res.num_components,
        "iterations": res.iterations,
        "edges_per_iteration": list(res.edges_per_iteration or []),
        "wall_seconds": prof.wall_seconds,
        "simulated_seconds": {spec: prof.seconds_at(spec) for spec in args.threads},
        "work": prof.tracker.total_work(),
        "depth": prof.tracker.total_depth(),
        "verified": not args.no_verify,
    }
    if outcome is not None:
        lines.append(f"attempts   : {outcome.attempts}")
        if outcome.degraded:
            lines.append(f"degraded   : {outcome.requested} -> {outcome.algorithm}")
        for record in outcome.failures:
            lines.append(
                f"failure    : attempt {record.attempt} of {record.algorithm} "
                f"({record.error_type}: {record.message}) -> {record.action}"
            )
        payload["attempts"] = outcome.attempts
        payload["algorithm_used"] = outcome.algorithm
        payload["failures"] = [r.to_dict() for r in outcome.failures]
    _emit(args, payload, lines)
    return 0


def _cmd_decompose(args) -> int:
    from repro.decomp import low_diameter_decomposition

    graph = build_graph(args.graph, args.scale)
    ldd = low_diameter_decomposition(
        graph, beta=args.beta, variant=args.variant, seed=args.seed
    )
    lines = [
        f"{args.graph} [{args.scale}]: {graph}",
        f"partitions          : {ldd.num_partitions}",
        f"largest partitions  : {ldd.partition_sizes()[:5].tolist()}",
        f"inter-edge fraction : {ldd.inter_edge_fraction:.4f} "
        f"(expectation bound {ldd.fraction_bound:.2f})",
        f"max radius          : {ldd.max_radius} "
        f"(O(log n / beta) ~ {ldd.radius_bound:.1f})",
    ]
    # The payload deliberately carries the raw NumPy scalars/arrays the
    # decomposition reports; _emit's to_jsonable owns the coercion.
    payload = {
        "graph": args.graph,
        "scale": args.scale,
        "variant": args.variant,
        "beta": args.beta,
        "seed": args.seed,
        "partitions": ldd.num_partitions,
        "largest_partitions": ldd.partition_sizes()[:5],
        "inter_edge_fraction": ldd.inter_edge_fraction,
        "fraction_bound": ldd.fraction_bound,
        "max_radius": ldd.max_radius,
        "radius_bound": ldd.radius_bound,
    }
    _emit(args, payload, lines)
    return 0


def _cmd_forest(args) -> int:
    from repro.connectivity import decomp_spanning_forest, verify_spanning_forest

    graph = build_graph(args.graph, args.scale)
    src, dst = decomp_spanning_forest(graph, beta=args.beta, seed=args.seed)
    verify_spanning_forest(graph, src, dst)
    lines = [
        f"{args.graph} [{args.scale}]: {graph}",
        f"forest edges : {src.size} (= n - #components)",
        "verified     : spans the graph, acyclic, edges are real",
    ]
    payload = {
        "graph": args.graph,
        "scale": args.scale,
        "beta": args.beta,
        "seed": args.seed,
        "forest_edges": src.size,
        "components": graph.num_vertices - int(src.size),
        "verified": True,
    }
    _emit(args, payload, lines)
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import Metrics, Tracer, write_trace
    from repro.runtime.context import current_context
    from repro.runtime.session import execute_profiled

    graph = build_graph(args.graph, args.scale)
    tracer, metrics = Tracer(), Metrics()
    kwargs = (
        {"beta": args.beta, "seed": args.seed}
        if args.algorithm.startswith("decomp-")
        else {}
    )
    with current_context().child(tracer=tracer, metrics=metrics).activate():
        prof = execute_profiled(
            args.algorithm, graph, graph_name=args.graph, **kwargs
        )
    meta = {
        "graph": args.graph,
        "scale": args.scale,
        "algorithm": args.algorithm,
        "backend": args.backend,
        "workers": args.workers,
        "seed": args.seed,
        "work": prof.tracker.total_work(),
        "depth": prof.tracker.total_depth(),
        "wall_seconds": prof.wall_seconds,
        "phase_work": prof.tracker.work_by_phase(),
        "phase_depth": prof.tracker.depth_by_phase(),
    }
    write_trace(args.output, tracer, metrics, meta=meta)
    print(f"{args.graph} [{args.scale}]: {graph}")
    print(f"algorithm  : {args.algorithm}")
    print(f"components : {prof.result.num_components}")
    print(f"rounds     : {len(tracer.spans('round'))}")
    print(f"events     : {len(tracer.events)}")
    print(f"trace      : {args.output}")
    return 0


def _cmd_table1(args) -> int:
    print(format_table1(run_table1(args.scale)))
    return 0


def _cmd_table2(args) -> int:
    resilient = (
        args.retries is not None
        or args.inject_fault is not None
        or args.checkpoint is not None
        or args.resume
    )
    if not resilient:
        print(format_table2(run_table2(scale=args.scale, beta=args.beta)))
        return 0

    from repro.resilience import SweepCheckpoint

    checkpoint = None
    if args.resume and not args.checkpoint:
        raise ParameterError("--resume requires --checkpoint PATH")
    if args.checkpoint:
        meta = {"scale": args.scale, "beta": args.beta, "seed": args.seed}
        if args.resume:
            checkpoint = SweepCheckpoint.load(args.checkpoint, meta=meta)
        else:
            checkpoint = SweepCheckpoint(args.checkpoint, meta=meta)
    runner = _resilient_runner(args, checkpoint=checkpoint)
    sweep = runner.run_table2(scale=args.scale, beta=args.beta, seed=args.seed)
    print(format_table2(sweep["table"]))
    resumed = sum(
        1
        for row in sweep["table"].values()
        for _ in row
    ) - runner.cells_computed
    print(
        f"cells      : {runner.cells_computed} computed, "
        f"{resumed} from checkpoint"
    )
    degraded = [
        f"{algo}/{gname}->{used}"
        for algo, row in sweep["resolved"].items()
        for gname, used in row.items()
        if used != algo
    ]
    if degraded:
        print(f"degraded   : {', '.join(degraded)}")
    if sweep["failures"]:
        print(f"failures   : {len(sweep['failures'])} recorded attempts failed")
    return 0


def _cmd_figure(args) -> int:
    n = args.number
    if n == 2:
        graph = build_graph(args.graph, args.scale)
        print(ascii_series(fig2_thread_sweep(graph, args.graph)))
    elif n == 3:
        graph = build_graph(args.graph, args.scale)
        print(ascii_series(fig3_beta_sweep(graph, args.graph)))
    elif n == 4:
        graph = build_graph(args.graph, args.scale)
        series = fig4_edges_remaining(graph, args.graph)
        print(
            ascii_series(
                {f"beta={b}": dict(enumerate(v)) for b, v in series.items()}
            )
        )
    elif n == 5:
        print(ascii_series(fig5_breakdown_min(scale=args.scale)))
    elif n == 6:
        print(ascii_series(fig6_breakdown_arb(scale=args.scale)))
    elif n == 7:
        print(ascii_series(fig7_breakdown_hybrid(scale=args.scale)))
    elif n == 8:
        print(ascii_series({"seconds by edges": fig8_size_scaling()}))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.reprolint import run_lint
    from repro.analysis.reprolint.rules_flow import RULE_DOCS

    if args.explain is not None:
        rule = args.explain.upper()
        doc = RULE_DOCS.get(rule)
        if doc is None:
            raise ParameterError(
                f"unknown rule {args.explain!r} "
                f"(known: {', '.join(RULE_DOCS)})"
            )
        print(f"{rule}: {doc}")
        return 0
    report = run_lint(
        paths=args.paths or None,
        config_path=args.config,
        use_cache=not args.no_cache,
    )
    if args.format_ == "sarif":
        import json

        from repro.analysis.reprolint.sarif import to_sarif, validate_sarif

        log = to_sarif(report)
        validate_sarif(log)
        payload = json.dumps(log, indent=2)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(report.summary())
        else:
            print(payload)
        return 0 if report.ok else 1
    lines = report.format_lines() + [report.summary()]
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    else:
        for line in lines:
            print(line)
    return 0 if report.ok else 1


def _resolve_fuzz_seed(spec: str) -> int:
    """An integer seed, or ``from-run-id`` -> $GITHUB_RUN_ID (else 0)."""
    import os

    if spec == "from-run-id":
        run_id = os.environ.get("GITHUB_RUN_ID", "0")
        try:
            return int(run_id)
        except ValueError:
            # Non-numeric run ids hash to a stable seed.
            return sum(ord(c) * 31**i for i, c in enumerate(run_id)) % (1 << 31)
    try:
        return int(spec)
    except ValueError:
        raise ParameterError(
            f"--seed must be an integer or 'from-run-id', got {spec!r}"
        ) from None


def _cmd_fuzz(args) -> int:
    from repro.fuzz import fuzz_run

    report = fuzz_run(
        seed=_resolve_fuzz_seed(args.seed),
        max_cases=args.max_cases,
        time_budget=args.time_budget,
        shrink=args.shrink,
        planted=args.planted,
        corpus_dir=args.corpus,
    )
    for line in report.format_lines():
        print(line)
    return 0 if report.ok else 1


def _cmd_replay(args) -> int:
    from repro.fuzz import load_case, run_case

    case = load_case(args.case)
    outcome = run_case(case)
    print(f"case       : {case.case_id or args.case}")
    if case.note:
        print(f"note       : {case.note}")
    print(f"algorithm  : {case.config.algorithm}")
    if outcome.num_components is not None:
        print(f"components : {outcome.num_components}")
    if outcome.detected:
        print(f"detected   : injected fault caught by {outcome.detected_by}")
    for finding in outcome.findings:
        print(f"finding    : {finding}")
    print(f"verdict    : {'PASS' if outcome.passed else 'FAIL'}")
    return 0 if outcome.passed else 1


def _cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    written = generate_report(
        args.outdir, scale=args.scale, beta=args.beta, seed=args.seed
    )
    for artifact, path in sorted(written.items()):
        print(f"{artifact:<10} -> {path}")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "decompose": _cmd_decompose,
    "forest": _cmd_forest,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figure": _cmd_figure,
    "report": _cmd_report,
    "lint": _cmd_lint,
    "fuzz": _cmd_fuzz,
    "replay": _cmd_replay,
    "trace": _cmd_trace,
}


def _silence_broken_pipe() -> int:
    """Detach stdout AND stderr; the POSIX-friendly broken-pipe exit.

    Without the ``dup2`` redirects, whatever is still sitting in the
    stream buffers raises a *second* ``BrokenPipeError`` during
    interpreter-shutdown flush — CPython prints ``Exception ignored``
    and exits 120 instead of our 1.  Redirecting both file descriptors
    to ``/dev/null`` makes the shutdown flush succeed harmlessly.
    """
    devnull = os.open(os.devnull, os.O_WRONLY)
    try:
        for stream in (sys.stdout, sys.stderr):
            try:
                os.dup2(devnull, stream.fileno())
            except (OSError, ValueError):
                pass  # stream already closed or not a real fd
    finally:
        os.close(devnull)
    return 1


def _dispatch(args) -> int:
    """Run one parsed command inside the command-wide execution context."""
    if args.sanitize and args.backend == "reference":
        sanitizable = sorted(n for n in BACKENDS if n != "reference")
        raise ParameterError(
            "--sanitize validates the optimized backends "
            f"({', '.join(sanitizable)}) against the reference "
            "schedule; it cannot be combined with --backend "
            "reference (use the library API "
            "repro.pram.sanitizing() to sanitize the reference "
            "backend directly)"
        )
    if args.workers < 1:
        raise ParameterError(
            f"--workers must be >= 1, got {args.workers}"
        )
    # One execution context for the whole command: the --backend,
    # --workers, --sanitize and --trace flags become context fields,
    # and every run the command performs derives its child context
    # from this one.
    from repro.runtime.context import current_context

    overrides: dict = {
        "backend": resolve_backend(args.backend),
        "workers": args.workers,
    }
    sanitizer = None
    if args.sanitize:
        from repro.pram.sanitizer import PramSanitizer

        sanitizer = PramSanitizer(halt_on_race=True)
        overrides["sanitizer"] = sanitizer
    tracer = metrics = None
    if args.trace:
        from repro.obs import Metrics, Tracer

        tracer, metrics = Tracer(), Metrics()
        overrides["tracer"] = tracer
        overrides["metrics"] = metrics
    with current_context().child(**overrides).activate():
        code = _COMMANDS[args.command](args)
    if tracer is not None:
        from repro.obs import write_trace

        write_trace(
            args.trace,
            tracer,
            metrics,
            meta={
                "command": args.command,
                "scale": args.scale,
                "backend": args.backend,
                "workers": args.workers,
            },
        )
        print(
            f"trace      : {len(tracer.events)} events -> {args.trace}",
            file=sys.stderr,
        )
    if sanitizer is not None:
        print(f"sanitizer  : {sanitizer.summary()}", file=sys.stderr)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Domain failures (:class:`~repro.errors.ReproError`) print a
    one-line ``error: ...`` to stderr and exit 2 — the shell-facing
    contract for scripted sweeps; tracebacks are reserved for actual
    bugs.  A downstream reader closing the pipe (``repro ... | head``)
    exits 1 — never a traceback — whether the broken pipe surfaces on
    stdout or stderr, mid-command or at the final flush.  This
    dispatcher owns both contracts for every subcommand.
    """
    args = build_parser().parse_args(argv)
    try:
        code = _dispatch(args)
        # Flush inside the handler's scope: with stdout piped to a
        # closed reader, buffered output would otherwise only error
        # during interpreter shutdown (exit 120), past this handler.
        sys.stdout.flush()
        sys.stderr.flush()
        return code
    except ReproError as exc:
        try:
            print(f"error: {exc}", file=sys.stderr)
            sys.stderr.flush()
        except BrokenPipeError:
            # An exception raised inside an except block would NOT be
            # caught by the sibling handler below, so the stderr write
            # needs its own guard.
            return _silence_broken_pipe()
        return 2
    except BrokenPipeError:
        return _silence_broken_pipe()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
