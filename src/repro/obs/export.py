"""Chrome ``trace_event`` JSON export and schema validation.

The on-disk format is the JSON Object Format from the Chrome Trace
Event specification: a top-level object with a ``traceEvents`` array,
loadable directly in ``chrome://tracing`` or https://ui.perfetto.dev.
Unknown top-level keys are ignored by both viewers, so we ride the
metrics snapshot and run metadata alongside the events::

    {
      "traceEvents": [...],        # "X"/"B"/"E"/"i"/"M" records
      "displayTimeUnit": "ms",
      "metrics": {...},            # Metrics.snapshot()
      "meta": {...}                # graph/algorithm/backend/workers
    }

:func:`validate_trace` re-checks that shape (it is what the CI
trace-smoke job runs against the ``repro trace`` artifact), and
:func:`jsonable` scrubs NumPy scalars at the serialization boundary
without this package importing NumPy — ``repro.obs`` stays a stdlib
leaf so the runtime layer can import it unconditionally.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Mapping, Optional

from repro.obs.metrics import NullMetrics
from repro.obs.tracer import TraceEvent, Tracer

__all__ = [
    "jsonable",
    "phase_totals",
    "trace_document",
    "validate_trace",
    "write_trace",
]

#: Event phase codes this exporter emits / the validator accepts.
_PHASES = {"X", "B", "E", "i", "M"}


def jsonable(value: Any) -> Any:
    """Recursively coerce ``value`` to json.dump-safe native Python.

    NumPy scalars and 0-d arrays are recognized by their ``item()``
    method rather than by type, keeping this module free of a NumPy
    import.  Mapping keys are coerced too (``np.int64`` keys crash
    ``json.dump`` with ``TypeError: keys must be str...``).
    """
    if isinstance(value, (str, bytes)) or value is None:
        return value
    if isinstance(value, bool):
        return value
    if isinstance(value, Mapping):
        return {_key(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        return item()
    if callable(item) and not hasattr(value, "shape"):
        # NumPy scalar types (np.int64, np.float64, np.bool_) have
        # .item() but no shape-() check shortcut; generic Python ints
        # and floats fall through the isinstance checks below first.
        return item()
    if isinstance(value, (int, float)):
        return value
    if hasattr(value, "tolist"):
        return jsonable(value.tolist())
    return value


def _key(key: Any) -> Any:
    """Coerce a mapping key; json.dump accepts str/int/float/bool/None."""
    if isinstance(key, str):
        return key
    coerced = jsonable(key)
    if isinstance(coerced, (str, int, float, bool)) or coerced is None:
        return coerced
    return str(coerced)


def trace_document(
    tracer: Tracer,
    metrics: Optional[NullMetrics] = None,
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the loadable trace document from a finished run."""
    events: List[TraceEvent] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": tracer.pid,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    with tracer._lock:
        recorded = list(tracer.events)
        tids = dict(tracer._tids)
    for tid in sorted(tids.values()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": tracer.pid,
                "tid": tid,
                "args": {"name": "main" if tid == 0 else f"worker-{tid}"},
            }
        )
    events.extend(recorded)
    doc: Dict[str, Any] = {
        "traceEvents": jsonable(events),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        doc["metrics"] = jsonable(metrics.snapshot())
    if meta is not None:
        doc["meta"] = jsonable(dict(meta))
    return doc


def validate_trace(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed trace document.

    Checks the invariants the viewers rely on: ``traceEvents`` is a
    list of objects each carrying ``name``/``ph``/``pid``/``tid``, a
    known phase code, numeric non-negative ``ts`` where required, and
    numeric non-negative ``dur`` on complete events.  ``B``/``E``
    begin/end events must balance per (pid, tid, name).
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document missing 'traceEvents' list")
    open_phases: Dict[tuple, int] = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: event must be an object")
        ph = event.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"{where}: unknown phase code {ph!r}")
        for field in ("name", "pid", "tid"):
            if field not in event:
                raise ValueError(f"{where}: missing {field!r}")
        if not isinstance(event["name"], str):
            raise ValueError(f"{where}: 'name' must be a string")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
                raise ValueError(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                raise ValueError(f"{where}: 'dur' must be a non-negative number")
        if ph in ("B", "E"):
            key = (event["pid"], event["tid"], event["name"])
            depth = open_phases.get(key, 0) + (1 if ph == "B" else -1)
            if depth < 0:
                raise ValueError(f"{where}: 'E' event with no matching 'B'")
            open_phases[key] = depth
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            raise ValueError(f"{where}: 'args' must be an object")
    dangling = [key for key, depth in open_phases.items() if depth]
    if dangling:
        raise ValueError(f"unbalanced B/E phase events: {sorted(dangling)!r}")
    metrics = doc.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict) or not isinstance(
            metrics.get("counters"), dict
        ):
            raise ValueError("'metrics' must be an object with a 'counters' map")


def phase_totals(tracer: Tracer) -> Dict[str, float]:
    """Wall seconds inside each recorded phase window, summed by name.

    Aggregates the ``B``/``E`` events the cost tracker's observer hook
    emits (see :meth:`repro.pram.cost.CostTracker.phase`) into the
    per-phase wall-clock breakdown the paper's Figures 5-7 report.
    Windows nest (the innermost label was active); each label's total
    counts its own outermost windows once, per thread.
    """
    totals: Dict[str, float] = {}
    open_windows: Dict[tuple, list] = {}
    with tracer._lock:
        events = list(tracer.events)
    for event in events:
        ph = event.get("ph")
        if ph not in ("B", "E"):
            continue
        key = (event["pid"], event["tid"], event["name"])
        stack = open_windows.setdefault(key, [])
        if ph == "B":
            stack.append(float(event["ts"]))  # type: ignore[arg-type]
        elif stack:
            start = stack.pop()
            if not stack:  # outermost window of this label only
                name = str(event["name"])
                duration = (float(event["ts"]) - start) / 1e6  # type: ignore[arg-type]
                totals[name] = totals.get(name, 0.0) + duration
    return totals


def write_trace(
    fp_or_path: Any,
    tracer: Tracer,
    metrics: Optional[NullMetrics] = None,
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Validate and write the trace document; return it.

    ``fp_or_path`` is a path (str / PathLike) or an open text file.
    """
    doc = trace_document(tracer, metrics=metrics, meta=meta)
    validate_trace(doc)
    if hasattr(fp_or_path, "write"):
        fp: IO[str] = fp_or_path
        json.dump(doc, fp, indent=2)
        fp.write("\n")
    else:
        with open(fp_or_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    return doc
