"""Counters and histograms for the runtime, session and backend layers.

Where the tracer (:mod:`repro.obs.tracer`) records *when* things
happened, the metrics registry records *how often* and *how big*:
Session memo hits and misses, workspace-pool claims, parallel-backend
combines and chunk batches, resilience retries, fault injections, fuzz
oracle comparisons.  The catalog of names lives in
``docs/observability.md``.

The same null-object idiom as the tracer applies: the process default
is :data:`NULL_METRICS`, whose mutators do nothing, so instrumented
call sites never branch.  An active :class:`Metrics` is thread-safe
(one lock around every mutation) and snapshots to plain ``dict``s of
native Python types, ready for ``json.dump``.

Determinism contract: metrics are observational.  Counter values may
legitimately differ between configurations (a parallel run records
more chunk batches than a serial one; a second `Session.run` records a
memo hit), but recording them never feeds back into the run.
"""

from __future__ import annotations

import threading
from typing import Dict, List

__all__ = ["Metrics", "NULL_METRICS", "NullMetrics"]


class NullMetrics:
    """Zero-overhead default: counts nothing, reports empty snapshots."""

    enabled: bool = False

    def incr(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name``."""

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return 0

    def snapshot(self) -> Dict[str, object]:
        """Flat JSON-ready dump of all counters and histogram summaries."""
        return {"counters": {}, "histograms": {}}


NULL_METRICS = NullMetrics()


class Metrics(NullMetrics):
    """Thread-safe counter/histogram registry.

    Histograms keep every sample (runs are short; a decomposition
    records at most a few thousand observations) and summarize to
    count/min/max/sum on :meth:`snapshot` — enough for the CLI dump and
    the trace sidecar without binning policy.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, List[float]] = {}

    def incr(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self._histograms.setdefault(name, []).append(float(value))

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def samples(self, name: str) -> List[float]:
        """The raw samples recorded into histogram ``name``."""
        with self._lock:
            return list(self._histograms.get(name, ()))

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counters = {name: int(v) for name, v in sorted(self._counters.items())}
            histograms = {
                name: {
                    "count": len(samples),
                    "min": min(samples),
                    "max": max(samples),
                    "sum": sum(samples),
                }
                for name, samples in sorted(self._histograms.items())
                if samples
            }
        return {"counters": counters, "histograms": histograms}
