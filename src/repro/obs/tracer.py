"""Structured tracing: nested spans over runs, rounds and phases.

The simulated cost model answers "what would this run cost on a CRCW
PRAM?"; the tracer answers the orthogonal engineering question the
paper's per-phase breakdowns (Figures 5-7) are built on: *where did the
wall-clock go* — which round, which phase, sparse or dense, and how much
(work, depth) was charged while it ran.

Two implementations share one interface:

* :class:`NullTracer` — the process default.  Every hook is a no-op
  and :data:`NullTracer.enabled` is ``False``, so instrumented code can
  guard its bookkeeping (tracker snapshots, argument dicts) behind one
  attribute read.  With the null tracer installed, an instrumented run
  is byte-identical to an uninstrumented one — the golden parity suite
  replays with tracing off *and on* to pin that.
* :class:`Tracer` — records :class:`SpanHandle` completions and
  instant events into an in-memory list, timestamped with
  ``time.perf_counter`` relative to the tracer's construction.

Determinism contract (machine-checked by ``repro lint`` RL010): tracer
code observes — it never mutates shared arrays, never charges the cost
tracker, and never touches the run's RNG.  Timestamps are wall-clock
(this module is exempt from RL004's clock ban for exactly that reason);
everything else recorded is a pure function of the run.

Span records follow the Chrome ``trace_event`` vocabulary so the export
(:mod:`repro.obs.export`) is a direct mapping: complete spans are
``"X"`` events with microsecond ``ts``/``dur``, phase windows are
``"B"``/``"E"`` pairs, instants are ``"i"``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanHandle",
    "Tracer",
    "TraceEvent",
]

#: One Chrome trace_event-shaped record (see :mod:`repro.obs.export`).
TraceEvent = Dict[str, object]


class Span:
    """Base span handle — the no-op the :class:`NullTracer` hands out.

    :class:`SpanHandle` (the recording subclass) shares this interface,
    so instrumented code holds one static type either way.
    """

    __slots__ = ()

    def set(self, **args: object) -> None:
        """Discard the attributes."""

    def close(self) -> None:
        """Nothing to record."""

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = Span()


class NullTracer:
    """Zero-overhead default tracer: every hook is a no-op.

    Mirrors the ``_NullTracker`` idiom of :mod:`repro.pram.cost`: a
    do-nothing implementation (instead of ``if tracer is not None``
    checks) keeps the instrumented call sites branch-free, and the
    ``enabled`` flag lets the few sites with real bookkeeping cost
    (per-round tracker snapshots) skip it entirely.
    """

    #: Instrumentation guards expensive argument collection behind this.
    enabled: bool = False

    def span(self, name: str, cat: str = "run", **args: object) -> Span:
        """Open a span; the returned handle is a context manager."""
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "run", **args: object) -> None:
        """Record a point event."""

    def phase_begin(self, label: str) -> None:
        """Cost-tracker phase window opened (observer hook)."""

    def phase_end(self, label: str) -> None:
        """Cost-tracker phase window closed (observer hook)."""


#: The shared process-default tracer (the ``ExecutionContext`` default).
NULL_TRACER = NullTracer()


class SpanHandle(Span):
    """One open span of an active :class:`Tracer`.

    Close it exactly once — either via :meth:`close` or by using the
    handle as a context manager.  :meth:`set` attaches attributes that
    land in the trace event's ``args`` (work/depth deltas, frontier
    sizes, the direction decision, ...).
    """

    __slots__ = ("_tracer", "name", "cat", "args", "start_us", "tid", "_open")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        args: Dict[str, object],
        start_us: float,
        tid: int,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.start_us = start_us
        self.tid = tid
        self._open = True

    def set(self, **args: object) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.args.update(args)

    def close(self) -> None:
        """Record the span as a complete (``"X"``) trace event."""
        if not self._open:
            return
        self._open = False
        self._tracer._complete(self)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Tracer(NullTracer):
    """Records spans, phase windows and instants with real timestamps.

    Thread-safe: spans opened from different threads interleave into
    one event list (each event carries the opening thread's id), which
    is what the Chrome trace viewer expects.  The tracer itself never
    blocks a run on anything but one short list-append lock.

    Parameters
    ----------
    clock:
        Injectable time source (seconds, monotonic); tests pin it to a
        fake to get deterministic timestamps.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._t0 = clock()
        self.pid = os.getpid()
        self.events: List[TraceEvent] = []
        self._tids: Dict[int, int] = {}

    # -- internal plumbing -------------------------------------------------

    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    def _tid(self) -> int:
        """Small stable per-thread id (0 = the first thread seen)."""
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = self._tids[ident] = len(self._tids)
            return tid

    def _append(self, event: TraceEvent) -> None:
        with self._lock:
            self.events.append(event)

    def _complete(self, span: SpanHandle) -> None:
        end_us = self._now_us()
        self._append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start_us,
                "dur": max(0.0, end_us - span.start_us),
                "pid": self.pid,
                "tid": span.tid,
                "args": span.args,
            }
        )

    # -- the recording interface -------------------------------------------

    def span(self, name: str, cat: str = "run", **args: object) -> SpanHandle:
        """Open a span; record it when the handle closes."""
        return SpanHandle(self, name, cat, dict(args), self._now_us(), self._tid())

    def instant(self, name: str, cat: str = "run", **args: object) -> None:
        self._append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": self._now_us(),
                "s": "t",  # thread-scoped instant
                "pid": self.pid,
                "tid": self._tid(),
                "args": dict(args),
            }
        )

    def phase_begin(self, label: str) -> None:
        """Cost-tracker phases map to ``B``/``E`` duration events."""
        self._append(
            {
                "name": label,
                "cat": "phase",
                "ph": "B",
                "ts": self._now_us(),
                "pid": self.pid,
                "tid": self._tid(),
            }
        )

    def phase_end(self, label: str) -> None:
        self._append(
            {
                "name": label,
                "cat": "phase",
                "ph": "E",
                "ts": self._now_us(),
                "pid": self.pid,
                "tid": self._tid(),
            }
        )

    # -- inspection --------------------------------------------------------

    def spans(self, cat: Optional[str] = None) -> List[TraceEvent]:
        """The recorded complete (``"X"``) spans, optionally by category."""
        with self._lock:
            return [
                e
                for e in self.events
                if e["ph"] == "X" and (cat is None or e["cat"] == cat)
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)
