"""Observability layer: structured tracing and metrics for runs.

A stdlib-only leaf package (no NumPy, no imports from other ``repro``
subpackages except nothing at all) so :mod:`repro.runtime.context` can
depend on it unconditionally.  See ``docs/observability.md`` for the
span model, the metrics catalog and the Perfetto workflow.
"""

from repro.obs.export import (
    jsonable,
    phase_totals,
    trace_document,
    validate_trace,
    write_trace,
)
from repro.obs.metrics import Metrics, NULL_METRICS, NullMetrics
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanHandle, Tracer

__all__ = [
    "Metrics",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "SpanHandle",
    "Tracer",
    "jsonable",
    "phase_totals",
    "trace_document",
    "validate_trace",
    "write_trace",
]
