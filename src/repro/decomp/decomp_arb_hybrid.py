"""Decomp-Arb-Hybrid: Decomp-Arb with direction-optimizing rounds.

The paper's third variant applies the Beamer direction-optimizing idea
to Decomp-Arb: when the frontier holds more than 20 % of the remaining
unvisited vertices, the round runs *read-based* — every unvisited
vertex scans its own adjacency list and adopts the component of the
first frontier neighbor it finds, then exits early.  The sweep is
streaming and needs no atomics, which is why it wins on dense
low-diameter graphs (about 2x on rMat2 / com-Orkut in Table 2) even
though connectivity, unlike plain BFS, cannot *skip* edge inspections:
the edges a dense round leaves unclassified must be revisited in a
post-processing **filterEdges** phase that classifies them by the final
labels (the paper marks already-relabeled edges with a sign bit; we
track the deferred set as "the out-edges of vertices whose frontier
round ran dense", which is the same set).

Classification by final labels is exact, not an approximation: a
vertex's component label never changes once assigned, so an edge's
intra/inter status is determined the moment both endpoints are labeled
— which is precisely when the sparse path classifies it too.

As an engine configuration this variant is::

    tie-break = arb (CAS race), direction = fraction hybrid (20 %)

The dense-switch rule (decided on the *claimed* frontier — last
round's BFS winners, excluding freshly started centers) lives in
:class:`repro.engine.direction.FractionHybrid`; the read-based sweep
and the deferred-edge classification live in
:func:`repro.engine.kernels.dense_round` and
:func:`repro.engine.kernels.filter_edges` (re-exported here under
their historical names).
"""

from __future__ import annotations

from repro.decomp.base import (
    UNVISITED,  # noqa: F401  (historical re-export)
    Decomposition,
    DecompState,
    validate_beta,
)
from repro.engine.core import TraversalEngine
from repro.engine.direction import FractionHybrid
from repro.engine.frontier import DENSE_THRESHOLD
from repro.engine.kernels import (  # noqa: F401  (historical re-exports)
    dense_round,
    filter_edges,
)
from repro.engine.tiebreak import ArbTiebreak
from repro.graphs.csr import CSRGraph

__all__ = ["decomp_arb_hybrid"]


def decomp_arb_hybrid(
    graph: CSRGraph,
    beta: float,
    seed: int = 1,
    schedule_mode: str = "permutation",
    dense_threshold: float = DENSE_THRESHOLD,
    round_budget=None,
) -> Decomposition:
    """Run Decomp-Arb-Hybrid on *graph*.

    Identical output distribution to :func:`~repro.decomp.decomp_arb.
    decomp_arb` (both break ties arbitrarily; the winners differ only
    by schedule), with the read-based optimization for large frontiers.

    Parameters
    ----------
    dense_threshold:
        Fraction of remaining unvisited vertices above which a round
        runs read-based (paper: 0.20).  The ablation bench sweeps this.
    round_budget:
        Optional :class:`~repro.resilience.policy.RoundBudget` override.
    """
    validate_beta(beta)
    state = DecompState(
        graph, beta, seed, schedule_mode,
        budget=round_budget, algorithm="decomp-arb-hybrid",
    )
    engine = TraversalEngine(
        state,
        direction=FractionHybrid(
            threshold=dense_threshold, sparse_phase="bfsSparse"
        ),
        tiebreak=ArbTiebreak(),
    )
    engine.run()
    return state.finish()
