"""Decomp-Arb-Hybrid: Decomp-Arb with direction-optimizing rounds.

The paper's third variant applies the Beamer direction-optimizing idea
to Decomp-Arb: when the frontier holds more than 20 % of the remaining
unvisited vertices, the round runs *read-based* — every unvisited
vertex scans its own adjacency list and adopts the component of the
first frontier neighbor it finds, then exits early.  The sweep is
streaming and needs no atomics, which is why it wins on dense
low-diameter graphs (about 2x on rMat2 / com-Orkut in Table 2) even
though connectivity, unlike plain BFS, cannot *skip* edge inspections:
the edges a dense round leaves unclassified must be revisited in a
post-processing **filterEdges** phase that classifies them by the final
labels (the paper marks already-relabeled edges with a sign bit; we
track the deferred set as "the out-edges of vertices whose frontier
round ran dense", which is the same set).

Classification by final labels is exact, not an approximation: a
vertex's component label never changes once assigned, so an edge's
intra/inter status is determined the moment both endpoints are labeled
— which is precisely when the sparse path classifies it too.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.bfs.frontier import DENSE_THRESHOLD
from repro.decomp.base import UNVISITED, Decomposition, DecompState
from repro.decomp.decomp_arb import _validate_beta, arb_round
from repro.graphs.csr import CSRGraph
from repro.pram.cost import current_tracker
from repro.primitives.atomics import first_winner
from repro.primitives.pack import pack_index

__all__ = ["decomp_arb_hybrid"]


def dense_round(state: DecompState) -> np.ndarray:
    """One read-based round: unvisited vertices pull from the frontier.

    Returns the newly visited vertices (next frontier).  Charges the
    early-exit edge count as streaming ``scan`` work — no atomics.
    """
    tracker = current_tracker()
    graph, C = state.graph, state.C
    n = graph.num_vertices

    on_frontier = np.zeros(n, dtype=bool)
    on_frontier[state.frontier] = True
    tracker.add("scatter", work=float(state.frontier.size), depth=1.0)

    unvisited = pack_index(C == UNVISITED)
    if unvisited.size == 0:
        tracker.sync()
        return np.zeros(0, dtype=np.int64)
    # charge_cost=False: only the early-exit edge count below is charged.
    src, dst = graph.expand(unvisited, charge_cost=False)
    hit = on_frontier[dst]
    hit_positions = np.flatnonzero(hit)
    if hit_positions.size:
        first_pos, winners = first_winner(src[hit_positions])
        adopted_from = dst[hit_positions[first_pos]]
        C[winners] = C[adopted_from]
        tracker.add("scatter", work=float(winners.size), depth=1.0)
        state.visited += int(winners.size)
    else:
        winners = np.zeros(0, dtype=np.int64)

    # Early-exit accounting: edges scanned up to the first hit (or the
    # whole list when there is none) — this is the work the paper's
    # read-based sweep saves over the write-based one.
    counts = graph.offsets[unvisited + 1] - graph.offsets[unvisited]
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    scanned = counts.astype(np.float64)
    if hit_positions.size:
        order = np.searchsorted(unvisited, winners)
        scanned[order] = (hit_positions[first_pos] - starts[order] + 1).astype(
            np.float64
        )
    examined = int(scanned.sum())
    state.edges_inspected += examined
    tracker.add("scan", work=float(examined + unvisited.size), depth=1.0)
    tracker.sync(depth=float(max(1, math.ceil(math.log2(n + 1)))))
    return winners


def filter_edges(state: DecompState, deferred: List[np.ndarray]) -> None:
    """The post-processing phase: classify every deferred edge.

    *deferred* holds the frontiers of the dense rounds; their out-edges
    were never inspected write-based, so we stream over them once,
    keeping those whose endpoint labels differ (already relabeled to
    component ids, as everywhere else).
    """
    tracker = current_tracker()
    if not deferred:
        return
    vertices = np.concatenate(deferred)
    if vertices.size == 0:
        return
    C = state.C
    src, dst = state.graph.expand(vertices)
    state.edges_inspected += int(src.size)
    cu = C[src]
    cw = C[dst]
    tracker.add("scan", work=float(2 * src.size), depth=1.0)
    inter = cu != cw
    state.keep_inter(cu[inter], cw[inter], src[inter], dst[inter])
    tracker.sync(depth=float(max(1, math.ceil(math.log2(src.size + 1)))))


def decomp_arb_hybrid(
    graph: CSRGraph,
    beta: float,
    seed: int = 1,
    schedule_mode: str = "permutation",
    dense_threshold: float = DENSE_THRESHOLD,
    round_budget=None,
) -> Decomposition:
    """Run Decomp-Arb-Hybrid on *graph*.

    Identical output distribution to :func:`~repro.decomp.decomp_arb.
    decomp_arb` (both break ties arbitrarily; the winners differ only
    by schedule), with the read-based optimization for large frontiers.

    Parameters
    ----------
    dense_threshold:
        Fraction of remaining unvisited vertices above which a round
        runs read-based (paper: 0.20).  The ablation bench sweeps this.
    round_budget:
        Optional :class:`~repro.resilience.policy.RoundBudget` override.
    """
    _validate_beta(beta)
    state = DecompState(
        graph, beta, seed, schedule_mode,
        budget=round_budget, algorithm="decomp-arb-hybrid",
    )
    tracker = current_tracker()
    next_frontier = np.zeros(0, dtype=np.int64)
    deferred: List[np.ndarray] = []
    while True:
        claimed = int(next_frontier.size)
        state.start_new_centers(next_frontier)
        if state.done:
            break
        # The paper's switch: go read-based when the frontier exceeds
        # 20% of the vertices (and there is someone left to pull).
        # The decision is made on the *claimed* frontier — last round's
        # BFS winners — not counting the centers that just started:
        # with beta = 0.2 the largest possible center chunk is a
        # (1 - e^-beta) ~ 18% fraction of the vertices, deliberately
        # under the threshold, and counting it would let sampling noise
        # flip diameter-bound graphs (line, 3D-grid) into dense rounds
        # the paper never observes (Figure 7).
        go_dense = (
            state.visited < state.n and claimed > dense_threshold * state.n
        )
        if go_dense:
            state.dense_rounds.append(state.round)
            deferred.append(state.frontier)
            with tracker.phase("bfsDense"):
                next_frontier = dense_round(state)
        else:
            with tracker.phase("bfsSparse"):
                next_frontier = arb_round(state)
        state.round += 1
    with tracker.phase("filterEdges"):
        filter_edges(state, deferred)
    return state.finish()
