"""Shared machinery for the three DECOMP implementations.

A decomposition run produces a :class:`Decomposition`: per-vertex
component labels (each label is the id of the component's BFS center),
the directed inter-component edges expressed as label pairs (the paper
relabels edge endpoints to component ids on the fly, so the contraction
phase never revisits the original edge array), and per-round statistics
that feed the analysis module and Figures 4-7.

The helpers here implement the parts all variants share verbatim:
parameter validation, consuming the shift schedule ("bfsPre" — new
centers are appended to the single shared frontier array) and
assembling the result.  :class:`DecompState` is the decomposition
family's :class:`~repro.engine.core.TraversalState`: the variant
modules configure a :class:`~repro.engine.core.TraversalEngine` around
it and the engine drives the rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.decomp.shifts import ShiftSchedule
from repro.engine.core import UNVISITED, TraversalEngine, TraversalState, end_round
from repro.engine.kernels import dense_round, filter_edges
from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.resilience.policy import RoundBudget
from repro.runtime.context import current_context

__all__ = ["Decomposition", "DecompState", "UNVISITED", "validate_beta"]


def validate_beta(beta: float) -> None:
    """Reject out-of-range decomposition parameters (shared by all variants).

    The paper's analysis needs ``0 < beta < 1``: beta = 0 never starts
    new centers, beta >= 1 starts everything at once.
    """
    if not 0.0 < beta < 1.0:
        raise ParameterError(f"beta must be in (0,1), got {beta}")


@dataclass
class Decomposition:
    """Result of one low-diameter decomposition.

    Attributes
    ----------
    labels:
        ``labels[v]`` is the id of the BFS center whose partition owns
        ``v``; every vertex is owned (isolated vertices own themselves).
    inter_src / inter_dst:
        Directed inter-component edges as *label* pairs — for each
        surviving directed edge (u, w), the pair
        ``(labels[u], labels[w])`` with the two differing.  Both
        orientations of every surviving undirected edge appear, as in
        the paper's symmetric edge storage.
    orig_src / orig_dst:
        The original endpoints (u, w) of each surviving edge, aligned
        with ``inter_src``/``inter_dst``.  Lets contraction carry a
        representative original edge per contracted edge, which the
        spanning-forest extraction (paper footnote 1's converse) needs
        to map tree edges of the contracted graph back to real edges.
    num_rounds:
        BFS rounds executed (the paper's O(log n / beta) bound).
    frontier_sizes:
        Vertices on the frontier per round.
    edges_inspected:
        Directed edge inspections charged during the BFS phases —
        differs between variants (the hybrid's early exits) and is what
        the breakdown figures visualise.
    dense_rounds:
        Round indices the hybrid ran read-based (empty for min/arb).
    """

    labels: np.ndarray
    inter_src: np.ndarray
    inter_dst: np.ndarray
    orig_src: np.ndarray
    orig_dst: np.ndarray
    num_rounds: int
    frontier_sizes: List[int] = field(default_factory=list)
    edges_inspected: int = 0
    dense_rounds: List[int] = field(default_factory=list)

    @property
    def num_inter_directed(self) -> int:
        """Directed inter-component edge count (2x the undirected count)."""
        return int(self.inter_src.size)

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).size) if self.labels.size else 0

    def component_sizes(self) -> np.ndarray:
        """Sizes of the partitions, in ascending center-id order."""
        if self.labels.size == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.labels, minlength=self.labels.size)[
            np.unique(self.labels)
        ]


class DecompState(TraversalState):
    """Mutable per-run state shared by the decomposition main loops.

    Owns the component array ``C`` (the paper's C / C2), the schedule,
    the shared frontier, and the growing inter-edge output lists.  As a
    :class:`~repro.engine.core.TraversalState` it plugs into the
    :class:`~repro.engine.core.TraversalEngine`: ``begin_round`` is the
    center-seeding / resilience boundary (:meth:`start_new_centers`),
    ``push_round`` delegates to the configured tie-break policy, and
    ``pull_round`` is the read-based sweep whose inspected edges are
    deferred to the ``filterEdges`` pass in :meth:`finalize`.
    """

    def __init__(
        self,
        graph: CSRGraph,
        beta: float,
        seed: int,
        mode: str,
        budget: Optional[RoundBudget] = None,
        algorithm: str = "decomp",
    ) -> None:
        if not graph.symmetric:
            raise ParameterError("decomposition requires a symmetric graph")
        self.graph = graph
        n = graph.num_vertices
        self.budget = (
            budget
            if budget is not None
            else RoundBudget.for_decomposition(n, beta, algorithm=algorithm)
        )
        tracker = current_context().tracker
        with tracker.phase("init"):
            self.schedule = ShiftSchedule(
                n=n, beta=beta, seed=seed, mode=mode  # type: ignore[arg-type]
            )
            self.C = np.full(n, UNVISITED, dtype=np.int64)
            tracker.add("alloc", work=float(n), depth=1.0)
        # Execution-backend arena: the round kernels route their
        # scratch arrays through this (a NullWorkspace under the
        # reference backend).  Never charged — it changes how rounds
        # run, not what they compute or cost.
        self.workspace = current_context().acquire_workspace(n)
        self.frontier = np.zeros(0, dtype=np.int64)
        self.consumed = 0
        self.visited = 0
        self.round = 0
        self.inter_src_chunks: List[np.ndarray] = []
        self.inter_dst_chunks: List[np.ndarray] = []
        self.orig_src_chunks: List[np.ndarray] = []
        self.orig_dst_chunks: List[np.ndarray] = []
        self.frontier_sizes: List[int] = []
        self.edges_inspected = 0
        self.dense_rounds: List[int] = []
        #: Frontiers of the read-based rounds, whose out-edges await
        #: the post-loop filterEdges classification.
        self.deferred: List[np.ndarray] = []

    @property
    def n(self) -> int:
        return self.graph.num_vertices

    @property
    def visited_count(self) -> int:
        """Vertices owned by some component so far (engine interface)."""
        return self.visited

    @property
    def done(self) -> bool:
        """All vertices visited and all frontier work drained."""
        return self.visited >= self.n and self.frontier.size == 0

    # -- engine interface ---------------------------------------------------

    def initial_frontier(self) -> np.ndarray:
        return np.zeros(0, dtype=np.int64)

    def shared_arrays(self) -> dict:
        return {"C": self.C}

    def begin_round(self, engine: TraversalEngine, next_frontier: np.ndarray) -> None:
        self.start_new_centers(next_frontier)

    def note_dense_round(self) -> None:
        self.dense_rounds.append(self.round)
        self.deferred.append(self.frontier)

    def push_round(self, engine: TraversalEngine) -> np.ndarray:
        return engine.tiebreak.push_round(self, engine)

    def pull_round(self, engine: TraversalEngine) -> np.ndarray:
        with current_context().tracker.phase("bfsDense"):
            return dense_round(self)

    def finalize(self, engine: TraversalEngine) -> None:
        # A no-op (and charge-free) pass for push-only runs; for the
        # hybrids it classifies every edge the dense rounds skipped.
        with current_context().tracker.phase("filterEdges"):
            filter_edges(self, self.deferred)

    def start_new_centers(self, next_frontier: np.ndarray) -> None:
        """The "bfsPre" step: pull due candidates, start the unvisited ones.

        New BFS centers set ``C[v] = v`` and are appended to the end of
        the shared frontier array, after the vertices discovered last
        round — exactly the frontier layout of the paper's
        implementation.

        This is also the round boundary, so two resilience hooks live
        here: the :class:`RoundBudget` check (a runaway loop raises a
        structured :class:`~repro.errors.ConvergenceError` instead of
        spinning) and the frontier/label fault-injection points of an
        armed :class:`~repro.resilience.faults.FaultPlan`.
        """
        self.budget.check(self.round)
        tracker = current_context().tracker
        plan = current_context().fault_plan
        with tracker.phase("bfsPre"):
            cum = self.schedule.cumulative(self.round)
            candidates = self.schedule.order[self.consumed : cum]
            self.consumed = cum
            tracker.add("gather", work=float(candidates.size), depth=1.0)
            fresh = candidates[self.C[candidates] == UNVISITED]
            if fresh.size:
                sanitizer = current_context().sanitizer
                if sanitizer is not None:
                    # Self-claim seeding: distinct unvisited vertices,
                    # single writer each — declared, so the shadow check
                    # knows these cells changed legally.
                    sanitizer.record_write(self.C, fresh)
                self.C[fresh] = fresh
                tracker.add("scatter", work=float(fresh.size), depth=1.0)
                self.visited += int(fresh.size)
            frontier = (
                np.concatenate((next_frontier, fresh))
                if next_frontier.size or fresh.size
                else next_frontier
            )
            if plan is not None:
                frontier = plan.filter_frontier(frontier, self.round)
                plan.corrupt_labels(self.C, self.round, int(UNVISITED))
            self.frontier = frontier
            self.frontier_sizes.append(int(self.frontier.size))
            end_round(packing="unit")

    def keep_inter(
        self,
        src_labels: np.ndarray,
        dst_labels: np.ndarray,
        orig_src: np.ndarray,
        orig_dst: np.ndarray,
    ) -> None:
        """Record surviving (inter-component) directed edges.

        *src_labels*/*dst_labels* are the relabeled (component-id)
        endpoints; *orig_src*/*orig_dst* the original vertex pair, kept
        so contraction can nominate representative real edges.
        """
        if src_labels.size:
            self.inter_src_chunks.append(src_labels)
            self.inter_dst_chunks.append(dst_labels)
            self.orig_src_chunks.append(orig_src)
            self.orig_dst_chunks.append(orig_dst)

    def finish(self) -> Decomposition:
        """Assemble the result after the main loop drains."""
        if self.inter_src_chunks:
            inter_src = np.concatenate(self.inter_src_chunks)
            inter_dst = np.concatenate(self.inter_dst_chunks)
            orig_src = np.concatenate(self.orig_src_chunks)
            orig_dst = np.concatenate(self.orig_dst_chunks)
        else:
            inter_src = np.zeros(0, dtype=np.int64)
            inter_dst = np.zeros(0, dtype=np.int64)
            orig_src = np.zeros(0, dtype=np.int64)
            orig_dst = np.zeros(0, dtype=np.int64)
        return Decomposition(
            labels=self.C.copy(),
            inter_src=inter_src,
            inter_dst=inter_dst,
            orig_src=orig_src,
            orig_dst=orig_dst,
            num_rounds=self.round,
            frontier_sizes=self.frontier_sizes,
            edges_inspected=self.edges_inspected,
            dense_rounds=self.dense_rounds,
        )
