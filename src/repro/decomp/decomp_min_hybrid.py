"""Decomp-Min-Hybrid: writeMin tie-breaking + direction-optimizing rounds.

The fourth corner of the paper's design square, reachable only once
the traversal engine made tie-break and direction independent axes:

====================  ==============  ===================
variant               tie-break       direction
====================  ==============  ===================
Decomp-Min            min (writeMin)  always push
Decomp-Arb            arb (CAS)       always push
Decomp-Arb-Hybrid     arb (CAS)       fraction hybrid
**Decomp-Min-Hybrid** min (writeMin)  fraction hybrid
====================  ==============  ===================

Sparse rounds run Algorithm 2's two writeMin phases; rounds whose
claimed frontier exceeds the 20 % threshold run the read-based sweep
instead, with the inspected edges deferred to filterEdges.  The mix is
coherent because a read-based round is tie-break independent: every
unvisited vertex adopts exactly one neighbor's component (the first in
adjacency order), so no concurrent-write conflict exists for the
writeMin rule to resolve — whichever rule the sparse rounds use, the
dense rounds are the same arbitrary-CRCW adoption.

Quality sits between its parents: dense rounds forgo the minimum-shift
guarantee on the vertices they claim, so the expected inter-edge bound
is the arbitrary rule's 2*beta*m (Theorem 2), not beta*m — the
decomposition-quality tests and ``fraction_bound`` account it that
way.  What it buys over Decomp-Min is the hybrid's streaming dense
rounds on low-diameter inputs while keeping writeMin's tighter
*observed* quality on the sparse rounds (Table 2's new row).

Correctness of the shared pair array across mixed rounds: phase 1 only
writeMins onto still-unvisited targets and phase 2 only reads the
pairs of those same targets, so a vertex claimed by a dense round is
excluded from every later writeMin round by ``C[w] != UNVISITED`` —
its stale pair cell is never read again.
"""

from __future__ import annotations

from repro.decomp.base import Decomposition, DecompState, validate_beta
from repro.engine.core import TraversalEngine
from repro.engine.direction import FractionHybrid
from repro.engine.frontier import DENSE_THRESHOLD
from repro.engine.tiebreak import MinTiebreak
from repro.graphs.csr import CSRGraph

__all__ = ["decomp_min_hybrid"]


def decomp_min_hybrid(
    graph: CSRGraph,
    beta: float,
    seed: int = 1,
    schedule_mode: str = "permutation",
    dense_threshold: float = DENSE_THRESHOLD,
    round_budget=None,
) -> Decomposition:
    """Run Decomp-Min-Hybrid on *graph*.

    Algorithm 2's writeMin rule on sparse rounds, the read-based sweep
    on dense ones.  Expected inter-component edges <= 2*beta*m (the
    dense rounds adopt arbitrarily), partition diameter
    O(log n / beta) w.h.p.; O(m) expected work.

    Parameters
    ----------
    dense_threshold:
        Fraction of remaining unvisited vertices above which a round
        runs read-based (paper: 0.20).
    round_budget:
        Optional :class:`~repro.resilience.policy.RoundBudget` override.
    """
    validate_beta(beta)
    state = DecompState(
        graph, beta, seed, schedule_mode,
        budget=round_budget, algorithm="decomp-min-hybrid",
    )
    engine = TraversalEngine(
        state,
        direction=FractionHybrid(threshold=dense_threshold),
        tiebreak=MinTiebreak(),
    )
    engine.run()
    return state.finish()
