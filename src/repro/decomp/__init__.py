"""Low-diameter graph decomposition (Miller-Peng-Xu) — the paper's core.

Four implementations with identical interfaces, each a tie-break x
direction configuration of the shared :mod:`repro.engine` round loop:

* :func:`~repro.decomp.decomp_min.decomp_min` — Algorithm 2, the
  faithful writeMin rule (beta*m inter-edge bound, two phases/round);
* :func:`~repro.decomp.decomp_arb.decomp_arb` — Algorithm 3, arbitrary
  tie-breaking (2*beta*m bound, one phase/round) — the paper's
  contribution;
* :func:`~repro.decomp.decomp_arb_hybrid.decomp_arb_hybrid` —
  Decomp-Arb with direction-optimizing dense rounds + filterEdges;
* :func:`~repro.decomp.decomp_min_hybrid.decomp_min_hybrid` — the
  remaining combination: writeMin sparse rounds, read-based dense ones.

Plus :func:`~repro.decomp.contract.contract` (partition contraction)
and the shift-schedule machinery in :mod:`repro.decomp.shifts`.
"""

from repro.decomp.base import UNVISITED, Decomposition, DecompState
from repro.decomp.contract import Contraction, contract
from repro.decomp.decomp_arb import decomp_arb
from repro.decomp.decomp_arb_hybrid import decomp_arb_hybrid
from repro.decomp.decomp_min import decomp_min
from repro.decomp.decomp_min_hybrid import decomp_min_hybrid
from repro.decomp.shifts import FRAC_BITS, ShiftSchedule

__all__ = [
    "Contraction",
    "Decomposition",
    "DecompState",
    "FRAC_BITS",
    "LowDiameterDecomposition",
    "ShiftSchedule",
    "UNVISITED",
    "contract",
    "decomp_arb",
    "decomp_arb_hybrid",
    "decomp_min",
    "decomp_min_hybrid",
    "low_diameter_decomposition",
]

#: Registry used by the connectivity driver and the experiment harness.
DECOMP_VARIANTS = {
    "min": decomp_min,
    "arb": decomp_arb,
    "arb-hybrid": decomp_arb_hybrid,
    "min-hybrid": decomp_min_hybrid,
}

# The facade imports DECOMP_VARIANTS, so it loads after the registry.
from repro.decomp.facade import (  # noqa: E402
    LowDiameterDecomposition,
    low_diameter_decomposition,
)
