"""High-level low-diameter decomposition API.

The Miller-Peng-Xu decomposition is useful far beyond connectivity
(SDD solvers, metric embeddings, ...), so the library exposes it as a
first-class operation: one call returning the partition labels together
with the measured quality — inter-edge fraction vs. the theoretical
bound and partition radii vs. the O(log n / beta) guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.decomp import DECOMP_VARIANTS
from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph

__all__ = ["LowDiameterDecomposition", "low_diameter_decomposition"]


@dataclass
class LowDiameterDecomposition:
    """A (beta, d)-decomposition with measured quality.

    Attributes
    ----------
    labels:
        Per-vertex partition label (the partition's BFS-center id).
    num_partitions:
        Number of partitions (including singletons).
    inter_edge_fraction:
        Measured fraction of undirected edges crossing partitions.
    fraction_bound:
        The theoretical expectation bound: beta for ``variant="min"``,
        2*beta otherwise (Theorem 2; ``min-hybrid``'s dense rounds
        adopt arbitrarily, so it carries the arbitrary rule's bound).
    max_radius / radius_bound:
        Worst vertex-to-center hop distance, and log(n)/beta.
    """

    labels: np.ndarray
    beta: float
    variant: str
    num_partitions: int
    inter_edge_fraction: float
    fraction_bound: float
    max_radius: int
    radius_bound: float

    def partition_sizes(self) -> np.ndarray:
        """Sizes of the partitions, descending."""
        _, counts = np.unique(self.labels, return_counts=True)
        return np.sort(counts)[::-1]


def low_diameter_decomposition(
    graph: CSRGraph,
    beta: float,
    variant: Literal["min", "arb", "arb-hybrid", "min-hybrid"] = "arb",
    seed: int = 1,
    schedule_mode: str = "permutation",
) -> LowDiameterDecomposition:
    """Partition *graph* into low-diameter clusters (Miller-Peng-Xu).

    Each partition has diameter O(log n / beta) w.h.p. and at most
    ``fraction_bound * m`` edges cross partitions in expectation.
    O(m) expected work, O(log^2 n / beta) depth w.h.p.
    """
    if variant not in DECOMP_VARIANTS:
        raise ParameterError(
            f"unknown variant {variant!r}; expected one of {sorted(DECOMP_VARIANTS)}"
        )
    from repro.analysis.stats import partition_radii

    dec = DECOMP_VARIANTS[variant](
        graph, beta, seed=seed, schedule_mode=schedule_mode
    )
    radii = partition_radii(graph, dec.labels)
    m = max(graph.num_edges, 1)
    return LowDiameterDecomposition(
        labels=dec.labels,
        beta=beta,
        variant=variant,
        num_partitions=dec.num_components,
        inter_edge_fraction=(dec.num_inter_directed / 2) / m,
        fraction_bound=beta if variant == "min" else 2.0 * beta,
        max_radius=int(radii.max(initial=0)),
        radius_bound=float(np.log(max(graph.num_vertices, 2)) / beta),
    )
