"""Decomp-Arb: the paper's Algorithm 3 (arbitrary tie-breaking).

The paper's key engineering contribution: when several BFS frontiers
reach the same unvisited vertex in one round, let an *arbitrary* one
win (a bare CAS race) instead of the minimum-shift one.  Theorem 2
shows the decomposition quality only degrades from beta*m to 2*beta*m
expected inter-component edges, so the connectivity algorithm stays
linear-work for beta < 1/2 — and the implementation needs just one
pass over the frontier's edges per round and one machine word of state
per vertex, instead of Decomp-Min's two synchronized passes over a
(delta', component) pair.

As an engine configuration this variant is::

    tie-break = arb (CAS race), direction = always-push

The round kernel itself lives in :func:`repro.engine.kernels.arb_round`
(re-exported here under its historical name); see that docstring for
the vectorized CRCW round semantics.
"""

from __future__ import annotations

from repro.decomp.base import (
    UNVISITED,  # noqa: F401  (historical re-export)
    Decomposition,
    DecompState,
    validate_beta,
)
from repro.engine.core import TraversalEngine
from repro.engine.direction import AlwaysPush
from repro.engine.kernels import arb_round  # noqa: F401  (historical re-export)
from repro.engine.tiebreak import ArbTiebreak
from repro.graphs.csr import CSRGraph

__all__ = ["decomp_arb"]

#: Historical alias; the shared validator lives in
#: :func:`repro.decomp.base.validate_beta`.
_validate_beta = validate_beta


def decomp_arb(
    graph: CSRGraph,
    beta: float,
    seed: int = 1,
    schedule_mode: str = "permutation",
    round_budget=None,
) -> Decomposition:
    """Run Decomp-Arb (Algorithm 3) on *graph*.

    Parameters
    ----------
    beta:
        Decomposition parameter in (0, 1); expected inter-component
        edges <= 2*beta*m (Theorem 2), partition diameter
        O(log n / beta) w.h.p.
    seed:
        Seed for the shift schedule and tie-break draws.
    schedule_mode:
        ``"permutation"`` (the paper's simulation, default) or
        ``"exponential"`` (exact draws).
    round_budget:
        Optional :class:`~repro.resilience.policy.RoundBudget`; the
        default is the generous O(log n / beta)-derived bound.

    Complexity: O(m) expected work, O(log^2 n / beta) depth w.h.p.
    """
    validate_beta(beta)
    state = DecompState(
        graph, beta, seed, schedule_mode,
        budget=round_budget, algorithm="decomp-arb",
    )
    engine = TraversalEngine(
        state,
        direction=AlwaysPush(sparse_phase="bfsMain"),
        tiebreak=ArbTiebreak(),
    )
    engine.run()
    return state.finish()
