"""Decomp-Arb: the paper's Algorithm 3 (arbitrary tie-breaking).

The paper's key engineering contribution: when several BFS frontiers
reach the same unvisited vertex in one round, let an *arbitrary* one
win (a bare CAS race) instead of the minimum-shift one.  Theorem 2
shows the decomposition quality only degrades from beta*m to 2*beta*m
expected inter-component edges, so the connectivity algorithm stays
linear-work for beta < 1/2 — and the implementation needs just one
pass over the frontier's edges per round and one machine word of state
per vertex, instead of Decomp-Min's two synchronized passes over a
(delta', component) pair.

Vectorized round semantics (one CRCW PRAM step batch):

1. ``bfsPre`` — start due centers (``C[v] = v``), append to frontier.
2. ``bfsMain`` — expand frontier edges once:
   * unvisited targets: resolve the CAS race (first winner — one legal
     arbitrary schedule); winners form the next frontier, their
     claiming edges are intra-component and deleted;
   * every other edge (losers included, since the winner's label is
     visible the moment the CAS fails): inter-component iff the
     endpoint labels differ; survivors are recorded as
     ``(C[u], C[w])`` pairs — target already relabeled on the fly, as
     the paper does with the sign-bit trick.
"""

from __future__ import annotations

import math

import numpy as np

from repro.decomp.base import UNVISITED, Decomposition, DecompState
from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.pram.cost import current_tracker
from repro.primitives.atomics import first_winner

__all__ = ["decomp_arb"]


def _validate_beta(beta: float) -> None:
    if not 0.0 < beta < 1.0:
        raise ParameterError(f"beta must be in (0,1), got {beta}")


def arb_round(state: DecompState) -> np.ndarray:
    """One Decomp-Arb BFS round over the current frontier.

    Returns the next frontier (this round's CAS winners).  Mutates
    ``state.C`` and appends surviving inter-edges.
    """
    tracker = current_tracker()
    graph, C = state.graph, state.C
    src, dst = graph.expand(state.frontier)
    state.edges_inspected += int(src.size)
    if src.size == 0:
        tracker.sync()
        return np.zeros(0, dtype=np.int64)
    cu = C[src]
    cw = C[dst]
    tracker.add("gather", work=float(2 * src.size), depth=1.0)

    # CAS races on unvisited targets: one arbitrary winner each.
    unvis = cw == UNVISITED
    unvis_pos = np.flatnonzero(unvis)
    win_local, winners = first_winner(dst[unvis_pos])
    win_pos = unvis_pos[win_local]
    C[winners] = cu[win_pos]
    tracker.add("scatter", work=float(winners.size), depth=1.0)
    state.visited += int(winners.size)

    # All non-winning edges can be classified immediately: the winner's
    # component id is visible to the losers of the race (Algorithm 3
    # lines 16-19), and previously visited targets carry their label.
    is_winner_edge = np.zeros(src.size, dtype=bool)
    is_winner_edge[win_pos] = True
    rest = ~is_winner_edge
    cw_now = C[dst[rest]]
    cu_rest = cu[rest]
    tracker.add("gather", work=float(cu_rest.size), depth=1.0)
    inter = cw_now != cu_rest
    state.keep_inter(
        cu_rest[inter], cw_now[inter], src[rest][inter], dst[rest][inter]
    )
    # End-of-round packing of kept edges / next frontier: O(log n) depth.
    tracker.sync(depth=float(max(1, math.ceil(math.log2(src.size + 1)))))
    return winners


def decomp_arb(
    graph: CSRGraph,
    beta: float,
    seed: int = 1,
    schedule_mode: str = "permutation",
    round_budget=None,
) -> Decomposition:
    """Run Decomp-Arb (Algorithm 3) on *graph*.

    Parameters
    ----------
    beta:
        Decomposition parameter in (0, 1); expected inter-component
        edges <= 2*beta*m (Theorem 2), partition diameter
        O(log n / beta) w.h.p.
    seed:
        Seed for the shift schedule and tie-break draws.
    schedule_mode:
        ``"permutation"`` (the paper's simulation, default) or
        ``"exponential"`` (exact draws).
    round_budget:
        Optional :class:`~repro.resilience.policy.RoundBudget`; the
        default is the generous O(log n / beta)-derived bound.

    Complexity: O(m) expected work, O(log^2 n / beta) depth w.h.p.
    """
    _validate_beta(beta)
    state = DecompState(
        graph, beta, seed, schedule_mode,
        budget=round_budget, algorithm="decomp-arb",
    )
    tracker = current_tracker()
    next_frontier = np.zeros(0, dtype=np.int64)
    while True:
        state.start_new_centers(next_frontier)
        if state.done:
            break
        with tracker.phase("bfsMain"):
            next_frontier = arb_round(state)
        state.round += 1
    return state.finish()
