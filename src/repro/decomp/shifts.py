"""BFS start-time schedules for the Miller-Peng-Xu decomposition.

DECOMP assigns every vertex a shift ``delta_v ~ Exponential(beta)`` and
starts a BFS from each still-unvisited vertex once its start time
arrives; vertex w ends up in the partition of the center u minimizing
the shifted distance ``dist(u, v) - delta_u``.  Operationally (and in
the paper's iteration-indexed description) the BFS of the *largest*
shift starts first and the number of new centers per round grows
geometrically — after t rounds roughly ``e^{beta * t}`` centers are
active, and all n vertices have started within O(log n / beta) rounds
w.h.p.

The paper's §4 simulates the draws with a random permutation: "in each
round adding chunks of vertices starting from the beginning of the
permutation as start centers for new BFS's, where the chunk size grows
exponentially".  This module provides that simulation
(:class:`ShiftSchedule` mode ``"permutation"``) and, as an extension,
the exact-draw schedule (mode ``"exponential"``) that sorts true
exponential variates — the two agree in distribution, which the test
suite checks statistically.

Both modes also draw the per-vertex random integers ``delta'_v`` that
Decomp-Min uses to break same-round ties ("each vertex also draws a
random integer from a large enough range to simulate the fractional
part of its shift value").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.errors import ParameterError
from repro.primitives.rand import (
    exponential_shifts,
    hash_randoms,
    random_permutation,
)
from repro.primitives.sort import radix_argsort
from repro.runtime.context import current_context

__all__ = ["ShiftSchedule", "FRAC_BITS"]

#: Width of the tie-break integers delta'. 30 bits keeps the encoded
#: (priority, payload) pair within the atomics module's 31-bit halves.
FRAC_BITS = 30

ScheduleMode = Literal["permutation", "exponential"]


@dataclass
class ShiftSchedule:
    """Start-time schedule for one DECOMP call.

    Attributes
    ----------
    order:
        All n vertices, in start order: ``order[:cumulative(t)]`` are
        the center *candidates* whose start time has arrived by round t
        (candidates already visited by an earlier BFS do not start).
    frac:
        Per-vertex tie-break integers in ``[0, 2^FRAC_BITS)`` — the
        delta' values; smaller wins a Decomp-Min writeMin race.
    """

    n: int
    beta: float
    seed: int
    mode: ScheduleMode = "permutation"
    order: np.ndarray = field(init=False)
    frac: np.ndarray = field(init=False)
    _cum_by_round: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ParameterError(f"n must be >= 0, got {self.n}")
        if not 0.0 < self.beta < 1.0:
            raise ParameterError(f"beta must be in (0,1), got {self.beta}")
        if self.mode not in ("permutation", "exponential"):
            raise ParameterError(f"unknown schedule mode {self.mode!r}")
        tracker = current_context().tracker
        n = self.n
        self.frac = (
            hash_randoms(n, self.seed, stream=11) >> np.uint64(64 - FRAC_BITS)
        ).astype(np.int64)
        if n == 0:
            self.order = np.zeros(0, dtype=np.int64)
            self._cum_by_round = np.zeros(1, dtype=np.int64)
            return
        if self.mode == "permutation":
            # The paper's simulation: a random permutation supplies the
            # start *order*; chunk sizes follow the exponential
            # order-statistics distribution (growing geometrically with
            # ratio ~e^beta in expectation).  Sampling the sizes from
            # actual draws — rather than using their deterministic
            # expectations — matters for termination of CC at large
            # beta: with fixed chunk sizes a tiny contracted graph can
            # deterministically start *all* its vertices in round 0
            # every iteration and never shrink, whereas sampled sizes
            # escape that fixpoint with constant probability per
            # iteration (and CC reseeds each iteration).
            # stream=13 decorrelates the start order from any other
            # permutation drawn with the same seed (notably a
            # generator's label shuffle, which would otherwise make the
            # first BFS center the relabeled original vertex 0).
            self.order = random_permutation(n, self.seed, stream=13)
            delta = exponential_shifts(n, self.beta, self.seed + 0x9E37)
            start = np.floor(float(delta.max()) - delta).astype(np.int64)
            counts = np.bincount(start)
            self._cum_by_round = np.cumsum(counts).astype(np.int64)
            tracker.add("scan", work=float(n), depth=1.0)
        else:
            # Exact draws: start time of v is (delta_max - delta_v);
            # order vertices by decreasing delta (increasing start time).
            delta = exponential_shifts(n, self.beta, self.seed)
            delta_max = float(delta.max())
            start = delta_max - delta
            # Radix sort on quantized start times (stable, linear work).
            quantized = np.minimum(
                (start * (1 << 16)).astype(np.int64), np.int64(2**62)
            )
            self.order = radix_argsort(quantized)
            starts_sorted = start[self.order]
            max_rounds = int(np.ceil(delta_max)) + 2
            t = np.arange(max_rounds, dtype=np.float64)
            self._cum_by_round = np.searchsorted(
                starts_sorted, t + 1.0, side="left"
            ).astype(np.int64)
            # The true fractional part refines the hash-based tie-break
            # in exact mode (Decomp-Min's priority rule).
            frac_float = start - np.floor(start)
            self.frac = (frac_float * (1 << FRAC_BITS)).astype(np.int64)
            tracker.add("scan", work=float(n), depth=1.0)

    # -- queries -------------------------------------------------------------

    @property
    def max_rounds(self) -> int:
        """Upper bound on rounds before every vertex is a candidate."""
        return int(self._cum_by_round.size)

    def cumulative(self, round_index: int) -> int:
        """Number of candidate centers whose start time is < round+1.

        An armed :class:`~repro.resilience.faults.FaultPlan` with a
        ``shift_perturb`` spec may withhold part of an early round's
        quota — simulating perturbed exponential draws.  The plan only
        perturbs a bounded prefix of rounds, so every vertex is still
        released eventually (the schedule stays a schedule).
        """
        if round_index < 0:
            raise ParameterError(f"round_index must be >= 0, got {round_index}")
        idx = min(round_index, self._cum_by_round.size - 1)
        cum = int(self._cum_by_round[idx])
        plan = current_context().fault_plan
        if plan is not None:
            cum = plan.perturb_cumulative(round_index, cum, self.n)
        return cum

    def new_candidates(self, round_index: int, already: int) -> np.ndarray:
        """Candidates whose start time arrives at *round_index*.

        *already* is the count previously consumed (the caller tracks
        it, mirroring the single shared frontier array of the paper's
        implementation, to which "new BFS centers are simply added to
        the end ... in parallel").
        """
        cum = self.cumulative(round_index)
        return self.order[already:cum]
