"""CONTRACT: collapse decomposition partitions into a contracted graph.

Algorithm 1's second half.  Given the labels a DECOMP call produced and
the surviving inter-component edges (already expressed as label pairs),
this module:

1. counts the components ``k`` and renames the center-id labels to the
   dense range ``[0, k)`` with a prefix sum (the paper's relabeling);
2. removes duplicate inter-component edges with the parallel hash
   table (paper §4: "we use a parallel hash table [55] to remove
   duplicate edges between components");
3. drops singleton components (no incident inter-edges) — "singleton
   vertices are then removed, but their labels are kept" — renaming
   the ``k'`` survivors to ``[0, k')``;
4. builds the contracted CSR graph on those ``k'`` vertices.

The returned mappings are what RELABELUP needs to push labels computed
on the contracted graph back down to the original vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decomp.base import Decomposition
from repro.engine.parallel import context_gather
from repro.errors import GraphFormatError
from repro.graphs.builder import from_directed_edges
from repro.graphs.csr import CSRGraph
from repro.primitives.hashing import HashTable
from repro.primitives.scan import exclusive_scan
from repro.runtime.context import current_context

__all__ = ["Contraction", "contract"]


@dataclass
class Contraction:
    """Output of one contraction step.

    Attributes
    ----------
    graph:
        The contracted graph on the k' non-singleton components
        (symmetric; both orientations of each deduplicated inter-edge).
    vertex_to_component:
        Length-n map from each original vertex to its component id in
        ``[0, k)`` (dense renaming of the DECOMP labels).
    component_to_sub:
        Length-k map from component id to contracted-graph vertex id,
        or -1 for singleton components (which have no inter-edges and
        are finished).
    sub_to_component:
        Length-k' inverse of the non-singleton part.
    num_components:
        k, counting singletons.
    edge_pairs:
        The deduplicated directed component-id edges, as sorted encoded
        keys ``src_comp * k + dst_comp`` — the lookup index for
        representatives.
    rep_src / rep_dst:
        For each entry of *edge_pairs*, the original-graph endpoints of
        one edge realizing that component adjacency.  Used by the
        spanning-forest extraction to pull contracted tree edges back
        down to real edges.
    """

    graph: CSRGraph
    vertex_to_component: np.ndarray
    component_to_sub: np.ndarray
    sub_to_component: np.ndarray
    num_components: int
    edge_pairs: np.ndarray
    rep_src: np.ndarray
    rep_dst: np.ndarray

    def representative_edge(self, src_comp: np.ndarray, dst_comp: np.ndarray):
        """Original (u, w) endpoints realizing each component adjacency.

        Vectorized lookup into the representative index; every queried
        pair must exist in the contracted edge set.
        """
        src_comp = np.asarray(src_comp, dtype=np.int64)
        dst_comp = np.asarray(dst_comp, dtype=np.int64)
        keys = src_comp * np.int64(self.num_components) + dst_comp
        pos = np.searchsorted(self.edge_pairs, keys)
        if pos.size and (
            pos.max(initial=0) >= self.edge_pairs.size
            or not np.array_equal(self.edge_pairs[pos], keys)
        ):
            raise GraphFormatError("queried component pair has no edge")
        return self.rep_src[pos], self.rep_dst[pos]

    @property
    def num_sub_vertices(self) -> int:
        return int(self.sub_to_component.size)

    @property
    def is_base_case(self) -> bool:
        """True when no inter-component edges remain (|E'| = 0)."""
        return self.graph.num_directed == 0


def contract(
    decomposition: Decomposition,
    num_vertices: int,
    remove_duplicates: bool = True,
    dedup_seed: int = 0x5EED,
) -> Contraction:
    """Contract each decomposition partition to a single vertex.

    Parameters
    ----------
    decomposition:
        The DECOMP output (labels + surviving directed label-pair edges).
    num_vertices:
        Vertex count of the decomposed graph (labels' domain).
    remove_duplicates:
        When False, skips the hash-table dedup — the paper notes the
        edge count still drops by a constant factor in expectation
        without it; the ablation bench measures the difference.

    Work O(n + m') expected, depth O(log n) w.h.p., where m' is the
    number of surviving directed edges.
    """
    labels = decomposition.labels
    if labels.shape != (num_vertices,):
        raise GraphFormatError("labels length must equal num_vertices")
    tracker = current_context().tracker

    # --- 1. dense renaming of the component labels (prefix sum). -----
    present = np.zeros(num_vertices, dtype=bool)
    present[labels] = True
    tracker.add("scatter", work=float(num_vertices), depth=1.0)
    rank = exclusive_scan(present.astype(np.int64))
    k = int(rank[-1] + 1) if num_vertices and present[-1] else int(
        rank[-1] if num_vertices else 0
    )
    component_of_center = rank  # valid at positions where present is True
    # The relabel gathers go through context_gather: identical to the
    # plain fancy-index under the serial backends, chunked across the
    # worker pool under the parallel backend (disjoint output slices,
    # so the result is the same array either way).
    vertex_to_component = context_gather(component_of_center, labels)
    tracker.add("gather", work=float(num_vertices), depth=1.0)

    src = context_gather(component_of_center, decomposition.inter_src)
    dst = context_gather(component_of_center, decomposition.inter_dst)
    orig_src = decomposition.orig_src
    orig_dst = decomposition.orig_dst
    tracker.add("gather", work=float(2 * src.size), depth=1.0)

    # --- 2. duplicate-edge removal (parallel hash table). ------------
    # The table's first-inserter-per-key is the representative original
    # edge for that component adjacency (paper footnote 1's converse
    # needs it to pull contracted tree edges back to real edges).
    if src.size and remove_duplicates:
        keys = src * np.int64(k) + dst
        table = HashTable(capacity=keys.size, seed=dedup_seed)
        inserted = table.insert(keys)
        keys = keys[inserted]
        orig_src = orig_src[inserted]
        orig_dst = orig_dst[inserted]
        src = keys // k
        dst = keys % k
        tracker.add("scan", work=float(keys.size), depth=1.0)
    elif src.size:
        keys = src * np.int64(k) + dst
    else:
        keys = np.zeros(0, dtype=np.int64)

    # Sorted representative index for O(log) pair lookups.
    order = np.argsort(keys, kind="stable")
    edge_pairs = keys[order]
    rep_src = orig_src[order] if orig_src.size else orig_src
    rep_dst = orig_dst[order] if orig_dst.size else orig_dst
    tracker.add("sort", work=float(keys.size), depth=1.0)

    # --- 3. drop singletons, rename survivors to [0, k'). ------------
    touched = np.zeros(k, dtype=bool)
    touched[src] = True
    touched[dst] = True
    tracker.add("scatter", work=float(2 * src.size + k), depth=1.0)
    sub_rank = exclusive_scan(touched.astype(np.int64))
    k_prime = int(sub_rank[-1] + 1) if k and touched[-1] else int(
        sub_rank[-1] if k else 0
    )
    component_to_sub = np.where(touched, sub_rank, np.int64(-1))
    sub_to_component = np.flatnonzero(touched).astype(np.int64)

    # --- 4. build the contracted CSR graph. --------------------------
    # The renamed endpoints are in [0, k') by construction, so the fast
    # backend skips re-validating them (and the CSR invariants) at
    # every recursion level; the reference backend re-validates as the
    # historical code did.
    sub_graph = from_directed_edges(
        component_to_sub[src],
        component_to_sub[dst],
        k_prime,
        symmetric=True,
        validate=not current_context().backend.trusted_contraction,
    )
    return Contraction(
        graph=sub_graph,
        vertex_to_component=vertex_to_component,
        component_to_sub=component_to_sub,
        sub_to_component=sub_to_component,
        num_components=k,
        edge_pairs=edge_pairs,
        rep_src=rep_src,
        rep_dst=rep_dst,
    )
