"""Decomp-Min: the paper's Algorithm 2 (faithful Miller-Peng-Xu rule).

The original decomposition: when several BFS frontiers reach the same
unvisited vertex w in one round, the partition whose center has the
*minimum fractional shift* delta' wins — implemented with an atomic
``writeMin`` over (delta', componentID) pairs and therefore requiring
**two** synchronized phases per round:

* **bfsPhase1** — every frontier vertex applies ``writeMin(C[w],
  (delta'_{C2[v]}, C2[v]))`` to its unvisited neighbors; edges to
  already-visited neighbors are classified now (inter iff labels
  differ) and the rest kept provisionally;
* **bfsPhase2** — after a barrier (all writeMins merged), each frontier
  vertex re-reads its provisional edges: if its component's delta' won
  on w, the edge is intra-component and w joins the next frontier (one
  CAS so w is added once); otherwise inter iff the winner's component
  differs.

The paper stores the (conflict-value, componentID) pair in a single
array C of pairs "instead of keeping two arrays ... but this leads to
an additional cache miss per vertex visit"; we mirror that with one
int64 per vertex holding the encoded pair
(:func:`repro.primitives.atomics.encode_pair`), and the benchmark suite
carries an ablation that charges the two-array layout's extra traffic.

The two phases and the extra per-vertex state are exactly the costs
Decomp-Arb removes; the experiments reproduce the resulting 1.3-2.3x
gap (Table 2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.decomp.base import UNVISITED, Decomposition, DecompState
from repro.decomp.decomp_arb import _validate_beta
from repro.decomp.shifts import FRAC_BITS
from repro.graphs.csr import CSRGraph
from repro.pram.cost import current_tracker
from repro.primitives.atomics import decode_pair, encode_pair, first_winner, write_min

__all__ = ["decomp_min"]

#: writeMin identity for the merged (delta', center) pair array.
_PAIR_INF = np.int64((1 << 62) - 1)


def min_round(state: DecompState, pair: np.ndarray) -> np.ndarray:
    """One Decomp-Min round: writeMin phase, barrier, claim phase.

    *pair* is the per-vertex merged (delta', center) writeMin cell
    (the first element of the paper's C pairs); ``state.C`` plays the
    role of the second element (the component id).  Returns the next
    frontier.
    """
    tracker = current_tracker()
    graph, C = state.graph, state.C
    frac = state.schedule.frac

    # ---- Phase 1: writeMin marking + classification of visited targets.
    with tracker.phase("bfsPhase1"):
        src, dst = graph.expand(state.frontier)
        state.edges_inspected += int(src.size)
        if src.size == 0:
            tracker.sync()
            return np.zeros(0, dtype=np.int64)
        cu = C[src]
        cw = C[dst]
        # 3 words per edge: the source's component plus the target's
        # (conflict-value, componentID) *pair* — the extra word per
        # vertex visit the paper's pair layout trades for one fewer
        # cache miss than a two-array layout would cost.
        tracker.add("gather", work=float(3 * src.size), depth=1.0)

        unvis = cw == UNVISITED
        # writeMin((delta'_{C[u]}, C[u])) onto every unvisited target.
        keys = encode_pair(frac[cu[unvis]], cu[unvis])
        write_min(pair, dst[unvis], keys)

        # Edges to visited targets resolve now: inter iff labels differ.
        vis_pos = np.flatnonzero(~unvis)
        inter_vis = cw[vis_pos] != cu[vis_pos]
        keep_pos = vis_pos[inter_vis]
        state.keep_inter(cu[keep_pos], cw[keep_pos], src[keep_pos], dst[keep_pos])
        # Phase-1 output compaction (the paper's in-place E overwrite).
        tracker.sync(depth=float(max(1, math.ceil(math.log2(src.size + 1)))))

    # ---- Phase 2: losers classify, winners claim (one CAS per target).
    with tracker.phase("bfsPhase2"):
        unvis_pos = np.flatnonzero(unvis)
        # The paper's phase 2 re-reads every edge kept by phase 1: the
        # unresolved (unvisited-target) ones — whose merged pair is two
        # words — plus the already-classified inter edges, skipped via
        # their sign bit at unit cost.
        tracker.add(
            "gather",
            work=float(2 * unvis_pos.size + int(inter_vis.sum())),
            depth=1.0,
        )
        if unvis_pos.size == 0:
            tracker.sync()
            return np.zeros(0, dtype=np.int64)
        targets = dst[unvis_pos]
        merged = pair[targets]
        _, winner_center = decode_pair(merged)
        mine = cu[unvis_pos]
        won = winner_center == mine

        # Winning component's vertices race one CAS to add w once.
        win_targets = targets[won]
        first_pos, new_vertices = first_winner(win_targets)
        C[new_vertices] = winner_center[won][first_pos]
        # Mark claimed cells so later writeMins cannot touch them
        # (the paper sets C1[w] = -1; our pair array is per-DECOMP and
        # claimed vertices are excluded by C[w] != UNVISITED instead).
        tracker.add("scatter", work=float(new_vertices.size), depth=1.0)
        state.visited += int(new_vertices.size)

        # Losers: inter-component iff the winner differs (it does, by
        # definition of losing) — matches Algorithm 2 lines 32-35.
        lose_pos = unvis_pos[~won]
        state.keep_inter(
            cu[lose_pos], C[dst[lose_pos]], src[lose_pos], dst[lose_pos]
        )
        tracker.sync(depth=float(max(1, math.ceil(math.log2(src.size + 1)))))
    return new_vertices


def decomp_min(
    graph: CSRGraph,
    beta: float,
    seed: int = 1,
    schedule_mode: str = "permutation",
    round_budget=None,
) -> Decomposition:
    """Run Decomp-Min (Algorithm 2) on *graph*.

    The theory-faithful variant: expected inter-component edges
    <= beta*m, partition diameter O(log n / beta) w.h.p.; O(m) expected
    work, O(log^2 n / beta) depth w.h.p. — at the practical price of
    two synchronized passes per round.  ``round_budget`` optionally
    overrides the default O(log n / beta)-derived round bound.
    """
    _validate_beta(beta)
    state = DecompState(
        graph, beta, seed, schedule_mode,
        budget=round_budget, algorithm="decomp-min",
    )
    tracker = current_tracker()
    with tracker.phase("init"):
        pair = np.full(graph.num_vertices, _PAIR_INF, dtype=np.int64)
        tracker.add("alloc", work=float(graph.num_vertices), depth=1.0)
    next_frontier = np.zeros(0, dtype=np.int64)
    while True:
        state.start_new_centers(next_frontier)
        if state.done:
            break
        next_frontier = min_round(state, pair)
        state.round += 1
    return state.finish()
