"""Decomp-Min: the paper's Algorithm 2 (faithful Miller-Peng-Xu rule).

The original decomposition: when several BFS frontiers reach the same
unvisited vertex w in one round, the partition whose center has the
*minimum fractional shift* delta' wins — implemented with an atomic
``writeMin`` over (delta', componentID) pairs and therefore requiring
**two** synchronized phases per round:

* **bfsPhase1** — every frontier vertex applies ``writeMin(C[w],
  (delta'_{C2[v]}, C2[v]))`` to its unvisited neighbors; edges to
  already-visited neighbors are classified now (inter iff labels
  differ) and the rest kept provisionally;
* **bfsPhase2** — after a barrier (all writeMins merged), each frontier
  vertex re-reads its provisional edges: if its component's delta' won
  on w, the edge is intra-component and w joins the next frontier (one
  CAS so w is added once); otherwise inter iff the winner's component
  differs.

The paper stores the (conflict-value, componentID) pair in a single
array C of pairs "instead of keeping two arrays ... but this leads to
an additional cache miss per vertex visit"; we mirror that with one
int64 per vertex holding the encoded pair
(:func:`repro.primitives.atomics.encode_pair`), and the benchmark suite
carries an ablation that charges the two-array layout's extra traffic.

The two phases and the extra per-vertex state are exactly the costs
Decomp-Arb removes; the experiments reproduce the resulting 1.3-2.3x
gap (Table 2).

As an engine configuration this variant is::

    tie-break = min (writeMin pairs), direction = always-push

The round kernel lives in :func:`repro.engine.kernels.min_round`
(re-exported here under its historical name); the writeMin pair array
is owned by :class:`repro.engine.tiebreak.MinTiebreak`.
"""

from __future__ import annotations

from repro.decomp.base import (
    UNVISITED,  # noqa: F401  (historical re-export)
    Decomposition,
    DecompState,
    validate_beta,
)
from repro.engine.core import TraversalEngine
from repro.engine.direction import AlwaysPush
from repro.engine.kernels import (  # noqa: F401  (historical re-exports)
    _PAIR_INF,
    min_round,
)
from repro.engine.tiebreak import MinTiebreak
from repro.graphs.csr import CSRGraph

__all__ = ["decomp_min"]


def decomp_min(
    graph: CSRGraph,
    beta: float,
    seed: int = 1,
    schedule_mode: str = "permutation",
    round_budget=None,
) -> Decomposition:
    """Run Decomp-Min (Algorithm 2) on *graph*.

    The theory-faithful variant: expected inter-component edges
    <= beta*m, partition diameter O(log n / beta) w.h.p.; O(m) expected
    work, O(log^2 n / beta) depth w.h.p. — at the practical price of
    two synchronized passes per round.  ``round_budget`` optionally
    overrides the default O(log n / beta)-derived round bound.
    """
    validate_beta(beta)
    state = DecompState(
        graph, beta, seed, schedule_mode,
        budget=round_budget, algorithm="decomp-min",
    )
    engine = TraversalEngine(
        state,
        direction=AlwaysPush(),
        tiebreak=MinTiebreak(),
    )
    engine.run()
    return state.finish()
