"""ResilientRunner: retries, verification gating, graceful degradation.

Wraps the runtime layer's
:func:`~repro.runtime.session.execute_profiled` so one crash,
pathological seed, runaway loop, or injected mid-run fault no longer
loses a sweep:

* **per-cell retry** under a :class:`~repro.resilience.policy.
  RetryPolicy` — each attempt rotates the seed and charges exponential
  backoff in simulated cost to the eventual winner's profile (phase
  ``"resilience"``, kind ``"seq"``), so retried cells are visibly more
  expensive in the reported timings;
* **post-run verification gating** — every labeling is checked with
  :func:`~repro.analysis.verify.verify_labeling` *before* a cell is
  accepted, converting silent corruption into a retryable failure;
* **graceful degradation** — when an algorithm exhausts its attempts,
  the runner walks a configurable fallback chain (default:
  :data:`repro.experiments.registry.FALLBACK_CHAINS`, e.g.
  ``decomp-arb-hybrid-CC -> decomp-arb-CC -> serial-SF``) so the sweep
  degrades to a slower-but-sound implementation instead of dying;
* **structured failure log** — every failed attempt is a
  :class:`FailureRecord`; the log rides along in sweep artifacts (see
  :func:`repro.experiments.export.export_resilient_table2`) so an
  artifact records exactly how many retries each cell needed;
* **checkpoint/resume** — :meth:`ResilientRunner.run_table2` records
  each finished cell into a :class:`~repro.resilience.checkpoint.
  SweepCheckpoint`; an interrupted sweep resumed from the checkpoint
  recomputes nothing already recorded and reproduces the uninterrupted
  output (simulated values are pure functions of the inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.verify import verify_labeling
from repro.errors import ReproError, ResilienceExhaustedError
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import RetryPolicy

__all__ = ["FailureRecord", "CellOutcome", "ResilientRunner"]


@dataclass
class FailureRecord:
    """One failed attempt at one sweep cell."""

    algorithm: str
    graph: str
    attempt: int
    seed: int
    error_type: str
    message: str
    reason: Optional[str] = None
    action: str = "retry"  # "retry" | "fallback" | "gave-up"

    def to_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "graph": self.graph,
            "attempt": self.attempt,
            "seed": self.seed,
            "error_type": self.error_type,
            "message": self.message,
            "reason": self.reason,
            "action": self.action,
        }


@dataclass
class CellOutcome:
    """One successfully produced sweep cell."""

    profile: object  # RunProfile
    requested: str
    algorithm: str  # implementation that actually produced the labeling
    attempts: int
    failures: List[FailureRecord] = field(default_factory=list)
    from_checkpoint: bool = False

    @property
    def degraded(self) -> bool:
        return self.algorithm != self.requested


def _algo_kwargs(algorithm: str, beta: float, seed: int, extra: Mapping) -> dict:
    """Keyword arguments *algorithm* accepts (decomp variants take beta/seed)."""
    if algorithm.startswith("decomp-"):
        return {"beta": beta, "seed": seed, **extra}
    return {}


class ResilientRunner:
    """Run sweep cells with retry, verification, fallback and checkpointing.

    Parameters
    ----------
    retry:
        The per-algorithm retry policy (default: 3 attempts with seed
        rotation and exponential simulated backoff).
    fallbacks:
        ``{algorithm: [fallback, ...]}`` degradation chains; defaults
        to :data:`repro.experiments.registry.FALLBACK_CHAINS`.  Pass
        ``{}`` to disable degradation.
    checkpoint:
        Optional :class:`SweepCheckpoint`; grid sweeps record each
        finished cell into it and skip already-recorded cells.
    verify:
        Gate every accepted labeling through ``verify_labeling``.
    fault_plan:
        Optional :class:`FaultPlan` activated around each attempt
        (testing / chaos-engineering hook; the plan's ``sabotage_runs``
        bounds how many attempts it corrupts).
    workers:
        Thread count bound into every attempt's execution context (the
        chunked ``parallel`` backend's pool width; serial backends
        ignore it).  ``None`` (default) inherits the ambient context's
        count at each attempt.
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        fallbacks: Optional[Mapping[str, Sequence[str]]] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
        verify: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        workers: Optional[int] = None,
    ) -> None:
        if fallbacks is None:
            from repro.experiments.registry import FALLBACK_CHAINS

            fallbacks = FALLBACK_CHAINS
        self.retry = retry if retry is not None else RetryPolicy()
        self.fallbacks = {k: list(v) for k, v in fallbacks.items()}
        self.checkpoint = checkpoint
        self.verify = verify
        self.fault_plan = fault_plan
        #: None inherits the ambient context's worker count per attempt.
        self.workers = None if workers is None else max(1, int(workers))
        #: Every failed attempt across this runner's lifetime.
        self.failure_log: List[FailureRecord] = []
        #: Cells actually computed (excludes checkpoint replays).
        self.cells_computed = 0

    # -- single cell -------------------------------------------------------

    def run_cell(
        self,
        algorithm: str,
        graph,
        graph_name: str = "?",
        beta: float = 0.2,
        seed: int = 1,
        **extra,
    ) -> CellOutcome:
        """Produce one verified cell, retrying and degrading as needed.

        Raises :class:`ResilienceExhaustedError` when the requested
        algorithm *and* every fallback exhaust their attempts.
        """
        from repro.runtime.context import current_context
        from repro.runtime.session import execute_profiled

        metrics = current_context().metrics
        chain = [algorithm, *self.fallbacks.get(algorithm, [])]
        failures: List[FailureRecord] = []
        attempts = 0
        backoff = 0.0
        for chain_pos, algo in enumerate(chain):
            for attempt in self.retry.attempts():
                attempts += 1
                metrics.incr("resilience.attempts")
                attempt_seed = self.retry.seed_for(seed, attempt)
                backoff += self.retry.backoff_cost(attempt)
                try:
                    prof = execute_profiled(
                        algo,
                        graph,
                        graph_name=graph_name,
                        verify=False,
                        fault_plan=self.fault_plan,
                        workers=self.workers,
                        **_algo_kwargs(algo, beta, attempt_seed, extra),
                    )
                    if self.verify:
                        verify_labeling(graph, prof.result.labels)
                except ReproError as exc:
                    # Only the package's own failure hierarchy is
                    # retryable: a ConvergenceError, VerificationError,
                    # or SanitizerError means *this run* went bad, and a
                    # rotated seed or a fallback algorithm can recover.
                    # Anything else (TypeError, MemoryError, ...) is a
                    # bug or an environment failure — retrying would
                    # mask it, so it propagates with its traceback.
                    last_in_chain = chain_pos == len(chain) - 1
                    last_attempt = attempt == self.retry.max_attempts - 1
                    record = FailureRecord(
                        algorithm=algo,
                        graph=graph_name,
                        attempt=attempt,
                        seed=attempt_seed,
                        error_type=type(exc).__name__,
                        message=str(exc),
                        reason=getattr(exc, "reason", None),
                        action=(
                            "gave-up"
                            if last_in_chain and last_attempt
                            else "fallback"
                            if last_attempt
                            else "retry"
                        ),
                    )
                    failures.append(record)
                    self.failure_log.append(record)
                    metrics.incr(f"resilience.{record.action}")
                    continue
                if backoff:
                    # The retries' penalty lands in the winner's profile
                    # so degraded cells report honestly slower times.
                    with prof.tracker.phase("resilience"):
                        prof.tracker.add("seq", work=backoff, depth=1.0)
                self.cells_computed += 1
                metrics.incr("resilience.cells")
                return CellOutcome(
                    profile=prof,
                    requested=algorithm,
                    algorithm=algo,
                    attempts=attempts,
                    failures=failures,
                )
        raise ResilienceExhaustedError(
            f"{algorithm} on {graph_name}: all {attempts} attempts across "
            f"chain {chain} failed "
            f"(last: {failures[-1].error_type}: {failures[-1].message})",
            failures=failures,
        )

    # -- whole sweep -------------------------------------------------------

    def run_table2(
        self,
        scale: str = "small",
        graphs=None,
        algorithms: Optional[Sequence[str]] = None,
        beta: float = 0.2,
        seed: int = 1,
    ) -> Dict[str, object]:
        """Resilient Table 2 sweep with per-cell checkpointing.

        Returns ``{"table", "attempts", "resolved", "failures"}`` where
        ``table`` is shape-compatible with
        :func:`repro.experiments.tables.run_table2` (extra per-cell
        keys ``attempts``/``algorithm`` ride along), ``resolved`` maps
        each cell to the implementation that actually produced it, and
        ``failures`` is the structured failure log.
        """
        from repro.experiments.registry import TABLE2_ALGORITHM_ORDER, build_suite
        from repro.runtime.context import current_context

        metrics = current_context().metrics
        graphs = graphs if graphs is not None else build_suite(scale)
        algorithms = list(algorithms) if algorithms else TABLE2_ALGORITHM_ORDER
        table: Dict[str, Dict[str, dict]] = {}
        attempts: Dict[str, Dict[str, int]] = {}
        resolved: Dict[str, Dict[str, str]] = {}
        failures: List[Dict[str, object]] = []
        for algo in algorithms:
            table[algo] = {}
            attempts[algo] = {}
            resolved[algo] = {}
            for gname, graph in graphs.items():
                if self.checkpoint is not None and self.checkpoint.has(algo, gname):
                    cell = dict(self.checkpoint.get(algo, gname))
                    metrics.incr("resilience.checkpoint.hit")
                else:
                    outcome = self.run_cell(
                        algo, graph, graph_name=gname, beta=beta, seed=seed
                    )
                    prof = outcome.profile
                    cell = {
                        "1": prof.seconds_at(1),
                        "40h": prof.seconds_at("40h"),
                        "wall": prof.wall_seconds,
                        "components": float(prof.result.num_components),
                        "attempts": outcome.attempts,
                        "algorithm": outcome.algorithm,
                        "failures": [r.to_dict() for r in outcome.failures],
                    }
                    if self.checkpoint is not None:
                        self.checkpoint.record(algo, gname, cell)
                        metrics.incr("resilience.checkpoint.record")
                table[algo][gname] = cell
                attempts[algo][gname] = int(cell.get("attempts", 1))
                resolved[algo][gname] = str(cell.get("algorithm", algo))
                failures.extend(cell.get("failures", []))
        return {
            "table": table,
            "attempts": attempts,
            "resolved": resolved,
            "failures": failures,
        }
