"""Retry and round-budget policies for the resilient experiment stack.

Two small, deterministic policy objects:

* :class:`RetryPolicy` — how a failed (algorithm x graph) cell is
  re-attempted: a bounded number of attempts, *seed rotation* so a
  pathological random schedule is not replayed verbatim, and an
  exponential backoff charged in **simulated cost units** (this package
  executes on a simulated machine, so the penalty for retrying shows up
  where everything else does: in the work/depth profile, not in
  ``time.sleep``).
* :class:`RoundBudget` — an explicit bound on an iterative algorithm's
  rounds.  Fixed-point loops check it each round and convert a runaway
  loop into a structured :class:`~repro.errors.ConvergenceError`
  carrying ``(algorithm, rounds_used, budget)`` — the signal the
  :class:`~repro.resilience.runner.ResilientRunner` retries on.

The decomposition default budget is ``DECOMP_ROUND_FACTOR *
(log2(n) + 1) / beta + DECOMP_ROUND_SLACK`` rounds — a generous
multiple of the paper's O(log n / beta) w.h.p. round bound (see
``docs/cost_model.md``), so it never trips on healthy runs yet turns a
non-terminating loop (a bug, or an injected scheduling fault) into a
diagnosable error within a bounded factor of the honest running time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConvergenceError, ParameterError

__all__ = [
    "RetryPolicy",
    "RoundBudget",
    "DECOMP_ROUND_FACTOR",
    "DECOMP_ROUND_SLACK",
    "DEFAULT_SEED_STRIDE",
]

#: Multiplier over the theoretical O(log n / beta) decomposition round
#: bound.  The expected max shift is ~ln(n)/beta and BFS extends past it
#: by the max partition radius (same order), so honest runs stay well
#: under 8x the bound.
DECOMP_ROUND_FACTOR = 8

#: Additive slack so tiny graphs (where log2(n) ~ 1) keep headroom.
DECOMP_ROUND_SLACK = 32

#: Default seed-rotation stride: a prime far from the generators' own
#: stream constants, so per-attempt streams never collide with the
#: per-iteration streams ``decomp_cc`` derives (1000003 * iteration).
DEFAULT_SEED_STRIDE = 7919


@dataclass(frozen=True)
class RetryPolicy:
    """How one failed cell is re-attempted.

    Attributes
    ----------
    max_attempts:
        Total attempts per algorithm (first try included); must be >= 1.
    backoff_base:
        Simulated cost units (charged as sequential work to the winning
        profile's tracker) for the first retry.
    backoff_factor:
        Multiplier per further retry (exponential backoff).
    seed_stride:
        Added to the base seed once per attempt — attempt ``a`` runs
        with ``seed + a * seed_stride``, so a seed that tickles a
        pathological schedule is rotated away instead of replayed.
    """

    max_attempts: int = 3
    backoff_base: float = 1024.0
    backoff_factor: float = 2.0
    seed_stride: int = DEFAULT_SEED_STRIDE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ParameterError(
                "backoff_base must be >= 0 and backoff_factor >= 1, got "
                f"{self.backoff_base}, {self.backoff_factor}"
            )

    def attempts(self) -> Iterator[int]:
        """Attempt indices ``0 .. max_attempts-1``."""
        return iter(range(self.max_attempts))

    def seed_for(self, base_seed: int, attempt: int) -> int:
        """The rotated seed for *attempt* (attempt 0 keeps the base seed)."""
        return base_seed + attempt * self.seed_stride

    def backoff_cost(self, attempt: int) -> float:
        """Simulated-cost penalty charged before *attempt* (0 for the first)."""
        if attempt <= 0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class RoundBudget:
    """An explicit round bound for one iterative algorithm run.

    Loops call :meth:`check` once per round; exceeding the budget
    raises a structured :class:`~repro.errors.ConvergenceError`.
    """

    max_rounds: int
    algorithm: str = "?"

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ParameterError(f"max_rounds must be >= 1, got {self.max_rounds}")

    @classmethod
    def for_decomposition(
        cls, n: int, beta: float, algorithm: str = "decomp"
    ) -> "RoundBudget":
        """The default DECOMP budget: generous over O(log n / beta)."""
        bound = DECOMP_ROUND_FACTOR * (math.log2(n + 2) + 1.0) / max(beta, 1e-9)
        return cls(
            max_rounds=int(math.ceil(bound)) + DECOMP_ROUND_SLACK,
            algorithm=algorithm,
        )

    def check(self, rounds_used: int) -> None:
        """Raise :class:`ConvergenceError` if *rounds_used* exceeds the budget."""
        if rounds_used > self.max_rounds:
            raise ConvergenceError(
                algorithm=self.algorithm,
                rounds_used=rounds_used,
                budget=self.max_rounds,
            )

    def remaining(self, rounds_used: int) -> int:
        """Rounds left before :meth:`check` trips (clamped at 0)."""
        return max(0, self.max_rounds - rounds_used)
