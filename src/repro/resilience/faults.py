"""Deterministic mid-run fault injection for the connectivity stack.

The seed's failure-injection tests only cover *malformed inputs*; this
module attacks the algorithms **while they run**, the adversarial
treatment Liu-Tarjan argue concurrent labeling algorithms need: their
correctness under arbitrary schedules must be checked, not assumed.
A :class:`FaultPlan` is a seeded, reproducible schedule of corruptions
over four classes, each hooked at the layer where the real concurrency
hazard lives:

``cas_flip``
    Flip the winner of a simulated CAS race
    (:func:`repro.primitives.atomics.first_winner`) from the first
    contender to the *last* — another legal arbitrary-CRCW schedule.
    Provably benign: every labeling produced under any flip pattern
    must still verify (and the fault-matrix tests prove it does).
``drop_frontier``
    Silently remove vertices from a decomposition BFS frontier
    (:meth:`repro.decomp.base.DecompState.start_new_centers`).  A
    dropped vertex keeps its label but never expands, so its edges are
    never classified — lost connectivity the verifier must catch.
``shift_perturb``
    Perturb the exponential-shift start schedule
    (:meth:`repro.decomp.shifts.ShiftSchedule.cumulative`) by holding
    back a fraction of each early round's new centers.  Benign for
    correctness (any start schedule yields a valid decomposition) but
    degrades round counts — the stressor for :class:`RoundBudget`.
``label_corrupt``
    Overwrite a visited vertex's component label mid-round with another
    visited vertex's label (labels stay legal vertex ids, so the
    corruption survives contraction instead of crashing early).
    Merges partitions that may lie in different true components — the
    verifier's partition-equality check must catch it.

Plans are **armed for a bounded number of runs** (default 1): the
sabotaged attempt fails, the :class:`~repro.resilience.runner.
ResilientRunner` retries, and the retry executes clean — exactly the
recover-under-fault behavior the acceptance tests exercise.  All
randomness is drawn from a per-run ``numpy`` generator seeded with
``(seed, run_index)``, so a plan is bit-reproducible.

Hooks cost nothing when no plan is active (a single ``None`` check):
the armed plan rides in the
:class:`~repro.runtime.context.ExecutionContext` and production code
reads ``current_context().fault_plan`` once per round.
:func:`active_fault_plan` survives as a deprecated shim.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FaultSpecError

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "active_fault_plan",
    "parse_fault_plan",
]

#: The corruption classes a plan may schedule.
FAULT_KINDS: Tuple[str, ...] = (
    "cas_flip",
    "drop_frontier",
    "shift_perturb",
    "label_corrupt",
)

#: shift_perturb only withholds centers during this many initial rounds,
#: guaranteeing every vertex is eventually released (termination).
_PERTURB_ROUND_LIMIT = 8


@dataclass
class FaultSpec:
    """One scheduled corruption.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Per-opportunity firing probability for the random modes
        (ignored when explicit targets are given).
    vertices:
        Explicit victim vertices (``drop_frontier``: dropped whenever
        they appear on a frontier; ``label_corrupt``: the vertex whose
        label is overwritten).
    label_from:
        ``label_corrupt`` only — the victim adopts ``C[label_from]``
        (another vertex's *current* label), keeping the corrupt label a
        live partition id.  ``None`` picks a random visited vertex.
    rounds:
        Restrict firing to these BFS round indices (``None`` = any).
    max_fires:
        Stop firing after this many triggers (targeted corruptions
        default to firing once so tests are exactly reproducible).
    holdback:
        ``shift_perturb`` only — fraction of each early round's center
        quota withheld.
    """

    kind: str
    probability: float = 1.0
    vertices: Optional[Sequence[int]] = None
    label_from: Optional[int] = None
    rounds: Optional[Sequence[int]] = None
    max_fires: int = 1_000_000_000
    holdback: float = 0.5
    _fires: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if not 0.0 <= self.holdback <= 1.0:
            raise FaultSpecError(
                f"shift_perturb holdback must be in [0, 1], got {self.holdback}"
            )

    def applies(self, round_index: Optional[int]) -> bool:
        """Is this spec still live, and scheduled for *round_index*?"""
        if self._fires >= self.max_fires:
            return False
        if self.rounds is not None and round_index is not None:
            return round_index in self.rounds
        return True

    def fired(self, times: int = 1) -> None:
        self._fires += times

    def reset(self) -> None:
        self._fires = 0


class FaultPlan:
    """A reproducible schedule of mid-run corruptions.

    Activate around one algorithm run with :meth:`activate`; the
    production hooks (:func:`active_fault_plan` call sites) consult the
    innermost active plan.  The plan sabotages its first
    ``sabotage_runs`` activations and is inert afterwards, so a retry
    loop observes fail-then-recover.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        seed: int = 0,
        sabotage_runs: int = 1,
    ) -> None:
        self.specs = list(specs)
        self.seed = int(seed)
        self.sabotage_runs = int(sabotage_runs)
        self.run_index = 0
        #: Log of fired corruptions: {kind, run, round, detail} dicts,
        #: surfaced by the runner's failure log and the CLI.
        self.fired: List[Dict[str, object]] = []
        self._rng = np.random.default_rng(self.seed)
        self._active_depth = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(
        cls, spec: str, seed: int = 0, sabotage_runs: int = 1
    ) -> "FaultPlan":
        """Parse a CLI spec string into a plan.

        Grammar: ``kind[:key=value[,key=value...]]`` joined by ``;``.
        List values use ``|`` separators.  Examples::

            cas_flip:p=0.5
            drop_frontier:vertices=10|11
            label_corrupt:vertex=3,label_from=40
            shift_perturb:holdback=0.8;cas_flip
        """
        specs: List[FaultSpec] = []
        for clause in filter(None, (c.strip() for c in spec.split(";"))):
            kind, _, argstr = clause.partition(":")
            kind = kind.strip()
            kwargs: Dict[str, object] = {}
            for item in filter(None, (a.strip() for a in argstr.split(","))):
                key, sep, value = item.partition("=")
                if not sep:
                    raise FaultSpecError(
                        f"fault option {item!r} is not key=value (in {clause!r})"
                    )
                key = key.strip()
                value = value.strip()
                try:
                    if key in ("p", "probability"):
                        kwargs["probability"] = float(value)
                    elif key == "holdback":
                        kwargs["holdback"] = float(value)
                    elif key in ("vertex", "vertices"):
                        kwargs["vertices"] = [int(v) for v in value.split("|")]
                    elif key == "label_from":
                        kwargs["label_from"] = int(value)
                    elif key in ("round", "rounds"):
                        kwargs["rounds"] = [int(v) for v in value.split("|")]
                    elif key == "max_fires":
                        kwargs["max_fires"] = int(value)
                    else:
                        raise FaultSpecError(
                            f"unknown fault option {key!r} (in {clause!r})"
                        )
                except ValueError as exc:
                    raise FaultSpecError(
                        f"bad value for fault option {key!r}: {value!r}"
                    ) from exc
            specs.append(FaultSpec(kind=kind, **kwargs))  # type: ignore[arg-type]
        if not specs:
            raise FaultSpecError(f"empty fault spec {spec!r}")
        return cls(specs, seed=seed, sabotage_runs=sabotage_runs)

    def describe(self) -> str:
        """One-line human summary for logs and the CLI."""
        parts = []
        for s in self.specs:
            bits = [s.kind]
            if s.vertices is not None:
                bits.append(f"vertices={list(s.vertices)}")
            elif s.probability < 1.0:
                bits.append(f"p={s.probability}")
            parts.append(" ".join(bits))
        return (
            f"FaultPlan(seed={self.seed}, sabotage_runs={self.sabotage_runs}: "
            + "; ".join(parts)
            + ")"
        )

    # -- activation --------------------------------------------------------

    @property
    def armed(self) -> bool:
        """True while an activation that should sabotage is in progress."""
        return self._active_depth > 0 and self.run_index <= self.sabotage_runs

    @contextlib.contextmanager
    def activate(self) -> Iterator["FaultPlan"]:
        """Arm the plan for one run (reproducible per-run RNG stream).

        Arming installs the plan on a derived
        :class:`~repro.runtime.context.ExecutionContext`, so it is
        exception-safe and scoped to the calling thread/task.
        """
        from repro.runtime.context import current_context

        self.run_index += 1
        self._rng = np.random.default_rng((self.seed, self.run_index))
        for s in self.specs:
            s.reset()
        self._active_depth += 1
        try:
            with current_context().child(fault_plan=self).activate():
                yield self
        finally:
            self._active_depth -= 1

    def _live(self, kind: str, round_index: Optional[int] = None) -> List[FaultSpec]:
        if not self.armed:
            return []
        return [s for s in self.specs if s.kind == kind and s.applies(round_index)]

    def _record(self, kind: str, round_index: Optional[int], **detail: object) -> None:
        self.fired.append(
            {"kind": kind, "run": self.run_index, "round": round_index, **detail}
        )
        from repro.runtime.context import current_context

        current_context().metrics.incr(f"faults.{kind}")

    # -- hooks (called from production code) -------------------------------

    def perturb_cas(
        self, idx: np.ndarray, positions: np.ndarray, dests: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flip CAS winners to the *last* contender per destination.

        *idx* is the raw destination stream of the race; *positions*
        the first-occurrence winners :func:`first_winner` chose.  The
        flip stays within the set of legal contenders, so the result is
        just a different arbitrary-CRCW schedule.
        """
        specs = self._live("cas_flip")
        if not specs or dests.size == 0:
            return positions, dests
        # Last occurrence of each destination in the batch.
        rev_dests, rev_index = np.unique(idx[::-1], return_index=True)
        last = np.int64(idx.shape[0] - 1) - rev_index
        # np.unique sorts, so rev_dests == dests and rows align.
        contested = last != positions
        new_positions = positions
        total = 0
        for s in specs:
            flip = contested & (self._rng.random(dests.size) < s.probability)
            new_positions = np.where(flip, last, new_positions)
            fired = int(flip.sum())
            if fired:
                s.fired(fired)
                total += fired
        if total:
            self._record("cas_flip", None, flips=total)
        return new_positions.astype(np.int64, copy=False), dests

    def filter_frontier(
        self, frontier: np.ndarray, round_index: int
    ) -> np.ndarray:
        """Drop scheduled / randomly selected vertices from a BFS frontier."""
        specs = self._live("drop_frontier", round_index)
        if not specs or frontier.size == 0:
            return frontier
        keep = np.ones(frontier.size, dtype=bool)
        for s in specs:
            if s.vertices is not None:
                hit = np.isin(frontier, np.asarray(list(s.vertices)))
            else:
                hit = self._rng.random(frontier.size) < s.probability
            fired = int((hit & keep).sum())
            if fired:
                keep &= ~hit
                s.fired(fired)
                self._record(
                    "drop_frontier",
                    round_index,
                    dropped=[int(v) for v in frontier[hit][:16]],
                )
        return frontier[keep]

    def perturb_cumulative(self, round_index: int, cum: int, n: int) -> int:
        """Withhold part of an early round's center quota (shift_perturb)."""
        if round_index >= _PERTURB_ROUND_LIMIT:
            return cum
        specs = self._live("shift_perturb", round_index)
        out = cum
        for s in specs:
            held = int(out * s.holdback)
            if held:
                out -= held
                s.fired()
                self._record("shift_perturb", round_index, held_back=held)
        return max(0, min(out, n))

    def corrupt_labels(
        self, C: np.ndarray, round_index: int, unvisited_sentinel: int
    ) -> None:
        """Overwrite visited vertices' labels in place (label_corrupt).

        Only already-visited vertices are touched (an unvisited vertex
        acquiring a label would desynchronize the visited counter and
        stall termination — we corrupt state, not the host loop), and
        the corrupt value is always another vertex's *current* label,
        so it stays a legal id for contraction.
        """
        specs = self._live("label_corrupt", round_index)
        if not specs:
            return
        visited = np.flatnonzero(C != unvisited_sentinel)
        if visited.size < 2:
            return
        for s in specs:
            if s.vertices is not None:
                victims = [
                    v
                    for v in s.vertices
                    if 0 <= v < C.size and C[v] != unvisited_sentinel
                ]
            else:
                fire = self._rng.random() < s.probability
                victims = (
                    [int(self._rng.choice(visited))] if fire else []
                )
            for v in victims:
                if s.label_from is not None:
                    src = s.label_from
                    if not (0 <= src < C.size) or C[src] == unvisited_sentinel:
                        continue  # source not visited yet; try a later round
                else:
                    src = int(self._rng.choice(visited))
                if src == v:
                    continue
                old = int(C[v])
                C[v] = C[src]
                s.fired()
                self._record(
                    "label_corrupt",
                    round_index,
                    vertex=int(v),
                    old_label=old,
                    new_label=int(C[src]),
                )


def active_fault_plan() -> Optional[FaultPlan]:
    """Deprecated: the execution context's fault plan (or ``None``).

    Shim kept for downstream compatibility; new code reads
    ``repro.runtime.current_context().fault_plan``.  Warns once per
    process.
    """
    from repro.runtime.context import current_context, warn_deprecated_accessor

    warn_deprecated_accessor(
        "repro.resilience.faults.active_fault_plan",
        "current_context().fault_plan",
    )
    return current_context().fault_plan


def parse_fault_plan(
    spec: Optional[str], seed: int = 0, sabotage_runs: int = 1
) -> Optional[FaultPlan]:
    """CLI-facing convenience: ``None``/empty spec means no plan."""
    if not spec:
        return None
    return FaultPlan.parse(spec, seed=seed, sabotage_runs=sabotage_runs)
