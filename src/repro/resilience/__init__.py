"""Resilience layer: retry policies, checkpoints, fault injection.

The machinery that turns the experiment stack from
crash-loses-everything into a production-shaped pipeline:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy` (seed-rotating
  retries with simulated-cost backoff) and :class:`RoundBudget`
  (structured :class:`~repro.errors.ConvergenceError` on runaway loops);
* :mod:`repro.resilience.checkpoint` — atomic, versioned sweep
  checkpoints for kill-and-resume grid runs;
* :mod:`repro.resilience.faults` — deterministic mid-run fault
  injection (CAS flips, dropped frontier entries, shift perturbation,
  label corruption);
* :mod:`repro.resilience.runner` — :class:`ResilientRunner`, wiring
  retry + verification gating + graceful degradation + checkpointing
  around :func:`repro.experiments.harness.profile_run`.

``runner`` is re-exported lazily: the low-level modules here are
imported by the primitives/decomp layers (fault hooks, round budgets),
while the runner sits *above* the experiments layer — eager import
would be circular.
"""

from repro.resilience.checkpoint import CHECKPOINT_VERSION, SweepCheckpoint, cell_key
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    parse_fault_plan,
)
from repro.resilience.policy import (
    DECOMP_ROUND_FACTOR,
    DECOMP_ROUND_SLACK,
    RetryPolicy,
    RoundBudget,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CellOutcome",
    "DECOMP_ROUND_FACTOR",
    "DECOMP_ROUND_SLACK",
    "FAULT_KINDS",
    "FailureRecord",
    "FaultPlan",
    "FaultSpec",
    "ResilientRunner",
    "RetryPolicy",
    "RoundBudget",
    "SweepCheckpoint",
    "active_fault_plan",
    "cell_key",
    "parse_fault_plan",
]

_LAZY = {"ResilientRunner", "CellOutcome", "FailureRecord"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.resilience import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
