"""Atomic, versioned sweep checkpoints: resume a killed grid run.

The Figure 2 / Table 2 grids are hours of simulated-machine cells at
paper scale; one crash must not lose the completed prefix.  A
:class:`SweepCheckpoint` records each finished (algorithm x graph x
trial) cell as JSON and rewrites the file **atomically** (temp file +
``os.replace``, via :mod:`repro.fsutil`) after every cell, so a kill at
any instant leaves either the previous consistent checkpoint or the
new one — never a torn file.

The file carries a format ``version``, the sweep's identifying
``meta`` (scale, beta, seed, ...) and a SHA-256 ``checksum`` over its
own content.  Resuming validates all three: a version this code does
not understand, or a meta mismatch (resuming a ``beta=0.2`` sweep with
``--beta 0.5``) raises :class:`~repro.errors.CheckpointError` instead
of silently mixing incompatible cells, and a checksum mismatch marks
the file as corrupt.  Each save also rotates the previous file to a
``.bak`` sibling, so when the main file is corrupt (truncated by a
full disk, chewed by an editor, bit-flipped) :meth:`SweepCheckpoint.load`
falls back to the last intact version with a warning — only when both
copies are unusable does it raise.  Because every simulated quantity
in this package is a pure function of (algorithm, graph, seed),
replaying the checkpointed cells verbatim reproduces the uninterrupted
run's output exactly (the wall-clock field is the single
nondeterministic extra, and it is carried *from the checkpoint*, not
re-measured).
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import CheckpointError
from repro.fsutil import atomic_write_text

__all__ = ["SweepCheckpoint", "CHECKPOINT_VERSION", "backup_path", "cell_key"]

#: Bump when the on-disk layout changes incompatibly.  Version 1 files
#: (no checksum) are still accepted on load.
CHECKPOINT_VERSION = 2

PathLike = Union[str, os.PathLike]


def backup_path(path: PathLike) -> Path:
    """The ``.bak`` sibling a checkpoint rotates to on each save."""
    p = Path(path)
    return p.with_name(p.name + ".bak")


def _body_checksum(body: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON of the checkpoint body."""
    canon = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def cell_key(algorithm: str, graph: str, trial: int = 0) -> str:
    """The stable string key one sweep cell is stored under."""
    return f"{algorithm}|{graph}|{trial}"


class SweepCheckpoint:
    """Persistent record of completed sweep cells.

    Parameters
    ----------
    path:
        Checkpoint file location; created on the first :meth:`record`.
    meta:
        Sweep-identifying parameters.  Stored on first save and matched
        on :meth:`load` so a checkpoint is only resumed into the same
        sweep configuration.
    """

    def __init__(self, path: PathLike, meta: Optional[Dict[str, object]] = None):
        self.path = Path(path)
        self.meta: Dict[str, object] = dict(meta or {})
        self.cells: Dict[str, dict] = {}

    # -- persistence -------------------------------------------------------

    @staticmethod
    def _parse_file(p: Path) -> Dict[str, object]:
        """Read and integrity-check one checkpoint file.

        Raises :class:`CheckpointError` on unreadable/corrupt files,
        checksum mismatches and unknown versions; *meta* validation is
        separate (a wrong-sweep file is valid, just not resumable here).
        """
        try:
            data = json.loads(p.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"cannot read checkpoint {p}: {exc}") from exc
        if not isinstance(data, dict) or "version" not in data:
            raise CheckpointError(f"{p} is not a sweep checkpoint")
        version = data["version"]
        if version not in (1, CHECKPOINT_VERSION):
            raise CheckpointError(
                f"checkpoint {p} has version {version}; this code understands "
                f"versions 1 and {CHECKPOINT_VERSION}"
            )
        if version >= 2:
            stored = data.get("checksum")
            body = {k: v for k, v in data.items() if k != "checksum"}
            expected = _body_checksum(body)
            if stored != expected:
                raise CheckpointError(
                    f"checkpoint {p} fails its integrity check "
                    f"(checksum {stored!r}, content hashes to {expected!r})"
                )
        cells = data.get("cells", {})
        if not isinstance(cells, dict):
            raise CheckpointError(f"checkpoint {p} has a malformed cell table")
        return data

    @classmethod
    def load(
        cls, path: PathLike, meta: Optional[Dict[str, object]] = None
    ) -> "SweepCheckpoint":
        """Load an existing checkpoint (or start empty if *path* is absent).

        A corrupt main file falls back to the ``.bak`` rotation with a
        :class:`RuntimeWarning`; :class:`CheckpointError` is raised when
        no intact version exists, on unknown versions, or on a *meta*
        mismatch.
        """
        ckpt = cls(path, meta=meta)
        p = Path(path)
        if not p.exists():
            return ckpt
        bak = backup_path(p)
        try:
            data = cls._parse_file(p)
        except CheckpointError as exc:
            if not bak.exists():
                raise
            try:
                data = cls._parse_file(bak)
            except CheckpointError as bak_exc:
                raise CheckpointError(
                    f"cannot read checkpoint {p} ({exc}) and its backup "
                    f"{bak} is also unusable ({bak_exc})"
                ) from exc
            warnings.warn(
                f"checkpoint {p} is corrupt ({exc}); resuming from backup "
                f"{bak} ({len(data.get('cells', {}))} cells)",
                RuntimeWarning,
                stacklevel=2,
            )
        stored_meta = data.get("meta", {})
        if meta is not None and stored_meta and stored_meta != dict(meta):
            diffs = {
                k: (stored_meta.get(k), dict(meta).get(k))
                for k in set(stored_meta) | set(dict(meta))
                if stored_meta.get(k) != dict(meta).get(k)
            }
            raise CheckpointError(
                f"checkpoint {p} was recorded under different sweep parameters: "
                f"{diffs} (stored, requested)"
            )
        ckpt.meta = dict(stored_meta or (meta or {}))
        ckpt.cells = data.get("cells", {})
        return ckpt

    def save(self) -> None:
        """Atomically rewrite the checkpoint file, rotating a backup.

        The previous file's bytes are copied to the ``.bak`` sibling
        *before* the rewrite, so the main path always holds either the
        old or the new checkpoint and the backup trails by one save.
        """
        if self.path.exists():
            try:
                backup_path(self.path).write_bytes(self.path.read_bytes())
            except OSError:
                # A failed rotation must not block checkpointing itself.
                pass
        body = {
            "version": CHECKPOINT_VERSION,
            "meta": self.meta,
            "cells": self.cells,
        }
        payload = dict(body, checksum=_body_checksum(body))
        atomic_write_text(self.path, json.dumps(payload, indent=2, sort_keys=True))

    # -- cell accounting ---------------------------------------------------

    def has(self, algorithm: str, graph: str, trial: int = 0) -> bool:
        return cell_key(algorithm, graph, trial) in self.cells

    def get(self, algorithm: str, graph: str, trial: int = 0) -> dict:
        return self.cells[cell_key(algorithm, graph, trial)]

    def record(
        self, algorithm: str, graph: str, payload: dict, trial: int = 0
    ) -> None:
        """Store one completed cell and persist immediately."""
        self.cells[cell_key(algorithm, graph, trial)] = payload
        self.save()

    @property
    def completed(self) -> int:
        """Number of cells already recorded."""
        return len(self.cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepCheckpoint({self.path!s}, cells={self.completed}, "
            f"meta={self.meta})"
        )
