"""Breadth-first search substrate: frontiers, parallel BFS, hybrid BFS."""

from repro.bfs.frontier import DENSE_THRESHOLD, Frontier
from repro.bfs.hybrid_bfs import HybridBFSResult, bottom_up_step, hybrid_bfs
from repro.bfs.parallel_bfs import UNVISITED, BFSResult, parallel_bfs

__all__ = [
    "BFSResult",
    "DENSE_THRESHOLD",
    "Frontier",
    "HybridBFSResult",
    "UNVISITED",
    "bottom_up_step",
    "hybrid_bfs",
    "parallel_bfs",
]
