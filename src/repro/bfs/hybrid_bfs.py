"""Direction-optimizing (hybrid) BFS [Beamer-Asanovic-Patterson 2012].

When the frontier is large, it is cheaper to run the level *backwards*:
every unvisited vertex scans its incoming neighbors and adopts the
first one found on the frontier as its parent, then stops ("early
exit").  On dense low-diameter graphs this skips the vast majority of
edge traversals — the effect behind hybrid-BFS-CC's and multistep-CC's
dominance on the paper's rMat2 and com-Orkut inputs.

The cost model honours the early exit: the bottom-up sweep charges only
the edges examined *up to and including* each vertex's first
frontier-neighbor hit (or its full adjacency list when there is none),
and it charges them as streaming reads (``scan``) rather than atomics —
the read-based sweep needs no CAS, which is the second reason the
paper's hybrid variants win on dense frontiers.

Our graphs are symmetric, so in-neighbors == out-neighbors and one CSR
serves both directions (as in the paper's storage scheme).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.bfs.frontier import DENSE_THRESHOLD, Frontier
from repro.bfs.parallel_bfs import UNVISITED, BFSResult
from repro.graphs.csr import CSRGraph
from repro.pram.cost import current_tracker
from repro.primitives.atomics import first_winner
from repro.primitives.pack import pack_index

__all__ = ["hybrid_bfs", "bottom_up_step", "HybridBFSResult"]


@dataclass
class HybridBFSResult(BFSResult):
    """BFS result plus the per-round direction decisions (for tests/benches)."""

    directions: List[str] = field(default_factory=list)


def bottom_up_step(
    graph: CSRGraph,
    frontier_bitmap: np.ndarray,
    visited: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """One read-based (bottom-up) BFS round.

    Every unvisited vertex scans its neighbors in adjacency order and
    adopts the first one lying on the current frontier.  Returns
    ``(new_vertices, their_parents, edges_examined)`` where
    *edges_examined* counts edge inspections up to each early exit —
    the quantity the cost model charges.
    """
    tracker = current_tracker()
    unvisited = pack_index(~visited)
    if unvisited.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 0
    # charge_cost=False: only the early-exit edge count below is charged.
    src, dst = graph.expand(unvisited, charge_cost=False)
    hit = frontier_bitmap[dst]
    # First frontier-neighbor per source, exploiting expand()'s grouped,
    # adjacency-ordered layout: the first occurrence of each source
    # among the hits is its earliest hit.
    hit_positions = np.flatnonzero(hit)
    first_pos, winners = first_winner(src[hit_positions]) if hit_positions.size else (
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
    )
    parent_of_winner = dst[hit_positions[first_pos]] if hit_positions.size else (
        np.zeros(0, dtype=np.int64)
    )

    # Early-exit cost: edges scanned = (position of first hit within the
    # source's slice) + 1, or the full degree when there is no hit.
    counts = graph.offsets[unvisited + 1] - graph.offsets[unvisited]
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    scanned = counts.astype(np.float64)
    if winners.size:
        # Map winner vertex id -> its index within `unvisited` to find
        # the slice start of each winner.
        order = np.searchsorted(unvisited, winners)
        local_first = hit_positions[first_pos] - starts[order]
        scanned_winners = (local_first + 1).astype(np.float64)
        scanned[order] = scanned_winners
    edges_examined = int(scanned.sum())
    # Streaming reads, no atomics: the dense sweep's cache-friendliness.
    tracker.add("scan", work=float(edges_examined + unvisited.size), depth=1.0)
    tracker.add("scatter", work=float(winners.size), depth=1.0)
    return winners, parent_of_winner, edges_examined


def hybrid_bfs(
    graph: CSRGraph,
    source: int,
    dense_threshold: float = DENSE_THRESHOLD,
    force_direction: Optional[str] = None,
) -> HybridBFSResult:
    """Direction-optimizing BFS from *source*.

    Parameters
    ----------
    dense_threshold:
        Switch to the bottom-up sweep when the frontier exceeds this
        fraction of the remaining unvisited vertices (paper: 20 %).
    force_direction:
        ``"top-down"`` or ``"bottom-up"`` pins every round to one
        direction (ablation support); default adaptive.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    if force_direction not in (None, "top-down", "bottom-up"):
        raise ValueError(f"bad force_direction {force_direction!r}")
    tracker = current_tracker()
    parents = np.full(n, UNVISITED, dtype=np.int64)
    distances = np.full(n, UNVISITED, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    tracker.add("alloc", work=float(3 * n), depth=1.0)

    distances[source] = 0
    visited[source] = True
    frontier = Frontier.from_vertices(n, np.array([source], dtype=np.int64))
    num_visited = 1
    rounds = 0
    directions: List[str] = []
    while not frontier.is_empty:
        rounds += 1
        if force_direction is not None:
            go_dense = force_direction == "bottom-up"
        else:
            # The paper's rule: read-based when the frontier holds more
            # than 20% of the vertices (and someone is left to pull).
            go_dense = num_visited < n and frontier.should_go_dense(
                n, dense_threshold
            )
        if go_dense:
            directions.append("bottom-up")
            winners, parent_of, _ = bottom_up_step(
                graph, frontier.as_bitmap(), visited
            )
            parents[winners] = parent_of
        else:
            directions.append("top-down")
            src, dst = graph.expand(frontier.as_vertices())
            fresh = ~visited[dst]
            tracker.add("gather", work=float(dst.size), depth=1.0)
            win_pos, winners = first_winner(dst[fresh])
            parents[winners] = src[fresh][win_pos]
            tracker.add("scatter", work=float(winners.size), depth=1.0)
        visited[winners] = True
        distances[winners] = rounds
        num_visited += int(winners.size)
        tracker.sync()
        frontier = Frontier.from_vertices(n, winners)
    return HybridBFSResult(
        parents=parents,
        distances=distances,
        num_rounds=rounds,
        num_visited=num_visited,
        directions=directions,
    )
