"""Direction-optimizing (hybrid) BFS [Beamer-Asanovic-Patterson 2012].

When the frontier is large, it is cheaper to run the level *backwards*:
every unvisited vertex scans its incoming neighbors and adopts the
first one found on the frontier as its parent, then stops ("early
exit").  On dense low-diameter graphs this skips the vast majority of
edge traversals — the effect behind hybrid-BFS-CC's and multistep-CC's
dominance on the paper's rMat2 and com-Orkut inputs.

The cost model honours the early exit: the bottom-up sweep charges only
the edges examined *up to and including* each vertex's first
frontier-neighbor hit (or its full adjacency list when there is none),
and it charges them as streaming reads (``scan``) rather than atomics —
the read-based sweep needs no CAS, which is the second reason the
paper's hybrid variants win on dense frontiers.

Our graphs are symmetric, so in-neighbors == out-neighbors and one CSR
serves both directions (as in the paper's storage scheme).

As an engine configuration:
:class:`~repro.engine.state.BFSTreeState` (with the visited bitmap the
pull kernel needs) under the paper's
:class:`~repro.engine.direction.FractionHybrid` rule — or pinned
:class:`~repro.engine.direction.AlwaysPush` /
:class:`~repro.engine.direction.AlwaysPull` when a direction is forced.
The read-based sweep itself is
:func:`repro.engine.kernels.bottom_up_step` (re-exported here under
its historical name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bfs.parallel_bfs import BFSResult
from repro.engine.core import TraversalEngine
from repro.engine.direction import (
    AlwaysPull,
    AlwaysPush,
    DirectionPolicy,
    FractionHybrid,
)
from repro.engine.frontier import DENSE_THRESHOLD
from repro.engine.kernels import bottom_up_step  # noqa: F401  (historical re-export)
from repro.engine.state import BFSTreeState
from repro.graphs.csr import CSRGraph

__all__ = ["hybrid_bfs", "bottom_up_step", "HybridBFSResult"]


@dataclass
class HybridBFSResult(BFSResult):
    """BFS result plus the per-round direction decisions (for tests/benches)."""

    directions: List[str] = field(default_factory=list)


def hybrid_bfs(
    graph: CSRGraph,
    source: int,
    dense_threshold: float = DENSE_THRESHOLD,
    force_direction: Optional[str] = None,
    round_budget=None,
) -> HybridBFSResult:
    """Direction-optimizing BFS from *source*.

    Parameters
    ----------
    dense_threshold:
        Switch to the bottom-up sweep when the frontier exceeds this
        fraction of the remaining unvisited vertices (paper: 20 %).
    force_direction:
        ``"top-down"`` or ``"bottom-up"`` pins every round to one
        direction (ablation support); default adaptive.
    round_budget:
        Optional :class:`~repro.resilience.policy.RoundBudget` bounding
        the rounds.
    """
    if force_direction not in (None, "top-down", "bottom-up"):
        raise ValueError(f"bad force_direction {force_direction!r}")
    direction: DirectionPolicy
    if force_direction == "top-down":
        direction = AlwaysPush()
    elif force_direction == "bottom-up":
        direction = AlwaysPull()
    else:
        direction = FractionHybrid(threshold=dense_threshold)
    state = BFSTreeState(
        graph, source, track_visited=True, budget=round_budget
    )
    TraversalEngine(state, direction=direction).run()
    return HybridBFSResult(
        parents=state.parents,
        distances=state.distances,
        num_rounds=state.round,
        num_visited=state.num_visited,
        directions=state.directions,
    )
