"""Work-efficient level-synchronous parallel BFS.

The textbook parallel BFS the paper builds on ("a simple parallel
algorithm processes each level of the BFS in parallel"): each round
expands the frontier's out-edges, claims unvisited targets with an
arbitrary-CRCW write (a CAS race in the real implementation), and packs
the winners into the next frontier.  O(n + m) work; depth = (graph
eccentricity) * O(log n) for the per-round packing.

As an engine configuration:
:class:`~repro.engine.state.BFSTreeState` (without the visited bitmap —
visitedness is tested against ``distances``, saving one array, as the
pre-engine implementation did) driven push-only.

Used directly by :mod:`repro.connectivity.hybrid_bfs_cc` (as the
top-down half) and by tests as a distance oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.core import UNVISITED, TraversalEngine  # noqa: F401  (re-export)
from repro.engine.direction import AlwaysPush
from repro.engine.state import BFSTreeState
from repro.graphs.csr import CSRGraph

__all__ = ["BFSResult", "parallel_bfs"]


@dataclass
class BFSResult:
    """Output of one breadth-first search.

    Attributes
    ----------
    parents:
        ``parents[v]`` is the BFS-tree parent of ``v`` (-1 for the
        source and for unreached vertices).
    distances:
        Hop distance from the source (-1 where unreached).
    num_rounds:
        Number of frontier expansions (the source's eccentricity + 1
        within its component).
    num_visited:
        Vertices reached, including the source.
    """

    parents: np.ndarray
    distances: np.ndarray
    num_rounds: int
    num_visited: int


def parallel_bfs(graph: CSRGraph, source: int, round_budget=None) -> BFSResult:
    """Level-synchronous BFS from *source*.

    Each round is one synchronous PRAM step batch: expand, resolve the
    CAS races on unvisited targets (arbitrary winner), pack the next
    frontier.  Work O(n + m); depth O(ecc * log n).  ``round_budget``
    optionally bounds the rounds
    (:class:`~repro.resilience.policy.RoundBudget`).
    """
    state = BFSTreeState(
        graph, source, track_visited=False, budget=round_budget
    )
    TraversalEngine(state, direction=AlwaysPush()).run()
    return BFSResult(
        parents=state.parents,
        distances=state.distances,
        num_rounds=state.round,
        num_visited=state.num_visited,
    )
