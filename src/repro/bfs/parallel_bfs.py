"""Work-efficient level-synchronous parallel BFS.

The textbook parallel BFS the paper builds on ("a simple parallel
algorithm processes each level of the BFS in parallel"): each round
expands the frontier's out-edges, claims unvisited targets with an
arbitrary-CRCW write (a CAS race in the real implementation), and packs
the winners into the next frontier.  O(n + m) work; depth = (graph
eccentricity) * O(log n) for the per-round packing.

Used directly by :mod:`repro.connectivity.hybrid_bfs_cc` (as the
top-down half) and by tests as a distance oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.pram.cost import current_tracker
from repro.primitives.atomics import first_winner

__all__ = ["BFSResult", "parallel_bfs"]

UNVISITED = np.int64(-1)


@dataclass
class BFSResult:
    """Output of one breadth-first search.

    Attributes
    ----------
    parents:
        ``parents[v]`` is the BFS-tree parent of ``v`` (-1 for the
        source and for unreached vertices).
    distances:
        Hop distance from the source (-1 where unreached).
    num_rounds:
        Number of frontier expansions (the source's eccentricity + 1
        within its component).
    num_visited:
        Vertices reached, including the source.
    """

    parents: np.ndarray
    distances: np.ndarray
    num_rounds: int
    num_visited: int


def parallel_bfs(graph: CSRGraph, source: int) -> BFSResult:
    """Level-synchronous BFS from *source*.

    Each round is one synchronous PRAM step batch: expand, resolve the
    CAS races on unvisited targets (arbitrary winner), pack the next
    frontier.  Work O(n + m); depth O(ecc * log n).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    tracker = current_tracker()
    parents = np.full(n, UNVISITED, dtype=np.int64)
    distances = np.full(n, UNVISITED, dtype=np.int64)
    tracker.add("alloc", work=float(2 * n), depth=1.0)

    distances[source] = 0
    frontier = np.array([source], dtype=np.int64)
    num_visited = 1
    rounds = 0
    while frontier.size:
        rounds += 1
        src, dst = graph.expand(frontier)
        unvisited = distances[dst] == UNVISITED
        tracker.add("gather", work=float(dst.size), depth=1.0)
        src, dst = src[unvisited], dst[unvisited]
        # CAS race: one arbitrary winner per newly discovered vertex.
        win_pos, winners = first_winner(dst)
        parents[winners] = src[win_pos]
        distances[winners] = rounds
        tracker.add("scatter", work=float(winners.size), depth=1.0)
        tracker.sync()  # end-of-round barrier (frontier packing)
        frontier = winners
        num_visited += int(winners.size)
    return BFSResult(
        parents=parents,
        distances=distances,
        num_rounds=rounds,
        num_visited=num_visited,
    )
