"""Frontier representation — re-exported from the traversal engine.

The sparse/dense :class:`~repro.engine.frontier.Frontier` and the
paper's 20 % switch threshold historically lived here; the unified
level-synchronous engine owns the frontier lifecycle now
(:mod:`repro.engine.frontier`), and this module remains as the
stable import location for existing code and tests.
"""

from repro.engine.frontier import DENSE_THRESHOLD, Frontier

__all__ = ["Frontier", "DENSE_THRESHOLD"]
