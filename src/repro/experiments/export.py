"""Export experiment artifacts to JSON / CSV for external plotting.

The benchmark modules print ASCII renderings; anyone regenerating the
paper's figures with matplotlib/gnuplot wants machine-readable series
instead.  These helpers write the exact data structures the
``fig*``/``run_table*`` builders return.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

__all__ = [
    "export_json",
    "export_table2_csv",
    "export_series_csv",
    "export_resilient_table2",
    "to_jsonable",
]

PathLike = Union[str, os.PathLike]


def to_jsonable(obj: Any) -> Any:
    """Recursively coerce an artifact structure to json.dump-safe types.

    Two coercions happen at this boundary — nowhere else:

    * mapping keys become strings (JSON requirement; beta values and
      edge counts round-trip via ``float()``/``int()`` on load);
    * NumPy scalars become native Python numbers.  ``np.float64``
      happens to subclass ``float`` and serializes, but ``np.int64``
      does not subclass ``int`` — a single stray ``np.int64`` *value*
      raises ``TypeError: Object of type int64 is not JSON
      serializable`` and a stray *key* raises ``TypeError: keys must
      be str...``, so both sides are scrubbed here.  Arrays become
      lists.
    """
    if isinstance(obj, Mapping):
        return {_json_key(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return to_jsonable(obj.tolist())
    return obj


def _json_key(key: Any) -> str:
    if isinstance(key, np.generic):
        key = key.item()
    return str(key)


def export_json(data: Any, path: PathLike) -> None:
    """Write any artifact structure as pretty-printed JSON.

    The structure is scrubbed through :func:`to_jsonable` first, so
    NumPy scalar keys and values coming out of the experiment builders
    cannot crash the dump.
    """
    Path(path).write_text(json.dumps(to_jsonable(data), indent=2, sort_keys=True))


def export_table2_csv(
    table: Dict[str, Dict[str, Dict[str, float]]], path: PathLike
) -> None:
    """Table 2 as long-form CSV: algorithm, graph, threads, seconds."""
    with Path(path).open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["algorithm", "graph", "threads", "seconds"])
        for algo, row in table.items():
            for graph, cells in row.items():
                for threads in ("1", "40h"):
                    if threads in cells:
                        writer.writerow([algo, graph, threads, cells[threads]])


def export_resilient_table2(sweep: Dict[str, Any], path: PathLike) -> None:
    """Write a resilient sweep artifact with its full provenance.

    *sweep* is the structure :meth:`repro.resilience.runner.
    ResilientRunner.run_table2` returns; the JSON records, per cell,
    the timing values **plus** how many attempts it took, which
    implementation finally produced it (after graceful degradation),
    and the structured failure log — so an artifact is auditable: a
    cell that needed three retries or fell back to ``serial-SF`` says
    so in the file, instead of silently looking like a clean run.
    """
    table = sweep.get("table", {})
    degraded = {
        f"{algo}/{gname}": used
        for algo, row in sweep.get("resolved", {}).items()
        for gname, used in row.items()
        if used != algo
    }
    export_json(
        {
            "table": table,
            "attempts": sweep.get("attempts", {}),
            "degraded_cells": degraded,
            "failures": sweep.get("failures", []),
            "total_failures": len(sweep.get("failures", [])),
        },
        path,
    )


def export_series_csv(
    series: Dict[str, Dict], path: PathLike, x_name: str = "x", y_name: str = "y"
) -> None:
    """Any ``{series_name: {x: y}}`` structure as long-form CSV.

    Fits Figure 2 (``{algo: {threads: seconds}}``), Figure 3
    (``{variant: {beta: seconds}}``) and friends.
    """
    with Path(path).open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", x_name, y_name])
        for name, points in series.items():
            for x, y in points.items():
                writer.writerow([name, x, y])
