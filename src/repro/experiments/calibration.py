"""Machine-model calibration: measure per-kind costs on real hardware.

The machine model's default constants (``repro/pram/machine.py``) were
chosen so that the *single-thread ordering* of the eight
implementations matches the paper's Table 2 column and the parallel
shapes match its figures (DESIGN.md §5).  This module provides the
measurement side: micro-benchmarks of the NumPy kernels behind each
cost kind on the current machine, yielding a per-kind ns/op profile a
user can feed back into :class:`~repro.pram.machine.MachineModel` to
ground the simulation in their own hardware's memory hierarchy.

The micro-benchmarks deliberately mirror how the algorithms use each
kind:

========  =====================================================
scan      unit-stride cumulative sum over a large array
gather    random-index reads (CSR neighbor/label lookups)
scatter   random-index writes (frontier marking)
atomic    ``np.minimum.at`` with colliding indices (writeMin)
sort      one 16-bit stable argsort pass (the radix kernel)
hash      one linear-probe round (hash + gather + compare)
alloc     array allocation + fill
seq       Python-level pointer chasing (union-find's inner loop)
========  =====================================================
"""

from __future__ import annotations

import time
from typing import Callable, Dict

import numpy as np

from repro.pram.cost import KINDS

__all__ = ["measure_kind_costs", "suggest_machine_constants"]


def _time_ns_per_op(fn: Callable[[], int], repeats: int = 3) -> float:
    """Best-of-N wall time divided by the op count *fn* reports."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        ops = fn()
        dt = time.perf_counter() - t0
        best = min(best, dt / max(ops, 1))
    return best * 1e9


def measure_kind_costs(n: int = 1_000_000, seed: int = 0) -> Dict[str, float]:
    """Measured ns/op for every cost kind, on this machine.

    *n* sizes the working arrays (must exceed cache to reflect memory
    behaviour; 10^6 int64 = 8 MB per array).
    """
    rng = np.random.default_rng(seed)
    data = rng.integers(0, n, size=n).astype(np.int64)
    idx = rng.integers(0, n, size=n).astype(np.int64)
    out = np.zeros(n, dtype=np.int64)
    small_idx = rng.integers(0, n // 64, size=n).astype(np.int64)  # collisions

    def scan() -> int:
        np.cumsum(data)
        return n

    def gather() -> int:
        data[idx]
        return n

    def scatter() -> int:
        out[idx] = data
        return n

    def atomic() -> int:
        np.minimum.at(out, small_idx, data)
        return n

    def sort_pass() -> int:
        np.argsort(data & 0xFFFF, kind="stable")
        return n

    def hash_probe() -> int:
        h = (data * np.int64(0x9E3779B9)) & (n - 1 if (n & (n - 1)) == 0 else n)
        occupied = out[h % n]
        np.count_nonzero(occupied == data)
        return n

    def alloc() -> int:
        np.zeros(n, dtype=np.int64)
        return n

    def seq() -> int:
        # Python-level pointer chasing, the serial union-find regime.
        parent = list(range(10_000))
        x = 0
        for i in range(10_000):
            x = parent[x ^ i % 10_000]
        return 10_000

    kernels = {
        "scan": scan,
        "gather": gather,
        "scatter": scatter,
        "atomic": atomic,
        "sort": sort_pass,
        "hash": hash_probe,
        "alloc": alloc,
        "seq": seq,
    }
    assert set(kernels) == set(KINDS)
    return {kind: _time_ns_per_op(fn) for kind, fn in kernels.items()}


def suggest_machine_constants(
    n: int = 1_000_000, seed: int = 0
) -> Dict[str, float]:
    """A ``kind_cost_ns`` mapping measured on this machine.

    Normalised so that ``scan`` costs what the default model charges —
    the *relative* kind costs are what the measurement contributes;
    absolute scale is a free parameter of the simulation.
    """
    from repro.pram.machine import DEFAULT_KIND_COST_NS

    measured = measure_kind_costs(n=n, seed=seed)
    scale = DEFAULT_KIND_COST_NS["scan"] / max(measured["scan"], 1e-12)
    return {kind: ns * scale for kind, ns in measured.items()}
