"""Experiment harness: run (algorithm x graph) cells, collect profiles.

One :func:`profile_run` executes an algorithm exactly once under a
fresh cost tracker, verifies the labeling, and returns a
:class:`RunProfile` bundling the labeling result, the tracker and the
real wall-clock time.  Because the simulated time at *any* thread count
is a pure function of the tracker, a single execution yields the whole
thread sweep — that is how the reproduction affords Figure 2's
8 implementations x 9 thread counts x 6 graphs grid.

The paper reports the median of three trials; :func:`median_simulated`
mirrors that by re-running with distinct seeds where the algorithm is
randomized.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.connectivity.base import ConnectivityResult
from repro.experiments.registry import get_algorithm
from repro.graphs.csr import CSRGraph
from repro.pram.cost import CostTracker
from repro.pram.machine import MachineModel, ThreadSpec, paper_thread_sweep
from repro.resilience.faults import FaultPlan

__all__ = ["RunProfile", "profile_run", "sweep_seconds", "median_simulated"]


@dataclass
class RunProfile:
    """Everything one measured cell of the evaluation needs.

    Attributes
    ----------
    result:
        The labeling and per-algorithm metadata.
    tracker:
        The work/depth profile; feed to a MachineModel for seconds.
    wall_seconds:
        Real single-core NumPy execution time (pytest-benchmark also
        measures this independently).
    """

    algorithm: str
    graph_name: str
    result: ConnectivityResult
    tracker: CostTracker
    wall_seconds: float

    def seconds_at(
        self, threads: ThreadSpec, base: Optional[MachineModel] = None
    ) -> float:
        model = (base or MachineModel()).with_threads(threads)
        return model.time_seconds(self.tracker)

    def sweep(
        self,
        specs: Optional[Sequence[ThreadSpec]] = None,
        base: Optional[MachineModel] = None,
    ) -> Dict[str, float]:
        model = base or MachineModel()
        return model.sweep_seconds(self.tracker, specs)

    def phase_seconds_at(
        self, threads: ThreadSpec, base: Optional[MachineModel] = None
    ) -> Dict[str, float]:
        model = (base or MachineModel()).with_threads(threads)
        return model.phase_seconds(self.tracker)


def profile_run(
    algorithm: str,
    graph: CSRGraph,
    graph_name: str = "?",
    verify: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    **algorithm_kwargs,
) -> RunProfile:
    """Run *algorithm* once on *graph* under a fresh tracker.

    ``algorithm`` is a registry name (see
    :data:`repro.experiments.registry.ALGORITHMS`); keyword arguments
    are forwarded (e.g. ``beta=0.1, seed=3`` for the decomp variants).
    An optional :class:`~repro.resilience.faults.FaultPlan` is armed
    for the duration of the run (each call counts as one run against
    the plan's sabotage budget).

    Thin wrapper over the runtime layer's
    :func:`~repro.runtime.session.execute_profiled`, which derives one
    execution context per run; kept as the historical name the
    experiment/figure code calls.
    """
    from repro.runtime.session import execute_profiled

    return execute_profiled(
        algorithm,
        graph,
        graph_name=graph_name,
        verify=verify,
        fault_plan=fault_plan,
        **algorithm_kwargs,
    )


def sweep_seconds(
    profile: RunProfile, specs: Optional[Sequence[ThreadSpec]] = None
) -> Dict[str, float]:
    """Simulated seconds across a thread sweep (default: the paper's)."""
    return profile.sweep(specs if specs is not None else paper_thread_sweep())


def median_simulated(
    algorithm: str,
    graph: CSRGraph,
    threads: ThreadSpec,
    trials: int = 3,
    graph_name: str = "?",
    seed: int = 1,
    **algorithm_kwargs,
) -> float:
    """Median simulated seconds over *trials* seeds (paper methodology).

    Deterministic algorithms accept no ``seed`` and are run once.
    """
    spec = get_algorithm(algorithm)
    takes_seed = algorithm.startswith("decomp-")
    times: List[float] = []
    n_runs = trials if takes_seed else 1
    for trial in range(n_runs):
        kwargs = dict(algorithm_kwargs)
        if takes_seed:
            kwargs["seed"] = seed + 7919 * trial
        prof = profile_run(
            algorithm, graph, graph_name=graph_name, verify=False, **kwargs
        )
        times.append(prof.seconds_at(threads))
    return statistics.median(times)
