"""Named suites: the paper's input graphs and its eight implementations.

The paper's graphs (Table 1) are 10^8-edge scale; the reproduction
provides three size presets of the same distributions (DESIGN.md §2):

* ``tiny``  — seconds-fast, used by the integration tests;
* ``small`` — the benchmark default (~10^5-10^6 directed edges);
* ``medium`` — a heavier sanity scale for the scaling figure.

Every preset preserves the *relationships* the paper's narrative needs:
random/orkut dense-ish single-giant-component, rMat sparse with many
components, rMat2 very dense and shallow, 3D-grid moderate diameter,
line the diameter adversary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.connectivity import (
    decomp_cc,
    hybrid_bfs_cc,
    label_prop_cc,
    multistep_cc,
    parallel_sf_pbbs_cc,
    parallel_sf_prm_cc,
    serial_sf_cc,
    shiloach_vishkin_cc,
)
from repro.connectivity.base import ConnectivityResult
from repro.errors import ParameterError
from repro.graphs import (
    CSRGraph,
    grid3d,
    line_graph,
    orkut_like,
    random_kregular,
    rmat,
)

__all__ = [
    "GraphSpec",
    "AlgorithmSpec",
    "GRAPHS",
    "ALGORITHMS",
    "FALLBACK_CHAINS",
    "PAPER_ALGORITHM_ORDER",
    "PAPER_GRAPH_ORDER",
    "TABLE2_ALGORITHM_ORDER",
    "build_graph",
    "build_suite",
    "fallback_chain",
    "get_algorithm",
]


@dataclass(frozen=True)
class GraphSpec:
    """One named input graph at the three size presets."""

    name: str
    description: str
    factories: Dict[str, Callable[[], CSRGraph]]

    def build(self, scale: str = "small") -> CSRGraph:
        if scale not in self.factories:
            raise ParameterError(
                f"graph {self.name!r} has no scale {scale!r}; "
                f"choose from {sorted(self.factories)}"
            )
        return self.factories[scale]()


def _rmat_sparse(scale: int, seed: int = 1) -> CSRGraph:
    # Edge factor 3.7 generated-directed-edges per vertex, the paper's
    # rMat density (n=2^27, m=5e8) — sparse enough for many components.
    n = 1 << scale
    return rmat(scale, int(n * 3.7), seed=seed)


def _rmat_dense(scale: int, seed: int = 1) -> CSRGraph:
    # The paper's rMat2 density: edge factor ~400 (n=2^20, m=4.2e8).
    n = 1 << scale
    return rmat(scale, int(n * 400), seed=seed)


GRAPHS: Dict[str, GraphSpec] = {
    "random": GraphSpec(
        "random",
        "every vertex has 5 edges to uniformly random targets (paper: "
        "n=1e8, m=5e8); one giant component",
        {
            "tiny": lambda: random_kregular(2_000, 5, seed=1),
            "small": lambda: random_kregular(100_000, 5, seed=1),
            "medium": lambda: random_kregular(400_000, 5, seed=1),
        },
    ),
    "rMat": GraphSpec(
        "rMat",
        "R-MAT power-law, sparse (paper: n=2^27, m=5e8; >13M components)",
        {
            "tiny": lambda: _rmat_sparse(11, seed=1),
            "small": lambda: _rmat_sparse(17, seed=1),
            "medium": lambda: _rmat_sparse(19, seed=1),
        },
    ),
    "rMat2": GraphSpec(
        "rMat2",
        "same generator, ~400 edges/vertex (paper: n=2^20, m=4.2e8); "
        "dense, ~5 BFS levels",
        {
            "tiny": lambda: _rmat_dense(8, seed=1),
            "small": lambda: _rmat_dense(11, seed=1),
            "medium": lambda: _rmat_dense(13, seed=1),
        },
    ),
    "3D-grid": GraphSpec(
        "3D-grid",
        "6-neighbor 3D grid (paper: n=1e8, m=3e8); one component, "
        "polynomial diameter",
        {
            "tiny": lambda: grid3d(12, seed=1),
            "small": lambda: grid3d(40, seed=1),
            "medium": lambda: grid3d(64, seed=1),
        },
    ),
    "line": GraphSpec(
        "line",
        "a path (paper: n=5e8); diameter n-1 — the BFS adversary",
        {
            "tiny": lambda: line_graph(3_000, seed=1),
            "small": lambda: line_graph(50_000, seed=1),
            "medium": lambda: line_graph(200_000, seed=1),
        },
    ),
    "com-Orkut": GraphSpec(
        "com-Orkut",
        "synthetic surrogate for the SNAP social network (3.07M "
        "vertices, 117M edges): dense skewed R-MAT + Hamiltonian "
        "cycle; one giant component (DESIGN.md §2)",
        {
            "tiny": lambda: orkut_like(1_500, 40.0, seed=1),
            "small": lambda: orkut_like(30_000, 76.0, seed=1),
            "medium": lambda: orkut_like(100_000, 76.0, seed=1),
        },
    ),
}

#: The order Table 1 / Table 2 print their columns.
PAPER_GRAPH_ORDER: List[str] = [
    "random",
    "rMat",
    "rMat2",
    "3D-grid",
    "line",
    "com-Orkut",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One named connectivity implementation."""

    name: str
    run: Callable[[CSRGraph], ConnectivityResult]
    in_paper: bool
    description: str


ALGORITHMS: Dict[str, AlgorithmSpec] = {
    "serial-SF": AlgorithmSpec(
        "serial-SF", serial_sf_cc, True, "sequential union-find spanning forest"
    ),
    "decomp-arb-CC": AlgorithmSpec(
        "decomp-arb-CC",
        lambda g, **kw: decomp_cc(g, variant="arb", **kw),
        True,
        "Algorithm 1 with Decomp-Arb (Algorithm 3)",
    ),
    "decomp-arb-hybrid-CC": AlgorithmSpec(
        "decomp-arb-hybrid-CC",
        lambda g, **kw: decomp_cc(g, variant="arb-hybrid", **kw),
        True,
        "Algorithm 1 with direction-optimizing Decomp-Arb",
    ),
    "decomp-min-CC": AlgorithmSpec(
        "decomp-min-CC",
        lambda g, **kw: decomp_cc(g, variant="min", **kw),
        True,
        "Algorithm 1 with Decomp-Min (Algorithm 2)",
    ),
    "decomp-min-hybrid-CC": AlgorithmSpec(
        "decomp-min-hybrid-CC",
        lambda g, **kw: decomp_cc(g, variant="min-hybrid", **kw),
        False,
        "Algorithm 1 with direction-optimizing Decomp-Min "
        "(engine tie-break x direction combination)",
    ),
    "parallel-SF-PBBS": AlgorithmSpec(
        "parallel-SF-PBBS",
        parallel_sf_pbbs_cc,
        True,
        "PBBS deterministic-reservation spanning forest",
    ),
    "parallel-SF-PRM": AlgorithmSpec(
        "parallel-SF-PRM",
        parallel_sf_prm_cc,
        True,
        "Patwary et al. lock-based union-find spanning forest",
    ),
    "hybrid-BFS-CC": AlgorithmSpec(
        "hybrid-BFS-CC",
        hybrid_bfs_cc,
        True,
        "direction-optimizing BFS per component (Ligra)",
    ),
    "multistep-CC": AlgorithmSpec(
        "multistep-CC",
        multistep_cc,
        True,
        "BFS giant component + label propagation (Slota et al.)",
    ),
    # Extras beyond the paper's table, for the work-efficiency story.
    "label-prop-CC": AlgorithmSpec(
        "label-prop-CC", label_prop_cc, False, "pure min-label propagation"
    ),
    "shiloach-vishkin-CC": AlgorithmSpec(
        "shiloach-vishkin-CC",
        shiloach_vishkin_cc,
        False,
        "classical O(m log n) hook-and-shortcut",
    ),
}

#: Graceful-degradation chains for the resilient runner: when an
#: algorithm keeps failing a cell (crash, verification failure, blown
#: round budget), the runner walks this chain left to right.  Chains
#: step from the most engineered implementation toward the simplest
#: sound baseline — ``serial-SF`` is deterministic, loop-free and
#: immune to every schedule-level fault, so it terminates every chain.
FALLBACK_CHAINS: Dict[str, List[str]] = {
    "decomp-arb-hybrid-CC": ["decomp-arb-CC", "serial-SF"],
    "decomp-min-hybrid-CC": ["decomp-min-CC", "serial-SF"],
    "decomp-arb-CC": ["decomp-min-CC", "serial-SF"],
    "decomp-min-CC": ["serial-SF"],
    "parallel-SF-PBBS": ["serial-SF"],
    "parallel-SF-PRM": ["serial-SF"],
    "hybrid-BFS-CC": ["serial-SF"],
    "multistep-CC": ["serial-SF"],
    "label-prop-CC": ["serial-SF"],
    "shiloach-vishkin-CC": ["serial-SF"],
}


def fallback_chain(name: str) -> List[str]:
    """The degradation chain for *name* (requested algorithm first)."""
    if name not in ALGORITHMS:
        raise ParameterError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        )
    return [name, *FALLBACK_CHAINS.get(name, [])]


#: Row order of the paper's Table 2.
PAPER_ALGORITHM_ORDER: List[str] = [
    "serial-SF",
    "decomp-arb-CC",
    "decomp-arb-hybrid-CC",
    "decomp-min-CC",
    "parallel-SF-PBBS",
    "parallel-SF-PRM",
    "hybrid-BFS-CC",
    "multistep-CC",
]

#: Row order of the reproduction's Table 2 artifact: the paper's eight
#: rows plus the engine-enabled Decomp-Min-Hybrid combination.
TABLE2_ALGORITHM_ORDER: List[str] = [
    *PAPER_ALGORITHM_ORDER,
    "decomp-min-hybrid-CC",
]


def build_graph(name: str, scale: str = "small") -> CSRGraph:
    """Build one named input graph at the given size preset."""
    if name not in GRAPHS:
        raise ParameterError(f"unknown graph {name!r}; choose from {sorted(GRAPHS)}")
    return GRAPHS[name].build(scale)


def build_suite(
    scale: str = "small", names: Optional[List[str]] = None
) -> Dict[str, CSRGraph]:
    """Build the whole (or a named subset of the) graph suite."""
    names = names if names is not None else PAPER_GRAPH_ORDER
    return {name: build_graph(name, scale) for name in names}


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up one registered connectivity implementation by name."""
    if name not in ALGORITHMS:
        raise ParameterError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        )
    return ALGORITHMS[name]
