"""Table renderers: the paper's Table 1 (inputs) and Table 2 (times).

Each ``run_*`` function computes the underlying data (returned as plain
dicts so tests and benches can assert on it); each ``format_*`` renders
the paper-shaped ASCII table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import profile_run
from repro.experiments.registry import TABLE2_ALGORITHM_ORDER, build_suite
from repro.graphs.csr import CSRGraph

__all__ = [
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
]


def run_table1(
    scale: str = "small", names: Optional[Sequence[str]] = None
) -> List[Dict[str, object]]:
    """Table 1: input graph sizes (vertices, undirected edges)."""
    suite = build_suite(scale, list(names) if names else None)
    rows = []
    for name, graph in suite.items():
        rows.append(
            {
                "graph": name,
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
            }
        )
    return rows


def format_table1(rows: List[Dict[str, object]]) -> str:
    """Render Table 1 rows in the paper's layout."""
    out = ["Input Graph        Num. Vertices   Num. Edges"]
    for r in rows:
        out.append(
            f"{r['graph']:<18} {r['num_vertices']:>13,} {r['num_edges']:>12,}"
        )
    return "\n".join(out)


def run_table2(
    scale: str = "small",
    graphs: Optional[Dict[str, CSRGraph]] = None,
    algorithms: Optional[Sequence[str]] = None,
    beta: float = 0.2,
    seed: int = 1,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Table 2: simulated times for each implementation on each graph.

    Returns ``{algorithm: {graph: {"1": seconds, "40h": seconds}}}``.
    One real run per cell; both thread columns derive from its
    work/depth profile (DESIGN.md §5).  The default row set is
    :data:`~repro.experiments.registry.TABLE2_ALGORITHM_ORDER` — the
    paper's eight rows plus Decomp-Min-Hybrid.
    """
    graphs = graphs if graphs is not None else build_suite(scale)
    algorithms = list(algorithms) if algorithms else TABLE2_ALGORITHM_ORDER
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for algo in algorithms:
        table[algo] = {}
        for gname, graph in graphs.items():
            kwargs = {"beta": beta, "seed": seed} if algo.startswith("decomp-") else {}
            prof = profile_run(algo, graph, graph_name=gname, verify=False, **kwargs)
            table[algo][gname] = {
                "1": prof.seconds_at(1),
                "40h": prof.seconds_at("40h"),
                "wall": prof.wall_seconds,
                "components": float(prof.result.num_components),
            }
    return table


def format_table2(table: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Render in the paper's layout: (1) and (40h) columns per graph."""
    graphs = list(next(iter(table.values())).keys()) if table else []
    header = f"{'Implementation':<22}" + "".join(
        f"{g:>21}" for g in graphs
    )
    sub = f"{'':<22}" + "".join(f"{'(1)':>11}{'(40h)':>10}" for _ in graphs)
    lines = [header, sub]
    for algo, row in table.items():
        cells = ""
        for g in graphs:
            t1 = row[g]["1"]
            t40 = row[g]["40h"]
            if algo == "serial-SF":
                cells += f"{t1:>11.4g}{'-':>10}"
            else:
                cells += f"{t1:>11.4g}{t40:>10.4g}"
        lines.append(f"{algo:<22}" + cells)
    return "\n".join(lines)
