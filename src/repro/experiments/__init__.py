"""Experiment harness: named suites, run profiles, tables and figures.

Regenerates every table and figure of the paper's evaluation section;
see DESIGN.md §4 for the experiment index and ``benchmarks/`` for the
one-bench-per-artifact entry points.
"""

from repro.experiments.calibration import (
    measure_kind_costs,
    suggest_machine_constants,
)
from repro.experiments.export import (
    export_json,
    export_resilient_table2,
    export_series_csv,
    export_table2_csv,
    to_jsonable,
)
from repro.experiments.figures import (
    ascii_series,
    clear_fig2_cache,
    fig2_thread_sweep,
    fig3_beta_sweep,
    fig4_edges_remaining,
    fig5_breakdown_min,
    fig6_breakdown_arb,
    fig7_breakdown_hybrid,
    fig8_size_scaling,
)
from repro.experiments.harness import (
    RunProfile,
    median_simulated,
    profile_run,
    sweep_seconds,
)
from repro.experiments.registry import (
    ALGORITHMS,
    FALLBACK_CHAINS,
    GRAPHS,
    PAPER_ALGORITHM_ORDER,
    PAPER_GRAPH_ORDER,
    TABLE2_ALGORITHM_ORDER,
    build_graph,
    build_suite,
    fallback_chain,
    get_algorithm,
)
from repro.experiments.tables import (
    format_table1,
    format_table2,
    run_table1,
    run_table2,
)

__all__ = [
    "ALGORITHMS",
    "FALLBACK_CHAINS",
    "GRAPHS",
    "PAPER_ALGORITHM_ORDER",
    "PAPER_GRAPH_ORDER",
    "TABLE2_ALGORITHM_ORDER",
    "RunProfile",
    "ascii_series",
    "build_graph",
    "build_suite",
    "export_json",
    "export_resilient_table2",
    "export_series_csv",
    "export_table2_csv",
    "to_jsonable",
    "fallback_chain",
    "clear_fig2_cache",
    "fig2_thread_sweep",
    "fig3_beta_sweep",
    "fig4_edges_remaining",
    "fig5_breakdown_min",
    "fig6_breakdown_arb",
    "fig7_breakdown_hybrid",
    "fig8_size_scaling",
    "format_table1",
    "format_table2",
    "get_algorithm",
    "measure_kind_costs",
    "median_simulated",
    "profile_run",
    "suggest_machine_constants",
    "run_table1",
    "run_table2",
    "sweep_seconds",
]
