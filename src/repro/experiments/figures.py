"""Figure series builders: the data behind the paper's Figures 2-8.

Each ``fig*`` function returns plain nested dicts/lists (JSON-shaped)
so the benches can print them and the tests can assert on their shapes;
:func:`ascii_series` renders a quick log-scale text plot for terminal
inspection.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import profile_run
from repro.experiments.registry import (
    TABLE2_ALGORITHM_ORDER,
    build_graph,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import random_kregular
from repro.pram.machine import paper_thread_sweep

__all__ = [
    "fig2_thread_sweep",
    "clear_fig2_cache",
    "fig3_beta_sweep",
    "fig4_edges_remaining",
    "fig5_breakdown_min",
    "fig6_breakdown_arb",
    "fig7_breakdown_hybrid",
    "fig8_size_scaling",
    "ascii_series",
    "FIG3_GRAPHS",
    "FIG4_BETAS",
    "BREAKDOWN_GRAPHS",
]

#: The graphs Figures 3-7 plot (paper's subplot choices).
FIG3_GRAPHS: List[str] = ["random", "rMat", "3D-grid", "line"]
BREAKDOWN_GRAPHS: List[str] = ["random", "rMat", "3D-grid", "line"]
#: Figure 4's beta values; the line graph uses a lower range because
#: its decomposition only profits from very small beta.
FIG4_BETAS: List[float] = [0.1, 0.2, 0.3, 0.4, 0.5]
FIG4_BETAS_LINE: List[float] = [0.003, 0.008, 0.02, 0.04, 0.06, 0.08, 0.1, 0.2]

_DECOMP_VARIANTS = ["decomp-arb-CC", "decomp-arb-hybrid-CC", "decomp-min-CC"]

#: Memoized Figure 2 series, keyed per (graph, algorithm) cell so every
#: consumer (the CLI, the report writer, the figure benches) shares one
#: computation of each sweep instead of each keeping a private cache.
_FIG2_CACHE: Dict[tuple, Dict[str, float]] = {}


def clear_fig2_cache() -> None:
    """Drop the memoized Figure 2 sweeps (tests / long-lived sessions)."""
    _FIG2_CACHE.clear()


def fig2_thread_sweep(
    graph: CSRGraph,
    graph_name: str,
    algorithms: Optional[Sequence[str]] = None,
    beta: float = 0.2,
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Figure 2: simulated seconds vs thread count, per implementation.

    Returns ``{algorithm: {thread_label: seconds}}``; serial-SF appears
    as a flat line (its work is sequential by construction), matching
    the paper's horizontal reference.  The default series set is
    :data:`~repro.experiments.registry.TABLE2_ALGORITHM_ORDER`.

    Results are memoized per (graph, algorithm) cell — the graph
    identified by name and size, so a same-named graph at a different
    scale never aliases.  Callers get fresh dict copies and may mutate
    them freely; :func:`clear_fig2_cache` resets the store.
    """
    algorithms = list(algorithms) if algorithms else TABLE2_ALGORITHM_ORDER
    series: Dict[str, Dict[str, float]] = {}
    for algo in algorithms:
        key = (
            graph_name,
            graph.num_vertices,
            graph.num_directed,
            algo,
            beta,
            seed,
        )
        cached = _FIG2_CACHE.get(key)
        if cached is None:
            kwargs = (
                {"beta": beta, "seed": seed} if algo.startswith("decomp-") else {}
            )
            prof = profile_run(
                algo, graph, graph_name=graph_name, verify=False, **kwargs
            )
            cached = prof.sweep(paper_thread_sweep())
            _FIG2_CACHE[key] = cached
        series[algo] = dict(cached)
    return series


def fig3_beta_sweep(
    graph: CSRGraph,
    graph_name: str,
    betas: Optional[Sequence[float]] = None,
    threads: str = "40h",
    seed: int = 1,
) -> Dict[str, Dict[float, float]]:
    """Figure 3: 40-core simulated time vs beta for the three variants.

    Returns ``{variant: {beta: seconds}}``.  The paper's finding: the
    minimum sits between beta = 0.05 and 0.2 — small beta means fewer,
    bigger partitions per level but more BFS rounds; large beta means
    many levels of recursion.
    """
    betas = list(betas) if betas is not None else [
        0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
    ]
    out: Dict[str, Dict[float, float]] = {}
    for variant in _DECOMP_VARIANTS:
        out[variant] = {}
        for beta in betas:
            prof = profile_run(
                variant, graph, graph_name=graph_name, verify=False,
                beta=beta, seed=seed,
            )
            out[variant][beta] = prof.seconds_at(threads)
    return out


def fig4_edges_remaining(
    graph: CSRGraph,
    graph_name: str,
    betas: Optional[Sequence[float]] = None,
    seed: int = 1,
) -> Dict[float, List[int]]:
    """Figure 4: undirected edges entering each CC iteration, per beta.

    Uses decomp-arb-hybrid-CC like the paper.  Returns
    ``{beta: [m_0, m_1, ...]}``; the drop is much sharper than the
    2*beta bound on everything but the line graph because contraction
    merges duplicate edges.
    """
    if betas is None:
        betas = FIG4_BETAS_LINE if graph_name == "line" else FIG4_BETAS
    out: Dict[float, List[int]] = {}
    for beta in betas:
        prof = profile_run(
            "decomp-arb-hybrid-CC", graph, graph_name=graph_name,
            verify=False, beta=beta, seed=seed,
        )
        out[float(beta)] = list(prof.result.edges_per_iteration)
    return out


def _breakdown(
    variant: str,
    phases: Sequence[str],
    graphs: Optional[Sequence[str]],
    scale: str,
    beta: float,
    seed: int,
    threads: str = "40h",
) -> Dict[str, Dict[str, float]]:
    names = list(graphs) if graphs else BREAKDOWN_GRAPHS
    out: Dict[str, Dict[str, float]] = {}
    for name in names:
        graph = build_graph(name, scale)
        prof = profile_run(
            variant, graph, graph_name=name, verify=False, beta=beta, seed=seed
        )
        per_phase = prof.phase_seconds_at(threads)
        out[name] = {p: per_phase.get(p, 0.0) for p in phases}
        leftover = sum(v for k, v in per_phase.items() if k not in phases)
        out[name]["other"] = leftover
    return out


def fig5_breakdown_min(
    graphs: Optional[Sequence[str]] = None,
    scale: str = "small",
    beta: float = 0.2,
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Figure 5: decomp-min-CC 40-core phase breakdown.

    Phases: init / bfsPre / bfsPhase1 / bfsPhase2 / contractGraph; the
    paper sees 80-90 % of time in the two BFS phases, phase 1 heavier.
    """
    return _breakdown(
        "decomp-min-CC",
        ["init", "bfsPre", "bfsPhase1", "bfsPhase2", "contractGraph"],
        graphs, scale, beta, seed,
    )


def fig6_breakdown_arb(
    graphs: Optional[Sequence[str]] = None,
    scale: str = "small",
    beta: float = 0.2,
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Figure 6: decomp-arb-CC breakdown (bfsMain replaces the 2 phases).

    Paper: 55-75 % of time in bfsMain — the single-pass saving over
    decomp-min is exactly here.
    """
    return _breakdown(
        "decomp-arb-CC",
        ["init", "bfsPre", "bfsMain", "contractGraph"],
        graphs, scale, beta, seed,
    )


def fig7_breakdown_hybrid(
    graphs: Optional[Sequence[str]] = None,
    scale: str = "small",
    beta: float = 0.2,
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Figure 7: decomp-arb-hybrid-CC breakdown (sparse/dense/filter).

    Paper: 3D-grid and line never go dense (all time in bfsSparse);
    random and rMat do, paying filterEdges in exchange.
    """
    return _breakdown(
        "decomp-arb-hybrid-CC",
        ["init", "bfsPre", "bfsSparse", "bfsDense", "filterEdges", "contractGraph"],
        graphs, scale, beta, seed,
    )


def fig8_size_scaling(
    edge_counts: Optional[Sequence[int]] = None,
    threads: str = "40h",
    beta: float = 0.2,
    seed: int = 1,
) -> Dict[int, float]:
    """Figure 8: decomp-arb-hybrid-CC time vs problem size (random graphs).

    The paper sweeps m = 5e7..5e8 with n = m/5; we keep n = m/5 and
    scale m down.  Returns ``{num_generated_edges: seconds}`` — the
    series should be near-linear in m.
    """
    if edge_counts is None:
        edge_counts = [100_000, 200_000, 300_000, 400_000, 500_000]
    out: Dict[int, float] = {}
    for m in edge_counts:
        n = max(m // 5, 10)
        graph = random_kregular(n, 5, seed=seed)
        prof = profile_run(
            "decomp-arb-hybrid-CC", graph, graph_name=f"random-m{m}",
            verify=False, beta=beta, seed=seed,
        )
        out[int(m)] = prof.seconds_at(threads)
    return out


def ascii_series(
    series: Dict[str, Dict], width: int = 60, log: bool = True
) -> str:
    """Tiny terminal rendering of ``{name: {x: y}}`` series (bars per x)."""
    lines: List[str] = []
    for name, points in series.items():
        lines.append(f"{name}:")
        vals = list(points.values())
        finite = [v for v in vals if v and v > 0]
        lo = min(finite) if finite else 1.0
        hi = max(finite) if finite else 1.0
        for x, y in points.items():
            if log and y and y > 0 and hi > lo:
                frac = (math.log(y) - math.log(lo)) / (math.log(hi) - math.log(lo))
            elif hi > lo:
                frac = (y - lo) / (hi - lo)
            else:
                frac = 1.0
            bar = "#" * max(1, int(frac * width))
            if isinstance(y, float):
                lines.append(f"  {str(x):>8} | {bar} {y:.4g}")
            else:
                lines.append(f"  {str(x):>8} | {bar} {y}")
    return "\n".join(lines)
