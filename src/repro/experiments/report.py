"""One-shot reproduction report: every artifact into a directory.

``generate_report(outdir, scale)`` regenerates Table 1, Table 2 and
Figures 2-8, writes each as JSON (plus Table 2 and Figure 2 as CSV for
plotting), and produces a human-readable ``summary.md`` with the
headline shape checks — a self-contained record of one reproduction
run, the programmatic counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Union

from repro.experiments.export import (
    export_json,
    export_series_csv,
    export_table2_csv,
)
from repro.experiments.figures import (
    FIG3_GRAPHS,
    fig2_thread_sweep,
    fig3_beta_sweep,
    fig4_edges_remaining,
    fig5_breakdown_min,
    fig6_breakdown_arb,
    fig7_breakdown_hybrid,
    fig8_size_scaling,
)
from repro.experiments.registry import PAPER_GRAPH_ORDER, build_suite
from repro.experiments.tables import (
    format_table1,
    format_table2,
    run_table1,
    run_table2,
)

__all__ = ["generate_report"]

PathLike = Union[str, os.PathLike]


def _speedup_lines(table) -> str:
    lines = []
    for algo in ("decomp-arb-CC", "decomp-arb-hybrid-CC", "decomp-min-CC"):
        sp = {
            g: table[algo][g]["1"] / table[algo][g]["40h"] for g in table[algo]
        }
        band = f"{min(sp.values()):.1f}-{max(sp.values()):.1f}x"
        lines.append(f"* {algo}: self-relative speedup {band} (paper: 18-39x)")
    return "\n".join(lines)


def generate_report(
    outdir: PathLike, scale: str = "small", beta: float = 0.2, seed: int = 1
) -> Dict[str, str]:
    """Regenerate every artifact into *outdir*; returns {artifact: path}."""
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    written: Dict[str, str] = {}

    suite = build_suite(scale)

    # --- tables -------------------------------------------------------
    t1 = run_table1(scale)
    export_json(t1, out / "table1.json")
    written["table1"] = str(out / "table1.json")

    t2 = run_table2(graphs=suite, beta=beta, seed=seed)
    export_json(t2, out / "table2.json")
    export_table2_csv(t2, out / "table2.csv")
    written["table2"] = str(out / "table2.json")

    # --- figures ------------------------------------------------------
    fig2 = {
        g: fig2_thread_sweep(suite[g], g, beta=beta, seed=seed)
        for g in PAPER_GRAPH_ORDER
    }
    export_json(fig2, out / "figure2.json")
    for g, series in fig2.items():
        export_series_csv(
            series, out / f"figure2_{g}.csv", x_name="threads", y_name="seconds"
        )
    written["figure2"] = str(out / "figure2.json")

    fig3 = {
        g: fig3_beta_sweep(suite[g], g, seed=seed) for g in FIG3_GRAPHS
    }
    export_json(fig3, out / "figure3.json")
    written["figure3"] = str(out / "figure3.json")

    fig4 = {
        g: fig4_edges_remaining(suite[g], g, seed=seed) for g in FIG3_GRAPHS
    }
    export_json(fig4, out / "figure4.json")
    written["figure4"] = str(out / "figure4.json")

    for name, builder in (
        ("figure5", fig5_breakdown_min),
        ("figure6", fig6_breakdown_arb),
        ("figure7", fig7_breakdown_hybrid),
    ):
        data = builder(scale=scale, beta=beta, seed=seed)
        export_json(data, out / f"{name}.json")
        written[name] = str(out / f"{name}.json")

    fig8 = fig8_size_scaling(seed=seed, beta=beta)
    export_json(fig8, out / "figure8.json")
    written["figure8"] = str(out / "figure8.json")

    # --- summary ------------------------------------------------------
    summary = [
        "# Reproduction report",
        "",
        f"scale: `{scale}`, beta: {beta}, seed: {seed}",
        "",
        "## Table 1",
        "```",
        format_table1(t1),
        "```",
        "## Table 2 (simulated seconds)",
        "```",
        format_table2(t2),
        "```",
        "## Headline shape checks",
        _speedup_lines(t2),
        "",
        "Artifacts: " + ", ".join(sorted(written)),
        "See EXPERIMENTS.md for the paper-vs-measured discussion.",
    ]
    (out / "summary.md").write_text("\n".join(summary))
    written["summary"] = str(out / "summary.md")
    return written
