"""The differential oracle: decide whether one fuzz case passed.

One :func:`run_case` executes a case's algorithm under every configured
execution backend and cross-checks every result the repo knows how to
question:

* **serial reference** — the labeling must induce the same partition as
  :func:`repro.analysis.verify.ground_truth_labels` (checked through
  :func:`verify_labeling`, so a failure carries the structured reason);
* **backend differential** — every backend the case configures
  (``reference``, ``fast``, and the chunked ``parallel`` at the case's
  worker count) must produce bit-identical labelings *and* identical
  (work, depth) charges (the parity contract, here enforced on
  adversarial inputs instead of the 116 golden fixtures);
* **sanitizer** — optionally, the run executes under the PRAM race
  sanitizer; a race on a clean run is a finding;
* **fault discipline** — when the case arms a
  :class:`~repro.resilience.faults.FaultPlan`, the contract flips: a
  corrupting fault must be *detected* (verifier, sanitizer or round
  budget), a benign fault must change nothing observable, and nothing
  may ever escalate past :class:`~repro.errors.ReproError` into a raw
  crash.

Failures come back as structured :class:`Finding` records; the shrinker
uses the finding *kinds* as its preservation predicate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.verify import ground_truth_labels, verify_labeling
from repro.engine.backend import BACKENDS
from repro.errors import (
    ConvergenceError,
    ReproError,
    SanitizerError,
    VerificationError,
)
from repro.fuzz.case import FuzzCase, build_case_graph
from repro.fuzz.planted import PlantedBug, get_planted_bug
from repro.graphs.csr import CSRGraph
from repro.resilience.faults import FaultPlan
from repro.runtime.session import execute_profiled

__all__ = ["Finding", "CaseOutcome", "run_case", "BENIGN_FAULT_KINDS"]

#: Fault kinds that are provably answer-preserving: any labeling
#: produced under them must still verify (docs/robustness.md).
BENIGN_FAULT_KINDS = frozenset({"cas_flip", "shift_perturb"})


@dataclass(frozen=True)
class Finding:
    """One oracle violation.

    ``kind`` is the machine-readable class the shrinker preserves:
    ``wrong-labeling``, ``backend-divergence``, ``cost-divergence``,
    ``race``, ``benign-fault-corruption``, ``unexpected-error``,
    ``crash`` or ``generator-crash``.
    """

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail}"


@dataclass
class CaseOutcome:
    """Everything :func:`run_case` learned about one case."""

    case: FuzzCase
    findings: List[Finding] = field(default_factory=list)
    #: True when an armed fault was caught by a detection layer (the
    #: *expected* outcome for corrupting faults).
    detected: bool = False
    #: Which layer detected it (``verifier``/``sanitizer``/``budget``).
    detected_by: Optional[str] = None
    num_components: Optional[int] = None

    @property
    def passed(self) -> bool:
        return not self.findings

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({f.kind for f in self.findings}))


def _fault_kinds(spec: str) -> frozenset:
    """The fault kinds named by a spec string (grammar in faults.py)."""
    return frozenset(
        clause.partition(":")[0].strip()
        for clause in spec.split(";")
        if clause.strip()
    )


def _algorithm_kwargs(case: FuzzCase) -> Dict[str, object]:
    if case.config.algorithm.startswith("decomp-"):
        return {"beta": case.config.beta, "seed": case.config.seed}
    return {}


def _execute(
    case: FuzzCase,
    graph: CSRGraph,
    backend: str,
    fault_plan: Optional[FaultPlan],
    bug: Optional[PlantedBug],
) -> Tuple[np.ndarray, float, float]:
    """Run the case's algorithm once; returns (labels, work, depth).

    Raises whatever the run raises — classification happens in
    :func:`run_case`.
    """
    prof = execute_profiled(
        case.config.algorithm,
        graph,
        graph_name=case.case_id or "fuzz",
        verify=False,
        fault_plan=fault_plan,
        backend=backend,
        sanitize=case.config.sanitize,
        workers=case.config.workers,
        **_algorithm_kwargs(case),
    )
    labels = np.asarray(prof.result.labels)
    if bug is not None and case.config.algorithm.startswith(bug.applies_to):
        labels = bug.corrupt(graph, labels)
    return labels, prof.tracker.total_work(), prof.tracker.total_depth()


def _check_labeling(
    outcome: CaseOutcome,
    graph: CSRGraph,
    labels: np.ndarray,
    reference: np.ndarray,
    who: str,
) -> None:
    try:
        verify_labeling(graph, labels, reference=reference)
    except VerificationError as exc:
        outcome.findings.append(
            Finding(
                "wrong-labeling",
                f"{who}: {exc} [reason={exc.reason}]",
            )
        )


def run_case(case: FuzzCase, planted: Optional[str] = None) -> CaseOutcome:
    """Execute one case against the full differential oracle.

    ``planted`` (or ``case.config.planted``) names a deliberate bug
    from :mod:`repro.fuzz.planted` applied to matching algorithms —
    the self-test hook proving the pipeline detects what it should.
    """
    from repro.runtime.context import current_context

    metrics = current_context().metrics
    metrics.incr("fuzz.cases")
    outcome = CaseOutcome(case=case)
    bug_name = planted or case.config.planted
    bug = get_planted_bug(bug_name) if bug_name else None

    try:
        graph = build_case_graph(case.graph)
    except Exception as exc:  # noqa: BLE001 - the oracle classifies everything
        outcome.findings.append(
            Finding("generator-crash", f"building the input graph: {exc!r}")
        )
        return outcome
    reference = ground_truth_labels(graph)

    if case.config.fault is not None:
        _run_fault_case(outcome, case, graph, reference, bug)
        return outcome

    runs: Dict[str, Tuple[np.ndarray, float, float]] = {}
    for backend in case.config.backends:
        if backend not in BACKENDS:
            outcome.findings.append(
                Finding("unexpected-error", f"unknown backend {backend!r}")
            )
            continue
        try:
            runs[backend] = _execute(case, graph, backend, None, bug)
        except SanitizerError as exc:
            outcome.findings.append(
                Finding("race", f"{backend}: sanitizer flagged a clean run: {exc}")
            )
        except ReproError as exc:
            outcome.findings.append(
                Finding(
                    "unexpected-error",
                    f"{backend}: {type(exc).__name__}: {exc}",
                )
            )
        except Exception as exc:  # noqa: BLE001 - raw crash IS the finding
            outcome.findings.append(
                Finding("crash", f"{backend}: {type(exc).__name__}: {exc!r}")
            )

    for backend, (labels, _, _) in runs.items():
        _check_labeling(outcome, graph, labels, reference, backend)
    if runs:
        first_backend = next(iter(runs))
        outcome.num_components = int(np.unique(runs[first_backend][0]).size)
    if len(runs) >= 2:
        names = list(runs)
        base_labels, base_work, base_depth = runs[names[0]]
        for other in names[1:]:
            metrics.incr("fuzz.comparisons")
            labels, work, depth = runs[other]
            if not np.array_equal(base_labels, labels):
                diff = int(np.count_nonzero(base_labels != labels))
                outcome.findings.append(
                    Finding(
                        "backend-divergence",
                        f"{names[0]} vs {other}: labelings differ at "
                        f"{diff} vertices",
                    )
                )
            if not (
                math.isclose(base_work, work, rel_tol=1e-9, abs_tol=1e-6)
                and math.isclose(base_depth, depth, rel_tol=1e-9, abs_tol=1e-6)
            ):
                outcome.findings.append(
                    Finding(
                        "cost-divergence",
                        f"{names[0]} charged (work={base_work}, "
                        f"depth={base_depth}) but {other} charged "
                        f"(work={work}, depth={depth})",
                    )
                )
    return outcome


def _run_fault_case(
    outcome: CaseOutcome,
    case: FuzzCase,
    graph: CSRGraph,
    reference: np.ndarray,
    bug: Optional[PlantedBug],
) -> None:
    """The fault-armed contract: corruption must be detected, benign
    schedules must change nothing, nothing may crash raw."""
    assert case.config.fault is not None
    backend = case.config.backends[0]
    kinds = _fault_kinds(case.config.fault)
    benign_only = kinds <= BENIGN_FAULT_KINDS
    try:
        plan = FaultPlan.parse(
            case.config.fault, seed=case.config.fault_seed, sabotage_runs=1
        )
    except ReproError as exc:
        outcome.findings.append(
            Finding("unexpected-error", f"fault spec rejected: {exc}")
        )
        return
    try:
        labels, _, _ = _execute(case, graph, backend, plan, bug)
    except SanitizerError:
        outcome.detected = True
        outcome.detected_by = "sanitizer"
        return
    except ConvergenceError:
        outcome.detected = True
        outcome.detected_by = "budget"
        return
    except ReproError as exc:
        outcome.findings.append(
            Finding(
                "unexpected-error",
                f"{backend} under fault {case.config.fault!r}: "
                f"{type(exc).__name__}: {exc}",
            )
        )
        return
    except Exception as exc:  # noqa: BLE001 - raw crash IS the finding
        outcome.findings.append(
            Finding(
                "crash",
                f"{backend} under fault {case.config.fault!r}: "
                f"{type(exc).__name__}: {exc!r}",
            )
        )
        return
    outcome.num_components = int(np.unique(labels).size)
    try:
        verify_labeling(graph, labels, reference=reference)
    except VerificationError as exc:
        if benign_only:
            outcome.findings.append(
                Finding(
                    "benign-fault-corruption",
                    f"answer-preserving fault {case.config.fault!r} "
                    f"corrupted the labeling: {exc} [reason={exc.reason}]",
                )
            )
        else:
            outcome.detected = True
            outcome.detected_by = "verifier"
