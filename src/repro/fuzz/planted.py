"""Deliberately planted kernel bugs: ground truth for the fuzzer itself.

A fuzzer you cannot watch find a bug is a fuzzer you cannot trust.  The
bugs here are deterministic corruptions applied to an algorithm's
labeling *as if* a kernel had mis-resolved a race — the same observable
effect as a real scheduling bug, but switchable, so the test suite (and
``repro fuzz --planted``) can assert the whole pipeline end to end:
the generator samples an input that triggers the bug, the oracle flags
it, and the shrinker reduces it to a handful of vertices.

Each bug is a pure function of (graph, labels); no ambient randomness,
so a planted failure replays bit-for-bit from its corpus file (cases
carry the planted-bug name in their config).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph

__all__ = ["PlantedBug", "PLANTED_BUGS", "get_planted_bug"]


@dataclass(frozen=True)
class PlantedBug:
    """One switchable labeling corruption emulating a kernel bug.

    ``applies_to`` is an algorithm-name prefix; the oracle corrupts only
    matching algorithms (planting a bug in one implementation is what
    makes the differential cross-check light up instead of every row
    failing identically).
    """

    name: str
    description: str
    applies_to: str
    corrupt: Callable[[CSRGraph, np.ndarray], np.ndarray]


def _merge_components(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    """Fuse the two lowest-numbered components into one.

    Emulates a lost inter-partition edge check during contraction: two
    distinct components come back under one label.  Fires on any input
    with >= 2 components — the minimal trigger is two isolated
    vertices, which is exactly what the shrinker should find.
    """
    uniq = np.unique(labels)
    if uniq.size < 2:
        return labels
    out = labels.copy()
    out[out == uniq[1]] = uniq[0]
    return out


def _hub_mislabel(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    """Give the first vertex of degree >= 3 a private label.

    Emulates a dropped frontier claim on a contended high-degree
    vertex: the hub ends up split out of its own component.  Minimal
    trigger: a 4-vertex star.
    """
    degrees = graph.degrees
    hubs = np.flatnonzero(degrees >= 3)
    if hubs.size == 0:
        return labels
    out = labels.copy()
    out[int(hubs[0])] = graph.num_vertices
    return out


#: name -> bug.  All planted bugs target the decomp variants — the
#: implementations whose engine kernels the fuzzer exists to guard.
PLANTED_BUGS: Dict[str, PlantedBug] = {
    "merge-components": PlantedBug(
        name="merge-components",
        description="contraction loses a component boundary: the two "
        "lowest components merge under one label",
        applies_to="decomp-",
        corrupt=_merge_components,
    ),
    "hub-mislabel": PlantedBug(
        name="hub-mislabel",
        description="a degree>=3 vertex loses its CAS claim and splits "
        "out of its component under a private label",
        applies_to="decomp-",
        corrupt=_hub_mislabel,
    ),
}


def get_planted_bug(name: str) -> PlantedBug:
    """Look up a planted bug by name."""
    if name not in PLANTED_BUGS:
        raise ParameterError(
            f"unknown planted bug {name!r}; choose from {sorted(PLANTED_BUGS)}"
        )
    return PLANTED_BUGS[name]
