"""The replayable crash corpus: shrunk failures as permanent artifacts.

Every failure the fuzzer shrinks is persisted as one JSON file (atomic
write via :mod:`repro.fsutil` — a crash mid-save never leaves a torn
repro).  The checked-in corpus lives in ``tests/fuzz_corpus/`` and is
replayed by ``tests/test_fuzz.py`` on every backend under the
sanitizer, so each found bug becomes a regression test the moment its
file lands; ``repro replay <case.json>`` replays one file from the
shell (docs/robustness.md describes the triage workflow).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.errors import ParameterError
from repro.fsutil import atomic_write_text
from repro.fuzz.case import FuzzCase

__all__ = [
    "save_case",
    "load_case",
    "iter_corpus",
    "corpus_paths",
    "default_corpus_dir",
]

PathLike = Union[str, os.PathLike]


def default_corpus_dir() -> Path:
    """The checked-in corpus directory when run from a source checkout.

    Resolves ``tests/fuzz_corpus/`` relative to the repository root
    (two levels above the package); falls back to the current working
    directory's ``tests/fuzz_corpus`` for installed copies.
    """
    here = Path(__file__).resolve()
    for base in (here.parents[3], Path.cwd()):
        candidate = base / "tests" / "fuzz_corpus"
        if candidate.is_dir():
            return candidate
    return Path.cwd() / "tests" / "fuzz_corpus"


def save_case(
    directory: PathLike,
    case: FuzzCase,
    kinds: Tuple[str, ...] = (),
    note: str = "",
) -> Path:
    """Persist one case as ``<dir>/<kind>-<hash>.json`` (atomic).

    The filename keys on the case *content* hash, so re-finding the
    same shrunk failure overwrites rather than duplicates; the finding
    kinds and a free-form note ride along for triage.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    slug = kinds[0] if kinds else "case"
    path = directory / f"{slug}-{case.content_hash()}.json"
    payload = case.to_json()
    if kinds:
        payload["findings"] = list(kinds)
    if note:
        payload["note"] = note
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: PathLike) -> FuzzCase:
    """Load one corpus file; raises :class:`ParameterError` when unusable."""
    p = Path(path)
    try:
        data = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ParameterError(f"cannot read fuzz case {p}: {exc}") from exc
    if not isinstance(data, dict):
        raise ParameterError(f"{p} is not a fuzz case file")
    return FuzzCase.from_json(data)


def corpus_paths(directory: Optional[PathLike] = None) -> List[Path]:
    """The sorted case files of a corpus directory (default: checked-in)."""
    d = Path(directory) if directory is not None else default_corpus_dir()
    if not d.is_dir():
        return []
    return sorted(p for p in d.iterdir() if p.suffix == ".json")


def iter_corpus(
    directory: Optional[PathLike] = None,
) -> Iterator[Tuple[Path, FuzzCase]]:
    """Yield ``(path, case)`` for every case in a corpus directory."""
    for path in corpus_paths(directory):
        yield path, load_case(path)
