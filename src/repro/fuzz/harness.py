"""The fuzz loop: sample, judge, shrink, persist, report.

:func:`fuzz_run` drives the whole differential-fuzzing subsystem: a
seeded :class:`~repro.fuzz.generator.CaseGenerator` streams cases into
the :mod:`~repro.fuzz.oracle`, failures are delta-debugged by the
:mod:`~repro.fuzz.shrink` module and persisted to a corpus directory as
replayable JSON repros.  The returned :class:`FuzzReport` is
deterministic for a given (seed, max_cases): it carries no timestamps
or wall-clock readings, so two identical invocations produce identical
reports (the acceptance contract, pinned by ``tests/test_fuzz.py``).

The wall clock appears in exactly one role — the ``time_budget``
stopping condition for CI smoke jobs — which is why this module (alone
in the fuzz package) is carved out of reprolint's RL004 wall-clock
rule, like the experiment harness before it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.fuzz.corpus import save_case
from repro.fuzz.generator import CaseGenerator
from repro.fuzz.oracle import run_case
from repro.fuzz.planted import get_planted_bug
from repro.fuzz.shrink import shrink_case

__all__ = ["FuzzFailure", "FuzzReport", "fuzz_run"]

PathLike = Union[str, "Path"]


@dataclass
class FuzzFailure:
    """One failing case, as the report records it."""

    case_id: str
    kinds: Tuple[str, ...]
    detail: str
    shrunk_vertices: Optional[int] = None
    shrunk_edges: Optional[int] = None
    repro_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Deterministic summary of one fuzz session."""

    seed: int
    cases_run: int = 0
    cases_planned: int = 0
    detections: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    stopped_by_budget: bool = False
    algorithm_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "cases_run": self.cases_run,
            "cases_planned": self.cases_planned,
            "detections": self.detections,
            "stopped_by_budget": self.stopped_by_budget,
            "algorithm_counts": dict(sorted(self.algorithm_counts.items())),
            "failures": [
                {
                    "case_id": f.case_id,
                    "kinds": list(f.kinds),
                    "detail": f.detail,
                    "shrunk_vertices": f.shrunk_vertices,
                    "shrunk_edges": f.shrunk_edges,
                    "repro_path": f.repro_path,
                }
                for f in self.failures
            ],
        }

    def format_lines(self) -> List[str]:
        """Human-readable report (deterministic, no timings)."""
        lines = [
            f"fuzz seed  : {self.seed}",
            f"cases      : {self.cases_run} run / {self.cases_planned} planned"
            + (" (stopped by time budget)" if self.stopped_by_budget else ""),
            f"detections : {self.detections} injected faults caught",
            f"failures   : {len(self.failures)}",
        ]
        for f in self.failures:
            size = (
                f" (shrunk to {f.shrunk_vertices}v/{f.shrunk_edges}e)"
                if f.shrunk_vertices is not None
                else ""
            )
            lines.append(f"  {f.case_id} [{', '.join(f.kinds)}]{size}")
            lines.append(f"    {f.detail}")
            if f.repro_path:
                lines.append(f"    repro: {f.repro_path}")
        return lines


def fuzz_run(
    seed: int,
    max_cases: int = 100,
    time_budget: Optional[float] = None,
    shrink: bool = True,
    planted: Optional[str] = None,
    corpus_dir: Optional[PathLike] = None,
    shrink_budget: int = 2000,
) -> FuzzReport:
    """Run one fuzz session; returns the (deterministic) report.

    Parameters
    ----------
    seed:
        Case-stream seed; the whole session is a pure function of it
        (plus ``max_cases``) unless the time budget trips first.
    max_cases:
        Number of generated cases to judge.
    time_budget:
        Optional wall-clock cap in seconds (CI smoke); crossing it
        stops *between* cases, never mid-case.
    shrink:
        Delta-debug failing cases down to minimal repros.
    planted:
        Name of a deliberate bug (:mod:`repro.fuzz.planted`) applied to
        matching algorithms — the pipeline's self-test hook.
    corpus_dir:
        Where shrunk repros are written (one JSON file per failure);
        ``None`` keeps everything in memory.
    shrink_budget:
        Max oracle evaluations per shrink search.
    """
    if planted is not None:
        get_planted_bug(planted)  # fail fast on typos
    generator = CaseGenerator(seed)
    report = FuzzReport(seed=int(seed), cases_planned=int(max_cases))
    deadline = (
        time.monotonic() + float(time_budget) if time_budget is not None else None
    )
    for index in range(int(max_cases)):
        if deadline is not None and time.monotonic() >= deadline:
            report.stopped_by_budget = True
            break
        case = generator.case(index)
        report.algorithm_counts[case.config.algorithm] = (
            report.algorithm_counts.get(case.config.algorithm, 0) + 1
        )
        outcome = run_case(case, planted=planted)
        report.cases_run += 1
        if outcome.detected:
            report.detections += 1
        if outcome.passed:
            continue
        detail = "; ".join(str(f) for f in outcome.findings[:3])
        failure = FuzzFailure(
            case_id=case.case_id, kinds=outcome.kinds(), detail=detail
        )
        final_case = case
        if shrink:
            shrunk = shrink_case(
                case, planted=planted, max_evaluations=shrink_budget
            )
            if shrunk.kinds:
                final_case = shrunk.case
                if shrunk.case.graph.kind == "edges":
                    failure.shrunk_vertices = shrunk.case.graph.num_vertices
                    failure.shrunk_edges = len(shrunk.case.graph.edges)
        if corpus_dir is not None:
            if planted is not None:
                # Keep the planted bug in the repro so the file replays
                # its failure standalone.
                final_case = final_case.with_config(
                    replace(final_case.config, planted=planted)
                )
            path = save_case(
                Path(corpus_dir),
                final_case,
                kinds=failure.kinds,
                note=f"found by repro fuzz --seed {seed} (case {case.case_id})",
            )
            failure.repro_path = str(path)
        report.failures.append(failure)
    return report
