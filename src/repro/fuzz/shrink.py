"""Delta-debugging shrinker: reduce a failing case to its minimal core.

Given a case the oracle rejects, :func:`shrink_case` searches for the
smallest case that *still fails the same way* (the preservation
predicate is overlap on finding kinds — a ``wrong-labeling`` repro must
stay a ``wrong-labeling`` repro, not mutate into a crash):

1. **materialize** — family-generated graphs are flattened to explicit
   edge lists so structural reduction has something to cut;
2. **edge ddmin** — Zeller's complement-removal delta debugging over
   the edge list;
3. **vertex elimination** — individual vertices (with incident edges)
   are removed and ids compacted while the failure survives;
4. **config minimization** — the fault plan, sanitizer arming,
   secondary backend and non-default beta/seed are dropped one at a
   time when the failure does not need them.

Every candidate evaluation is one full oracle run, so the whole search
is deterministic; a global evaluation budget bounds the worst case and
the best shrunk case so far is returned when it trips.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.fuzz.case import CaseConfig, CaseGraph, FuzzCase, build_case_graph
from repro.fuzz.oracle import run_case
from repro.graphs.ops import edges_as_undirected_pairs

__all__ = ["ShrinkResult", "shrink_case"]

Edge = Tuple[int, int]


@dataclass
class ShrinkResult:
    """The shrunk case plus the search's bookkeeping."""

    case: FuzzCase
    kinds: Tuple[str, ...]
    evaluations: int
    original_edges: int
    original_vertices: int

    @property
    def num_vertices(self) -> int:
        return (
            self.case.graph.num_vertices
            if self.case.graph.kind == "edges"
            else build_case_graph(self.case.graph).num_vertices
        )

    @property
    def num_edges(self) -> int:
        return len(self.case.graph.edges) if self.case.graph.kind == "edges" else -1


class _Budget:
    """Counts oracle evaluations; the search stops when exhausted."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _still_fails(
    case: FuzzCase,
    target_kinds: frozenset,
    planted: Optional[str],
    budget: _Budget,
) -> bool:
    if not budget.spend():
        return False
    outcome = run_case(case, planted=planted)
    return bool(target_kinds & set(outcome.kinds()))


def _ddmin_edges(
    case: FuzzCase,
    edges: List[Edge],
    num_vertices: int,
    fails: Callable[[FuzzCase], bool],
) -> List[Edge]:
    """Classic ddmin (complement removal) over the edge list."""

    def candidate(subset: Sequence[Edge]) -> FuzzCase:
        return case.with_graph(
            CaseGraph(
                kind="edges", num_vertices=num_vertices, edges=tuple(subset)
            )
        )

    if edges and fails(candidate([])):
        return []
    granularity = 2
    while len(edges) >= 2:
        chunk = max(1, len(edges) // granularity)
        reduced = False
        start = 0
        while start < len(edges):
            complement = edges[:start] + edges[start + chunk :]
            if complement and len(complement) < len(edges) and fails(
                candidate(complement)
            ):
                edges = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            start += chunk
        if not reduced:
            if granularity >= len(edges):
                break
            granularity = min(len(edges), granularity * 2)
    return edges


def _drop_vertices(
    case: FuzzCase,
    edges: List[Edge],
    num_vertices: int,
    fails: Callable[[FuzzCase], bool],
) -> Tuple[List[Edge], int]:
    """Remove single vertices (compacting ids) while the failure holds."""

    def candidate(es: Sequence[Edge], n: int) -> FuzzCase:
        return case.with_graph(
            CaseGraph(kind="edges", num_vertices=n, edges=tuple(es))
        )

    changed = True
    while changed and num_vertices > 0:
        changed = False
        for v in range(num_vertices - 1, -1, -1):
            pruned = [
                (u - (u > v), w - (w > v))
                for u, w in edges
                if u != v and w != v
            ]
            if fails(candidate(pruned, num_vertices - 1)):
                edges = pruned
                num_vertices -= 1
                changed = True
                break
    return edges, num_vertices


def _minimize_config(
    case: FuzzCase, fails: Callable[[FuzzCase], bool]
) -> FuzzCase:
    """Drop configuration complexity the failure does not depend on.

    Trials are re-derived from the *current* config after every
    accepted simplification — deriving them all from the original
    would let a later accepted trial silently revert earlier ones.
    """
    changed = True
    while changed:
        changed = False
        cfg = case.config
        trials: List[CaseConfig] = []
        if cfg.fault is not None:
            trials.append(replace(cfg, fault=None, fault_seed=0))
        if cfg.sanitize:
            trials.append(replace(cfg, sanitize=False))
        if len(cfg.backends) > 1:
            for backend in cfg.backends:
                trials.append(replace(cfg, backends=(backend,)))
        if cfg.beta != 0.2:
            trials.append(replace(cfg, beta=0.2))
        if cfg.seed != 1:
            trials.append(replace(cfg, seed=1))
        for trial in trials:
            candidate = case.with_config(trial)
            if fails(candidate):
                case = candidate
                changed = True
                break
    return case


def shrink_case(
    case: FuzzCase,
    planted: Optional[str] = None,
    max_evaluations: int = 2000,
) -> ShrinkResult:
    """Reduce *case* to a minimal case failing with the same kinds.

    The input case must fail; if it does not (or the budget is zero)
    the original case comes back unchanged.
    """
    budget = _Budget(max_evaluations)
    baseline = run_case(case, planted=planted)
    original_graph = build_case_graph(case.graph)
    original_vertices = original_graph.num_vertices
    original_edges = original_graph.num_edges
    target_kinds = frozenset(baseline.kinds())
    if not target_kinds:
        return ShrinkResult(
            case=case,
            kinds=(),
            evaluations=0,
            original_edges=original_edges,
            original_vertices=original_vertices,
        )

    def fails(candidate: FuzzCase) -> bool:
        return _still_fails(candidate, target_kinds, planted, budget)

    # 1. Materialize family graphs to an explicit edge list (only kept
    #    when the failure survives re-expression).
    if case.graph.kind == "family":
        src, dst = edges_as_undirected_pairs(original_graph)
        flat = CaseGraph(
            kind="edges",
            num_vertices=original_vertices,
            edges=tuple(
                (int(u), int(v)) for u, v in zip(src.tolist(), dst.tolist())
            ),
        )
        candidate = case.with_graph(flat)
        if fails(candidate):
            case = candidate

    # 2-3. Structural reduction (explicit-edge cases only).
    if case.graph.kind == "edges":
        edges = list(case.graph.edges)
        n = case.graph.num_vertices
        edges = _ddmin_edges(case, edges, n, fails)
        case = case.with_graph(
            CaseGraph(kind="edges", num_vertices=n, edges=tuple(edges))
        )
        edges, n = _drop_vertices(case, edges, n, fails)
        case = case.with_graph(
            CaseGraph(kind="edges", num_vertices=n, edges=tuple(edges))
        )

    # 4. Configuration minimization.
    case = _minimize_config(case, fails)

    final = run_case(case, planted=planted)
    return ShrinkResult(
        case=replace(case, note=case.note or "shrunk by repro.fuzz.shrink"),
        kinds=final.kinds(),
        evaluations=budget.used,
        original_edges=original_edges,
        original_vertices=original_vertices,
    )
