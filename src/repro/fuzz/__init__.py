"""Differential fuzzing for the connectivity stack (docs/robustness.md).

The repo's five interchangeable implementations, two execution
backends, PRAM race sanitizer and labeling verifier together form a
differential oracle; this package drives adversarial, seed-determined
inputs through it, delta-debugs every failure to a minimal repro, and
persists the result as a replayable crash corpus
(``tests/fuzz_corpus/``).  Shell entry points: ``repro fuzz`` and
``repro replay``.
"""

from repro.fuzz.case import (
    CASE_FORMAT,
    CaseConfig,
    CaseGraph,
    FuzzCase,
    build_case_graph,
)
from repro.fuzz.corpus import (
    corpus_paths,
    default_corpus_dir,
    iter_corpus,
    load_case,
    save_case,
)
from repro.fuzz.generator import FUZZ_ALGORITHMS, CaseGenerator
from repro.fuzz.harness import FuzzFailure, FuzzReport, fuzz_run
from repro.fuzz.oracle import BENIGN_FAULT_KINDS, CaseOutcome, Finding, run_case
from repro.fuzz.planted import PLANTED_BUGS, PlantedBug, get_planted_bug
from repro.fuzz.shrink import ShrinkResult, shrink_case

__all__ = [
    "CASE_FORMAT",
    "CaseConfig",
    "CaseGraph",
    "FuzzCase",
    "build_case_graph",
    "corpus_paths",
    "default_corpus_dir",
    "iter_corpus",
    "load_case",
    "save_case",
    "FUZZ_ALGORITHMS",
    "CaseGenerator",
    "FuzzFailure",
    "FuzzReport",
    "fuzz_run",
    "BENIGN_FAULT_KINDS",
    "CaseOutcome",
    "Finding",
    "run_case",
    "PLANTED_BUGS",
    "PlantedBug",
    "get_planted_bug",
    "ShrinkResult",
    "shrink_case",
]
