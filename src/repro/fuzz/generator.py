"""Seed-driven case sampling: the fuzzer's adversarial input stream.

A :class:`CaseGenerator` is a pure function of its seed: case *i* is
derived from ``default_rng((seed, i))``, so the stream is identical
across runs, platforms and interruptions (the acceptance contract:
``repro fuzz --seed 7 --max-cases 200`` twice yields the same cases).

The sampled distribution is deliberately adversarial rather than
uniform (Liu-Tarjan: concurrent labeling algorithms hide
schedule-dependent bugs that only structured instances surface):

* shape families — paths, stars, cliques, lollipops and
  bridged-cliques (single-edge sensitivity);
* canonicalization attacks — raw edge lists heavy with duplicates and
  self-loops, isolated max-index vertices;
* degenerate sizes — empty, single-vertex and two-vertex graphs;
* bulk randomness — rMat and G(n, m) at randomized (n, m);

crossed with randomized run configs: every registered variant, the
registered execution backends (the chunked ``parallel`` backend at
real worker counts), a sweep of beta, optional sanitizer arming, and
(for the decomp variants) optional deterministic fault plans.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.fuzz.case import CaseConfig, CaseGraph, FuzzCase

__all__ = ["CaseGenerator", "FUZZ_ALGORITHMS"]

#: The implementations the fuzzer samples: the paper's rows plus the
#: engine-only variant — every labeling algorithm the registry exposes.
FUZZ_ALGORITHMS: Tuple[str, ...] = (
    "decomp-arb-CC",
    "decomp-arb-hybrid-CC",
    "decomp-min-CC",
    "decomp-min-hybrid-CC",
    "hybrid-BFS-CC",
    "multistep-CC",
    "label-prop-CC",
    "shiloach-vishkin-CC",
    "parallel-SF-PBBS",
    "parallel-SF-PRM",
    "serial-SF",
)

#: Decomp variants appear more often: they are the paper's subject and
#: the only algorithms the fault hooks and both engine backends reach.
_DECOMP_WEIGHT = 3

_BETAS = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8)

_FAULT_TEMPLATES = (
    "cas_flip:p=0.5",
    "cas_flip:p=1.0",
    "shift_perturb:holdback=0.5",
    "shift_perturb:holdback=0.9",
    "drop_frontier:p=0.3",
    "label_corrupt:p=1.0",
    "drop_frontier:p=0.2;cas_flip:p=0.5",
)


class CaseGenerator:
    """Deterministic stream of :class:`FuzzCase` objects for one seed."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        weighted: List[str] = []
        for name in FUZZ_ALGORITHMS:
            weighted.extend(
                [name] * (_DECOMP_WEIGHT if name.startswith("decomp-") else 1)
            )
        self._algorithms = tuple(weighted)

    def case(self, index: int) -> FuzzCase:
        """Case *index* of this seed's stream (random access, pure)."""
        rng = np.random.default_rng((self.seed, index))
        graph = self._sample_graph(rng)
        config = self._sample_config(rng)
        return FuzzCase(
            graph=graph,
            config=config,
            case_id=f"s{self.seed}-{index:04d}",
        )

    def cases(self) -> Iterator[FuzzCase]:
        """The (unbounded) case stream; callers slice it."""
        index = 0
        while True:
            yield self.case(index)
            index += 1

    # -- sampling ----------------------------------------------------------

    def _sample_graph(self, rng: np.random.Generator) -> CaseGraph:
        family = rng.choice(
            [
                "path",
                "star",
                "clique",
                "lollipop",
                "bridged-cliques",
                "near-empty",
                "rmat",
                "random",
                "edge-soup",
            ],
            p=[0.12, 0.10, 0.08, 0.12, 0.12, 0.10, 0.12, 0.12, 0.12],
        )
        if family == "edge-soup":
            return self._sample_edge_soup(rng)
        if family == "path":
            params = {"n": int(rng.integers(1, 120))}
            if rng.random() < 0.5:
                params["relabel_seed"] = int(rng.integers(0, 1 << 16))
            return CaseGraph(kind="family", family="path", params=params)
        if family == "star":
            return CaseGraph(
                kind="family", family="star", params={"n": int(rng.integers(1, 100))}
            )
        if family == "clique":
            return CaseGraph(
                kind="family", family="clique", params={"n": int(rng.integers(1, 24))}
            )
        if family == "lollipop":
            return CaseGraph(
                kind="family",
                family="lollipop",
                params={
                    "clique": int(rng.integers(2, 12)),
                    "tail": int(rng.integers(1, 40)),
                },
            )
        if family == "bridged-cliques":
            return CaseGraph(
                kind="family",
                family="bridged-cliques",
                params={
                    "clique1": int(rng.integers(1, 12)),
                    "clique2": int(rng.integers(1, 12)),
                    # Isolated tail past the max connected id: the
                    # max-index-vertex degenerate case.
                    "isolated": int(rng.integers(0, 4)),
                },
            )
        if family == "near-empty":
            return CaseGraph(
                kind="family",
                family="near-empty",
                params={"n": int(rng.integers(0, 3))},
            )
        if family == "rmat":
            scale = int(rng.integers(2, 8))
            m = int(rng.integers(0, 4 * (1 << scale)))
            return CaseGraph(
                kind="family",
                family="rmat",
                params={"scale": scale, "m": m, "seed": int(rng.integers(0, 1 << 16))},
            )
        n = int(rng.integers(1, 150))
        m = int(rng.integers(0, 3 * n))
        return CaseGraph(
            kind="family",
            family="random",
            params={"n": n, "m": m, "seed": int(rng.integers(0, 1 << 16))},
        )

    def _sample_edge_soup(self, rng: np.random.Generator) -> CaseGraph:
        """Raw edge lists heavy with duplicates and self-loops.

        Attacks the builder's symmetrize/dedup/loop-removal path and
        the contraction hash table, not just the algorithms.
        """
        n = int(rng.integers(1, 40))
        m = int(rng.integers(0, 80))
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        # Force heavy duplication: overwrite a slice with repeats of
        # one edge, and another with self-loops.
        if m >= 4:
            dup = int(rng.integers(0, n))
            k = m // 3
            src[:k] = dup
            dst[:k] = (dup + 1) % n
            loops = rng.integers(0, n, size=m - (2 * m) // 3)
            src[-loops.size :] = loops
            dst[-loops.size :] = loops
        # Occasionally declare extra isolated vertices past max(id).
        extra = int(rng.integers(0, 5)) if rng.random() < 0.4 else 0
        return CaseGraph(
            kind="edges",
            num_vertices=n + extra,
            edges=tuple((int(u), int(v)) for u, v in zip(src, dst)),
        )

    def _sample_config(self, rng: np.random.Generator) -> CaseConfig:
        algorithm = str(rng.choice(self._algorithms))
        beta = float(rng.choice(_BETAS))
        seed = int(rng.integers(0, 1 << 16))
        sanitize = bool(rng.random() < 0.25)
        fault: Optional[str] = None
        fault_seed = 0
        if algorithm.startswith("decomp-") and rng.random() < 0.2:
            fault = str(rng.choice(_FAULT_TEMPLATES))
            fault_seed = int(rng.integers(0, 1 << 16))
        backends: Tuple[str, ...]
        workers = 1
        if fault is not None:
            # Fault plans consume their RNG stream per activation, so a
            # fault case runs once on one sampled backend.
            backends = (str(rng.choice(["reference", "fast"])),)
        elif rng.random() < 0.5:
            # Half of the clean differentials also cross-check the
            # chunked backend at a real worker count.
            backends = ("reference", "fast", "parallel")
            workers = int(rng.choice([2, 4]))
        else:
            backends = ("reference", "fast")
        return CaseConfig(
            algorithm=algorithm,
            beta=beta,
            seed=seed,
            backends=backends,
            sanitize=sanitize,
            workers=workers,
            fault=fault,
            fault_seed=fault_seed,
        )
