"""The fuzzer's unit of work: one fully serializable test case.

A :class:`FuzzCase` pins everything one differential-oracle execution
needs — the input graph (either a named generator *family* with its
parameters, or an explicit edge list for shrunk repros) and the run
configuration (algorithm, decomposition parameters, execution backends,
sanitizer arming, optional fault plan).  Cases round-trip through JSON
so a failure found by the fuzzer can be checked in under
``tests/fuzz_corpus/`` and replayed forever (``repro replay``,
``tests/test_fuzz.py``); determinism is absolute — a case contains no
ambient state, and every random choice it implies is derived from seeds
stored inside it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.graphs.builder import from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    clique,
    empty_graph,
    line_graph,
    random_gnm,
    rmat,
    star_graph,
)

__all__ = [
    "CASE_FORMAT",
    "CaseGraph",
    "CaseConfig",
    "FuzzCase",
    "FAMILY_BUILDERS",
    "build_case_graph",
]

#: On-disk format version of a serialized case.
CASE_FORMAT = 1


def _lollipop(params: Dict[str, int]) -> CSRGraph:
    """A clique with a path glued to one clique vertex.

    The classic mixing-time adversary: dense core, long sparse tail —
    exactly the shape where a BFS-frontier bug and a contraction bug
    disagree about when the tail joins the core's component.
    """
    k = int(params.get("clique", 4))
    tail = int(params.get("tail", 4))
    edges: List[Tuple[int, int]] = []
    for u in range(k):
        for v in range(u + 1, k):
            edges.append((u, v))
    for i in range(tail):
        a = k - 1 if i == 0 else k + i - 1
        edges.append((a, k + i))
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return from_edges(src, dst, num_vertices=k + tail)


def _bridged_cliques(params: Dict[str, int]) -> CSRGraph:
    """Two cliques joined by a single bridge edge (plus optional slack).

    A decomposition that misclassifies the bridge merges or splits two
    dense blobs — the single-edge sensitivity case.
    """
    k1 = int(params.get("clique1", 4))
    k2 = int(params.get("clique2", 4))
    slack = int(params.get("isolated", 0))
    edges: List[Tuple[int, int]] = []
    for u in range(k1):
        for v in range(u + 1, k1):
            edges.append((u, v))
    for u in range(k2):
        for v in range(u + 1, k2):
            edges.append((k1 + u, k1 + v))
    if k1 and k2:
        edges.append((k1 - 1, k1))
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return from_edges(src, dst, num_vertices=k1 + k2 + slack)


def _path(params: Dict[str, int]) -> CSRGraph:
    seed = params.get("relabel_seed")
    return line_graph(int(params.get("n", 2)), seed=seed)


def _star(params: Dict[str, int]) -> CSRGraph:
    return star_graph(int(params.get("n", 2)))


def _clique(params: Dict[str, int]) -> CSRGraph:
    return clique(int(params.get("n", 2)))


def _near_empty(params: Dict[str, int]) -> CSRGraph:
    return empty_graph(int(params.get("n", 0)))


def _rmat(params: Dict[str, int]) -> CSRGraph:
    return rmat(
        int(params.get("scale", 5)),
        int(params.get("m", 32)),
        seed=int(params.get("seed", 1)),
    )


def _random(params: Dict[str, int]) -> CSRGraph:
    return random_gnm(
        int(params.get("n", 8)),
        int(params.get("m", 8)),
        seed=int(params.get("seed", 1)),
    )


#: family name -> builder(params) — every entry is a pure function of
#: its params dict, so a family case replays identically anywhere.
FAMILY_BUILDERS = {
    "path": _path,
    "star": _star,
    "clique": _clique,
    "lollipop": _lollipop,
    "bridged-cliques": _bridged_cliques,
    "near-empty": _near_empty,
    "rmat": _rmat,
    "random": _random,
}


@dataclass(frozen=True)
class CaseGraph:
    """The input graph of a case: a generator family or explicit edges.

    ``kind == "family"`` names a :data:`FAMILY_BUILDERS` entry with its
    parameter dict; ``kind == "edges"`` stores a raw undirected edge
    list (duplicates and self-loops allowed — exercising the builder's
    canonicalization is part of the point) plus an explicit vertex
    count, which may exceed ``max(id) + 1`` to encode isolated
    max-index vertices.
    """

    kind: str
    family: Optional[str] = None
    params: Dict[str, int] = field(default_factory=dict)
    num_vertices: int = 0
    edges: Tuple[Tuple[int, int], ...] = ()

    def to_json(self) -> Dict[str, object]:
        if self.kind == "family":
            return {"kind": "family", "family": self.family, "params": dict(self.params)}
        return {
            "kind": "edges",
            "num_vertices": self.num_vertices,
            "edges": [[int(u), int(v)] for u, v in self.edges],
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "CaseGraph":
        kind = data.get("kind")
        if kind == "family":
            family = str(data["family"])
            if family not in FAMILY_BUILDERS:
                raise ParameterError(
                    f"unknown fuzz graph family {family!r}; "
                    f"expected one of {sorted(FAMILY_BUILDERS)}"
                )
            return cls(
                kind="family",
                family=family,
                params={str(k): int(v) for k, v in dict(data.get("params", {})).items()},  # type: ignore[call-overload]
            )
        if kind == "edges":
            return cls(
                kind="edges",
                num_vertices=int(data["num_vertices"]),  # type: ignore[arg-type]
                edges=tuple(
                    (int(u), int(v)) for u, v in data.get("edges", [])  # type: ignore[union-attr]
                ),
            )
        raise ParameterError(f"unknown case graph kind {kind!r}")


@dataclass(frozen=True)
class CaseConfig:
    """The run configuration half of a case.

    ``beta``/``seed`` only reach algorithms that accept them (the
    decomp variants); ``backends`` lists the execution backends the
    oracle runs differentially; ``fault`` is a
    :mod:`repro.resilience.faults` spec string armed (with
    ``fault_seed``) for the run; ``planted`` names a deliberate bug
    from :mod:`repro.fuzz.planted` so a shrunk planted-bug repro keeps
    failing on replay.
    """

    algorithm: str
    beta: float = 0.2
    seed: int = 1
    backends: Tuple[str, ...] = ("reference", "fast")
    sanitize: bool = False
    workers: int = 1
    fault: Optional[str] = None
    fault_seed: int = 0
    planted: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "algorithm": self.algorithm,
            "beta": self.beta,
            "seed": self.seed,
            "backends": list(self.backends),
            "sanitize": self.sanitize,
        }
        if self.workers != 1:
            # Emitted only when non-default, so the checked-in corpus
            # (written before the parallel backend existed) round-trips
            # byte-identically.
            out["workers"] = self.workers
        if self.fault is not None:
            out["fault"] = self.fault
            out["fault_seed"] = self.fault_seed
        if self.planted is not None:
            out["planted"] = self.planted
        return out

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "CaseConfig":
        return cls(
            algorithm=str(data["algorithm"]),
            beta=float(data.get("beta", 0.2)),  # type: ignore[arg-type]
            seed=int(data.get("seed", 1)),  # type: ignore[arg-type]
            backends=tuple(str(b) for b in data.get("backends", ["reference", "fast"])),  # type: ignore[union-attr]
            sanitize=bool(data.get("sanitize", False)),
            workers=int(data.get("workers", 1)),  # type: ignore[arg-type]
            fault=data.get("fault"),  # type: ignore[arg-type]
            fault_seed=int(data.get("fault_seed", 0)),  # type: ignore[arg-type]
            planted=data.get("planted"),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FuzzCase:
    """One serializable (graph, config) pair with a stable identity."""

    graph: CaseGraph
    config: CaseConfig
    case_id: str = ""
    note: str = ""

    def content_hash(self) -> str:
        """Hash of the case *content* (id and note excluded)."""
        payload = json.dumps(
            {"graph": self.graph.to_json(), "config": self.config.to_json()},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:10]

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "format": CASE_FORMAT,
            "id": self.case_id or f"case-{self.content_hash()}",
            "graph": self.graph.to_json(),
            "config": self.config.to_json(),
        }
        if self.note:
            out["note"] = self.note
        return out

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FuzzCase":
        fmt = int(data.get("format", 0))  # type: ignore[arg-type]
        if fmt != CASE_FORMAT:
            raise ParameterError(
                f"fuzz case format {fmt} not understood "
                f"(this code reads format {CASE_FORMAT})"
            )
        return cls(
            graph=CaseGraph.from_json(data["graph"]),  # type: ignore[arg-type]
            config=CaseConfig.from_json(data["config"]),  # type: ignore[arg-type]
            case_id=str(data.get("id", "")),
            note=str(data.get("note", "")),
        )

    def with_graph(self, graph: CaseGraph) -> "FuzzCase":
        return replace(self, graph=graph)

    def with_config(self, config: CaseConfig) -> "FuzzCase":
        return replace(self, config=config)


def build_case_graph(spec: CaseGraph) -> CSRGraph:
    """Materialize a case's input graph (pure function of the spec)."""
    if spec.kind == "family":
        if spec.family not in FAMILY_BUILDERS:
            raise ParameterError(
                f"unknown fuzz graph family {spec.family!r}; "
                f"expected one of {sorted(FAMILY_BUILDERS)}"
            )
        return FAMILY_BUILDERS[spec.family](spec.params)
    if spec.kind == "edges":
        if spec.edges:
            src = np.array([e[0] for e in spec.edges], dtype=np.int64)
            dst = np.array([e[1] for e in spec.edges], dtype=np.int64)
        else:
            src = np.zeros(0, dtype=np.int64)
            dst = np.zeros(0, dtype=np.int64)
        return from_edges(src, dst, num_vertices=spec.num_vertices)
    raise ParameterError(f"unknown case graph kind {spec.kind!r}")
