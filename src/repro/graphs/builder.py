"""Edge-list -> CSR construction (symmetrize, dedup, self-loop removal).

All generators and I/O produce raw ``(u, v)`` edge lists; this module
turns them into the symmetric :class:`~repro.graphs.csr.CSRGraph` the
algorithms consume.  Construction is itself expressed with the
package's parallel primitives (histogram + scan + radix sort), so the
"load the graph" step has an honest work/depth profile too.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.csr import CSRGraph
from repro.primitives.scan import exclusive_scan
from repro.primitives.sort import radix_argsort
from repro.runtime.context import current_context

__all__ = ["from_edges", "from_directed_edges", "dedup_edge_list"]


def _validate(src: np.ndarray, dst: np.ndarray, num_vertices: int) -> None:
    if src.shape != dst.shape or src.ndim != 1:
        raise GraphFormatError("edge arrays must be 1-D and equal length")
    if src.size == 0:
        return
    lo = min(int(src.min()), int(dst.min()))
    hi = max(int(src.max()), int(dst.max()))
    if lo < 0:
        raise GraphFormatError("negative vertex id in edge list")
    if hi >= num_vertices:
        raise GraphFormatError(
            f"vertex id {hi} out of range for num_vertices={num_vertices}"
        )


def dedup_edge_list(
    src: np.ndarray, dst: np.ndarray, num_vertices: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Remove duplicate directed edges and self-loops, preserving nothing
    about order (sorted output).

    Uses encode-to-int64 + radix sort + adjacent-unique — the standard
    linear-work parallel dedup (an alternative to the hash table used in
    contraction; both appear in the paper's toolbox).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    _validate(src, dst, num_vertices)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if src.size == 0:
        return src, dst
    keys = src * np.int64(num_vertices) + dst
    order = radix_argsort(keys, max_key=int(num_vertices) * num_vertices - 1)
    keys = keys[order]
    first = np.empty(keys.size, dtype=bool)
    first[0] = True
    np.not_equal(keys[1:], keys[:-1], out=first[1:])
    current_context().tracker.add("scan", work=float(keys.size), depth=1.0)
    keys = keys[first]
    return keys // num_vertices, keys % num_vertices


def from_directed_edges(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    symmetric: bool = False,
    validate: bool = True,
) -> CSRGraph:
    """Build a CSR graph from directed edges, exactly as given.

    No symmetrization, dedup or loop removal — callers wanting the
    undirected input format should use :func:`from_edges`.  The edges
    are grouped by source with a counting pass + scan + scatter.

    ``validate=False`` skips both the edge-range scan and the CSR
    invariant checks (:meth:`CSRGraph.trusted`) — only for callers
    whose arrays are internally generated with the invariants already
    established, like the contraction recursion under the fast
    execution backend.  External data must validate.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if validate:
        _validate(src, dst, num_vertices)
    counts = np.bincount(src, minlength=num_vertices) if src.size else np.zeros(
        num_vertices, dtype=np.int64
    )
    current_context().tracker.add("scatter", work=float(src.size), depth=1.0)
    offsets = np.concatenate(
        (exclusive_scan(counts), [src.size])
    ).astype(np.int64)
    # Stable sort by source groups targets into CSR slots.
    order = radix_argsort(src, max_key=max(num_vertices - 1, 0)) if src.size else src
    targets = dst[order] if src.size else dst
    if not validate:
        return CSRGraph.trusted(
            offsets, np.ascontiguousarray(targets), symmetric=symmetric
        )
    return CSRGraph(offsets=offsets, targets=targets, symmetric=symmetric)


def from_edges(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: Optional[int] = None,
    remove_duplicates: bool = True,
) -> CSRGraph:
    """Build the symmetric CSR graph of an undirected edge list.

    Each input pair (u, v) is stored in both directions (the paper's
    convention for the decomposition-based algorithms).  Self-loops are
    dropped; duplicate undirected edges are dropped when
    *remove_duplicates* (the default — all the paper's inputs are
    simple graphs).

    Parameters
    ----------
    num_vertices:
        Vertex-count override; defaults to ``max(id) + 1``.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if num_vertices is None:
        num_vertices = (
            int(max(src.max(initial=-1), dst.max(initial=-1))) + 1 if src.size else 0
        )
    # Mirror every edge, then (optionally) dedup the directed multiset.
    all_src = np.concatenate((src, dst))
    all_dst = np.concatenate((dst, src))
    current_context().tracker.add("scan", work=float(all_src.size), depth=1.0)
    if remove_duplicates:
        all_src, all_dst = dedup_edge_list(all_src, all_dst, num_vertices)
    else:
        keep = all_src != all_dst
        all_src, all_dst = all_src[keep], all_dst[keep]
    return from_directed_edges(all_src, all_dst, num_vertices, symmetric=True)
