"""Graph generators: the paper's six inputs plus a test zoo.

The paper's evaluation (Table 1) uses five synthetic graphs from the
PBBS generators plus the real com-Orkut social network:

==========  =====================================================
random      every vertex has 5 edges to uniformly random targets
rMat        R-MAT power-law graph, n = 2^27, m = 5e8 (sparse, many
            components at that density)
rMat2       same generator, much higher edge/vertex ratio (dense)
3D-grid     6-neighbor grid in 3 dimensions, one component
line        a path of length n-1 — the diameter-n adversary
com-Orkut   SNAP social network: 3.07M vertices, 117M edges, dense,
            low-diameter, essentially one giant component
==========  =====================================================

All generators here take explicit sizes so experiments can scale the
paper's inputs down to laptop/CI proportions (DESIGN.md §2).  com-Orkut
cannot be downloaded offline; :func:`orkut_like` builds a synthetic
surrogate with the three properties the algorithms' behaviour keys on
(dense, low-diameter, single giant component) — an R-MAT graph with
community skew plus a random Hamiltonian cycle.

A zoo of small structured generators (star, clique, trees, unions)
supports the test suite's edge cases.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.graphs.builder import from_edges
from repro.graphs.csr import CSRGraph
from repro.primitives.rand import random_permutation
from repro.runtime.context import current_context

__all__ = [
    "random_kregular",
    "rmat",
    "rmat_paper",
    "rmat2_paper",
    "grid3d",
    "line_graph",
    "cycle_graph",
    "orkut_like",
    "star_graph",
    "clique",
    "binary_tree",
    "random_gnm",
    "preferential_attachment",
    "small_world",
    "disjoint_union_edges",
    "empty_graph",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_kregular(n: int, k: int = 5, seed: int = 1) -> CSRGraph:
    """The paper's "random" input: each vertex draws *k* random targets.

    Not strictly k-regular (targets collide and symmetrization merges
    duplicates) — this matches the PBBS ``randLocalGraph``-style input
    the paper uses: n vertices, k*n generated edges, one giant component
    w.h.p. for k >= 3.
    """
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    rng = _rng(seed)
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    dst = rng.integers(0, n, size=n * k, dtype=np.int64)
    current_context().tracker.add("scan", work=float(n * k), depth=1.0)
    return from_edges(src, dst, num_vertices=n)


def rmat(
    num_vertices_log2: int,
    num_edges: int,
    a: float = 0.5,
    b: float = 0.1,
    c: float = 0.1,
    seed: int = 1,
) -> CSRGraph:
    """R-MAT recursive-matrix graph [Chakrabarti-Zhan-Faloutsos 2004].

    Each edge independently descends ``num_vertices_log2`` levels of the
    adjacency-matrix quadtree, picking quadrant (a, b, c, d = 1-a-b-c)
    at each level; the paper's rMat inputs use the PBBS defaults
    (a=0.5, b=c=0.1), giving a power-law degree distribution, and at the
    paper's density (m/n ~ 3.7 directed) tens of percent of vertices are
    isolated — hence rMat's 13M+ components.

    Vectorized over all edges, one bit level at a time: O(m log n) total
    generation work (charged as scan).
    """
    if num_vertices_log2 < 0 or num_vertices_log2 > 31:
        raise ParameterError("num_vertices_log2 must be in [0, 31]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise ParameterError("R-MAT probabilities must be a valid distribution")
    n = 1 << num_vertices_log2
    rng = _rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    current_context().tracker.add(
        "scan", work=float(num_edges * max(num_vertices_log2, 1)), depth=1.0
    )
    for _level in range(num_vertices_log2):
        u = rng.random(num_edges)
        src <<= 1
        dst <<= 1
        # Quadrants: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        in_b = (u >= a) & (u < a + b)
        in_c = (u >= a + b) & (u < a + b + c)
        in_d = u >= a + b + c
        dst += in_b | in_d
        src += in_c | in_d
    return from_edges(src, dst, num_vertices=n)


def rmat_paper(scale: int = 14, edge_factor: float = 3.7, seed: int = 1) -> CSRGraph:
    """Scaled-down analogue of the paper's rMat input.

    The paper's rMat has n = 2^27 and m = 5e8 directed generated edges
    (edge factor ~3.7), sparse enough to leave millions of isolated
    vertices and components.  We keep the edge factor and shrink n.
    """
    n = 1 << scale
    return rmat(scale, int(n * edge_factor), seed=seed)


def rmat2_paper(scale: int = 10, edge_factor: float = 400.0, seed: int = 1) -> CSRGraph:
    """Scaled-down analogue of the paper's dense rMat2 input.

    rMat2 uses the same generator at a much higher edge-to-vertex ratio
    (n = 2^20, m = 4.2e8: factor ~400), yielding a dense, very
    low-diameter graph ("only 5 levels of BFS") that the
    direction-optimizing baselines dominate on.
    """
    n = 1 << scale
    return rmat(scale, int(n * edge_factor), seed=seed)


def grid3d(side: int, seed: Optional[int] = None) -> CSRGraph:
    """The paper's 3D-grid: ``side^3`` vertices, 6-neighbor connectivity.

    Each vertex connects to its 2 neighbors in each dimension (no
    wraparound).  One component; diameter 3*(side-1).  The optional
    *seed* randomly permutes vertex labels, as the paper notes "for the
    synthetic graphs, the vertex labels are randomly assigned".
    """
    if side < 1:
        raise ParameterError(f"side must be >= 1, got {side}")
    n = side**3
    idx = np.arange(n, dtype=np.int64)
    x = idx % side
    y = (idx // side) % side
    z = idx // (side * side)
    srcs = []
    dsts = []
    for axis, coord in (("x", x), ("y", y), ("z", z)):
        step = {"x": 1, "y": side, "z": side * side}[axis]
        mask = coord < side - 1
        srcs.append(idx[mask])
        dsts.append(idx[mask] + step)
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    current_context().tracker.add("scan", work=float(3 * n), depth=1.0)
    if seed is not None:
        relabel = random_permutation(n, seed)
        src, dst = relabel[src], relabel[dst]
    return from_edges(src, dst, num_vertices=n)


def line_graph(n: int, seed: Optional[int] = None) -> CSRGraph:
    """The paper's "line": a path of length n-1, the diameter adversary.

    BFS-based connectivity gets no parallelism here; the decomposition
    algorithms' polylog depth is exactly what this input stresses.
    Labels are randomly permuted when *seed* is given.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    if seed is not None:
        relabel = random_permutation(n, seed)
        src, dst = relabel[src], relabel[dst]
    return from_edges(src, dst, num_vertices=n)


def cycle_graph(n: int) -> CSRGraph:
    """A single n-cycle (diameter n/2; one component)."""
    if n < 3:
        raise ParameterError(f"cycle needs n >= 3, got {n}")
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return from_edges(src, dst, num_vertices=n)


def orkut_like(
    n: int = 30000, avg_degree: float = 38.0, seed: int = 1
) -> CSRGraph:
    """Synthetic surrogate for the com-Orkut social network (offline).

    com-Orkut (SNAP) has 3,072,627 vertices, 117,185,083 edges
    (average degree ~76 directed / 38 undirected), low diameter, heavy
    power-law community structure, and essentially one giant component.
    The reproduction cannot download it, so this surrogate combines:

    * an R-MAT core with strong skew (a=0.57, b=c=0.19) — power-law
      hubs and community structure;
    * a uniform random-neighbor layer giving *every* vertex a baseline
      degree — in the real network even peripheral users have dozens
      of friends, so the massive mid-BFS frontier carries the majority
      of the edges (which is what makes the read-based sweeps pay off
      there);
    * a random Hamiltonian cycle over all n vertices — forcing exactly
      one connected component, as in the real graph.

    These are the properties the paper's experimental narrative keys on
    for com-Orkut (direction-optimizing BFS wins because the graph is
    dense, low-diameter and one-component; decomposition terminates in
    few rounds).  See DESIGN.md §2 for the substitution record.
    """
    if n < 3:
        raise ParameterError(f"n must be >= 3, got {n}")
    scale = int(np.ceil(np.log2(n)))
    rng = _rng(seed)
    # Uniform layer: ~40% of the degree mass, spread over all vertices.
    base_k = max(2, int(avg_degree * 0.2))
    base_src = np.repeat(np.arange(n, dtype=np.int64), base_k)
    base_dst = rng.integers(0, n, size=n * base_k, dtype=np.int64)
    # R-MAT core (the rest), folded from the 2^scale id space onto [0, n).
    num_core = max(0, int(n * avg_degree / 2) - n * base_k)
    core = rmat(scale, num_core, a=0.57, b=0.19, c=0.19, seed=seed)
    src, dst = core.edge_array()
    src, dst = src % n, dst % n
    # Hamiltonian cycle over a random permutation: one giant component.
    perm = random_permutation(n, seed + 17)
    src = np.concatenate((src, base_src, perm))
    dst = np.concatenate((dst, base_dst, np.roll(perm, -1)))
    return from_edges(src, dst, num_vertices=n)


def star_graph(n: int) -> CSRGraph:
    """A star: vertex 0 joined to all others (diameter 2, hub degree n-1).

    Exercises the high-degree-vertex path in frontier expansion.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if n == 1:
        return empty_graph(1)
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    return from_edges(src, dst, num_vertices=n)


def clique(n: int) -> CSRGraph:
    """The complete graph K_n (dense extreme; duplicate-heavy contraction)."""
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    src, dst = np.triu_indices(n, k=1)
    return from_edges(src.astype(np.int64), dst.astype(np.int64), num_vertices=n)


def binary_tree(depth: int) -> CSRGraph:
    """A complete binary tree of the given depth (n = 2^(depth+1) - 1)."""
    if depth < 0:
        raise ParameterError(f"depth must be >= 0, got {depth}")
    n = (1 << (depth + 1)) - 1
    if n == 1:
        return empty_graph(1)
    child = np.arange(1, n, dtype=np.int64)
    parent = (child - 1) // 2
    return from_edges(parent, child, num_vertices=n)


def random_gnm(n: int, m: int, seed: int = 1) -> CSRGraph:
    """Erdos-Renyi G(n, m): m undirected edges drawn uniformly (with
    replacement before dedup).  The generic workload for property tests.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if m < 0:
        raise ParameterError(f"m must be >= 0, got {m}")
    rng = _rng(seed)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    return from_edges(src, dst, num_vertices=n)


def preferential_attachment(n: int, k: int = 3, seed: int = 1) -> CSRGraph:
    """Barabási-Albert preferential attachment: each new vertex attaches
    *k* edges to targets drawn proportionally to current degree.

    A second power-law family for the test suite, structurally unlike
    R-MAT (always connected, no isolated vertices).  Uses the standard
    repeated-endpoints trick: sampling a uniform element of the running
    edge-endpoint list IS degree-proportional sampling.
    """
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    rng = _rng(seed)
    # endpoint pool seeded with an initial edge 0-1
    pool = [0, 1]
    src = []
    dst = []
    for v in range(2, n):
        picks = rng.integers(0, len(pool), size=min(k, v))
        targets = {pool[p] for p in picks}
        for t in targets:
            src.append(v)
            dst.append(t)
            pool.append(v)
            pool.append(t)
    src_arr = np.concatenate(
        (np.array([0], dtype=np.int64), np.array(src, dtype=np.int64))
    )
    dst_arr = np.concatenate(
        (np.array([1], dtype=np.int64), np.array(dst, dtype=np.int64))
    )
    current_context().tracker.add("seq", work=float(len(src)), depth=0.0)
    return from_edges(src_arr, dst_arr, num_vertices=n)


def small_world(n: int, k: int = 4, p: float = 0.1, seed: int = 1) -> CSRGraph:
    """Watts-Strogatz small world: ring lattice with rewired shortcuts.

    Each vertex connects to its k/2 nearest ring neighbors per side;
    each lattice edge's far endpoint is rewired to a uniform random
    vertex with probability *p*.  Moderate diameter with shortcuts — a
    structure between the paper's 3D-grid and random inputs.
    """
    if n < 4:
        raise ParameterError(f"n must be >= 4, got {n}")
    if k < 2 or k % 2:
        raise ParameterError(f"k must be even and >= 2, got {k}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0,1], got {p}")
    rng = _rng(seed)
    half = k // 2
    base = np.arange(n, dtype=np.int64)
    src = np.repeat(base, half)
    offs = np.tile(np.arange(1, half + 1, dtype=np.int64), n)
    dst = (src + offs) % n
    rewire = rng.random(src.size) < p
    dst = dst.copy()
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()), dtype=np.int64)
    current_context().tracker.add("scan", work=float(src.size), depth=1.0)
    return from_edges(src, dst, num_vertices=n)


def disjoint_union_edges(graphs: Sequence[CSRGraph]) -> CSRGraph:
    """The disjoint union of several graphs (ids shifted, no cross edges).

    Produces known multi-component inputs for verification tests.
    """
    if not graphs:
        return empty_graph(0)
    srcs = []
    dsts = []
    offset = 0
    for g in graphs:
        s, d = g.edge_array()
        srcs.append(s + offset)
        dsts.append(d + offset)
        offset += g.num_vertices
    src = np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.zeros(0, dtype=np.int64)
    return from_edges(src, dst, num_vertices=offset, remove_duplicates=True)


def empty_graph(n: int) -> CSRGraph:
    """n isolated vertices, no edges (every vertex its own component)."""
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    return CSRGraph(
        offsets=np.zeros(n + 1, dtype=np.int64),
        targets=np.zeros(0, dtype=np.int64),
        symmetric=True,
    )
