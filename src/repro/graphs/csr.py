"""Adjacency-array (CSR) graph representation.

The paper (§4) represents graphs "using the adjacency array format,
where we have an array of vertex offsets V into an array of edges E",
with each undirected edge stored in both directions, plus a degree
array D.  :class:`CSRGraph` is that structure: immutable offsets and
targets, with vectorized frontier-expansion helpers that the BFS and
decomposition kernels share.

Conventions
-----------
* ``offsets`` has length ``n + 1`` with ``offsets[n] == num_directed``
  (the paper's "we set V[n] = m" edge-case guard).
* For symmetric (undirected) graphs every edge (u, v) appears as both
  u->v and v->u; ``num_edges`` reports the undirected count
  ``num_directed / 2`` for symmetric graphs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.runtime.context import current_context

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """An immutable graph in adjacency-array (CSR) form.

    Attributes
    ----------
    offsets:
        int64 array of length ``n + 1``; vertex ``i``'s outgoing edge
        targets are ``targets[offsets[i]:offsets[i+1]]``.
    targets:
        int64 array of edge targets, length = number of directed edges.
    symmetric:
        Declares that the directed edge set is symmetric (every (u, v)
        has its (v, u) mirror).  All connectivity algorithms require
        symmetric input; the builder produces it.
    """

    offsets: np.ndarray
    targets: np.ndarray
    symmetric: bool = True

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        targets = np.ascontiguousarray(self.targets, dtype=np.int64)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "targets", targets)
        if offsets.ndim != 1 or targets.ndim != 1:
            raise GraphFormatError("offsets and targets must be 1-D arrays")
        if offsets.size < 1:
            raise GraphFormatError("offsets must have length n+1 >= 1")
        if offsets[0] != 0 or offsets[-1] != targets.size:
            raise GraphFormatError(
                "offsets must start at 0 and end at len(targets) "
                f"(got {offsets[0]}..{offsets[-1]}, m={targets.size})"
            )
        if np.any(np.diff(offsets) < 0):
            raise GraphFormatError("offsets must be non-decreasing")
        n = offsets.size - 1
        if targets.size and (targets.min() < 0 or targets.max() >= n):
            raise GraphFormatError("edge target out of range [0, n)")

    @classmethod
    def trusted(
        cls, offsets: np.ndarray, targets: np.ndarray, symmetric: bool = True
    ) -> "CSRGraph":
        """Construct without validation — internally generated CSR only.

        The contraction recursion builds each level's sub-graph from
        arrays whose invariants it just established (contiguous int64,
        offsets from a prefix sum, targets from a renaming into
        ``[0, k')``); re-running the O(m) scans of ``__post_init__``
        per level is pure wall-clock waste, which the fast execution
        backend skips through this path.  Public builders and anything
        consuming external data must go through the validating
        constructor.
        """
        graph = object.__new__(cls)
        object.__setattr__(graph, "offsets", offsets)
        object.__setattr__(graph, "targets", targets)
        object.__setattr__(graph, "symmetric", symmetric)
        return graph

    # -- sizes -------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.offsets.size - 1

    @property
    def num_directed(self) -> int:
        """Number of directed edges (both orientations counted)."""
        return self.targets.size

    @property
    def num_edges(self) -> int:
        """Number of undirected edges for symmetric graphs, else directed."""
        return self.num_directed // 2 if self.symmetric else self.num_directed

    # -- per-vertex access ---------------------------------------------------

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of each vertex (the paper's D array, initial values)."""
        return np.diff(self.offsets)

    def neighbors(self, v: int) -> np.ndarray:
        """Targets of vertex *v*'s outgoing edges (a view, do not mutate)."""
        return self.targets[self.offsets[v] : self.offsets[v + 1]]

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield directed edges (u, v); test/diagnostic use only."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                yield u, int(v)

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """All directed edges as ``(sources, targets)`` arrays."""
        current_context().tracker.add("scan", work=float(self.num_directed), depth=1.0)
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.degrees
        )
        return sources, self.targets.copy()

    # -- frontier expansion --------------------------------------------------

    def expand(
        self,
        frontier: np.ndarray,
        charge_cost: bool = True,
        workspace=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather the out-edges of every frontier vertex, vectorized.

        Returns ``(edge_sources, edge_targets)`` where position ``j``
        describes one directed edge out of the frontier:
        ``edge_sources[j]`` is the frontier vertex and
        ``edge_targets[j]`` its neighbor.  This one gather is the PRAM
        round body shared by BFS and both decompositions; it costs
        O(sum of frontier degrees) work and O(log n) depth (the prefix
        sum computing per-vertex output offsets — the paper's
        "packing the frontiers").

        Without a *workspace* the returned arrays are freshly
        allocated; with one, they are arena views valid until the next
        round's expansion — callers may mutate either way.

        ``charge_cost=False`` suppresses the cost accounting — used by
        the read-based (bottom-up) sweeps, which on a real machine exit
        each adjacency list early and charge only the edges actually
        examined (they account for those themselves).
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        starts = self.offsets[frontier]
        counts = self.offsets[frontier + 1] - starts
        total = int(counts.sum())
        if charge_cost:
            tracker = current_context().tracker
            tracker.add("gather", work=float(total + frontier.size), depth=1.0)
            tracker.add(  # offset computation = prefix sum over the frontier
                "scan",
                work=float(frontier.size),
                depth=float(max(1, int(np.ceil(np.log2(frontier.size + 1))))),
            )
        if workspace is None:
            edge_sources = np.repeat(frontier, counts)
            # Vectorized ragged gather: global positions of each edge.
            pos = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            )
            pos = pos + np.arange(total, dtype=np.int64)
            edge_targets = self.targets[pos]
        else:
            edge_sources = workspace.repeat(frontier, counts, total, "expand.src")
            pos = workspace.ragged_positions(starts, counts, total, "expand.pos")
            edge_targets = workspace.take(self.targets, pos, "expand.dst")
        return edge_sources, edge_targets

    # -- misc ------------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of the graph (memo keys in the session layer).

        SHA-256 over the CSR arrays and the symmetry flag, computed
        once per instance and cached (the arrays are immutable by
        contract).  Host-side bookkeeping — charges nothing.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            digest = hashlib.sha256()
            digest.update(b"csr:%d:%d" % (self.num_vertices, self.num_directed))
            digest.update(self.offsets.tobytes())
            digest.update(self.targets.tobytes())
            digest.update(b"sym" if self.symmetric else b"dir")
            cached = digest.hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def check_symmetric(self) -> bool:
        """Verify the directed edge set is symmetric (O(m log m); tests)."""
        src, dst = self.edge_array()
        fwd = np.sort(src * np.int64(self.num_vertices) + dst)
        rev = np.sort(dst * np.int64(self.num_vertices) + src)
        return bool(np.array_equal(fwd, rev))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sym = "symmetric" if self.symmetric else "directed"
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges} "
            f"undirected, {sym})"
        )
