"""Graph I/O: SNAP-style edge-list text and compact ``.npz`` binaries.

The paper loads com-Orkut from SNAP's whitespace edge-list format; this
module reads/writes that format (so a user with network access can drop
the real file in) plus a fast ``.npz`` container for generated inputs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.fsutil import atomic_write_path
from repro.graphs.builder import from_edges
from repro.graphs.csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_adjacency_graph",
    "write_adjacency_graph",
    "save_npz",
    "load_npz",
]

PathLike = Union[str, os.PathLike]


def _header_num_vertices(path: Path) -> int | None:
    """Parse SNAP's ``# Nodes: N`` comment from the file's header block.

    Only the leading run of comment lines is scanned, so the cost is
    O(header) regardless of file size.  Returns ``None`` when no such
    comment exists (plain edge lists).
    """
    import re

    with path.open("r", encoding="utf-8", errors="replace") as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            if not line.startswith("#"):
                return None
            match = re.search(r"Nodes:\s*(\d+)", line)
            if match:
                return int(match.group(1))
    return None


def _locate_bad_line(path: Path) -> tuple[int, str]:
    """Find the first data line of *path* that is not two integers.

    Returns ``(1-based line number, stripped line text)``; falls back
    to line 0 / empty text when every line individually parses (e.g.
    the file as a whole was unreadable for another reason).
    """
    with path.open("r", encoding="utf-8", errors="replace") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            try:
                ok = len(fields) == 2 and all(int(f) >= 0 for f in fields)
            except ValueError:
                ok = False
            if not ok:
                return lineno, line
    return 0, ""


def read_edge_list(path: PathLike, num_vertices: int | None = None) -> CSRGraph:
    """Read a SNAP-style whitespace edge list into a symmetric CSR graph.

    Lines starting with ``#`` (SNAP headers) are ignored; each remaining
    line must hold two non-negative integers ``u v``.  The result is
    symmetrized and deduplicated like every other input.

    A malformed file raises :class:`~repro.errors.GraphFormatError`
    carrying the 1-based ``line_number`` and offending ``line_text`` —
    the parse itself stays on the fast ``np.loadtxt`` path and the file
    is only re-scanned to locate the bad line once a failure is certain.

    When *num_vertices* is not given, a SNAP-style ``# Nodes: N``
    header comment supplies the vertex count, so isolated top-index
    vertices (invisible in the edge lines) survive a
    :func:`write_edge_list` round trip; a header smaller than the
    edges' actual id range is treated as stale and widened rather than
    rejected.
    """
    import warnings

    path = Path(path)
    header_n = _header_num_vertices(path) if num_vertices is None else None
    try:
        with warnings.catch_warnings():
            warnings.filterwarnings("ignore", message=".*no data.*")
            data = np.loadtxt(path, dtype=np.int64, comments="#", ndmin=2)
    except ValueError as exc:
        lineno, text = _locate_bad_line(path)
        if lineno:
            raise GraphFormatError(
                f"malformed edge list in {path}",
                line_number=lineno,
                line_text=text,
            ) from exc
        raise GraphFormatError(f"malformed edge list in {path}: {exc}") from exc
    if data.size == 0:
        return from_edges(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            num_vertices=num_vertices or header_n or 0,
        )
    if data.shape[1] != 2:
        lineno, text = _locate_bad_line(path)
        raise GraphFormatError(
            f"edge list in {path} must have two columns, got {data.shape[1]}",
            line_number=lineno or None,
            line_text=text or None,
        )
    if data.min() < 0:
        lineno, text = _locate_bad_line(path)
        raise GraphFormatError(
            f"edge list in {path} has negative vertex ids",
            line_number=lineno or None,
            line_text=text or None,
        )
    if num_vertices is None and header_n is not None:
        num_vertices = max(header_n, int(data.max()) + 1)
    return from_edges(data[:, 0], data[:, 1], num_vertices=num_vertices)


def write_edge_list(graph: CSRGraph, path: PathLike, header: str = "") -> None:
    """Write each undirected edge once in SNAP format (``u<TAB>v``).

    The write is atomic (temp file + ``os.replace``): a crash mid-write
    never leaves a truncated edge list that would silently load as a
    smaller graph.
    """
    from repro.graphs.ops import edges_as_undirected_pairs

    src, dst = edges_as_undirected_pairs(graph)
    with atomic_write_path(Path(path)) as tmp:
        with tmp.open("w", encoding="utf-8") as fh:
            if header:
                for line in header.splitlines():
                    fh.write(f"# {line}\n")
            fh.write(f"# Nodes: {graph.num_vertices} Edges: {src.size}\n")
            np.savetxt(fh, np.column_stack((src, dst)), fmt="%d", delimiter="\t")


def read_adjacency_graph(path: PathLike, symmetric: bool = True) -> CSRGraph:
    """Read PBBS's ``AdjacencyGraph`` text format.

    The format the paper's own benchmark suite uses::

        AdjacencyGraph
        <n>
        <m>
        <n vertex offsets>
        <m edge targets>

    one token per line (whitespace-separated tokens are also accepted).
    ``symmetric`` declares whether the stored edges are already
    mirrored (PBBS stores symmetric graphs that way, as does this
    package's writer).
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = fh.readline().strip()
        if header != "AdjacencyGraph":
            raise GraphFormatError(
                f"{path}: expected 'AdjacencyGraph' header, got {header!r}"
            )
        tokens = fh.read().split()
    if len(tokens) < 2:
        raise GraphFormatError(f"{path}: missing n/m counts")
    try:
        n, m = int(tokens[0]), int(tokens[1])
        values = np.array(tokens[2:], dtype=np.int64)
    except ValueError as exc:
        raise GraphFormatError(f"{path}: non-integer token: {exc}") from exc
    if values.size != n + m:
        raise GraphFormatError(
            f"{path}: expected {n} offsets + {m} targets, got {values.size} values"
        )
    offsets = np.concatenate((values[:n], [m]))
    return CSRGraph(offsets=offsets, targets=values[n:], symmetric=symmetric)


def write_adjacency_graph(graph: CSRGraph, path: PathLike) -> None:
    """Write PBBS's ``AdjacencyGraph`` text format (see the reader)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write("AdjacencyGraph\n")
        fh.write(f"{graph.num_vertices}\n{graph.num_directed}\n")
        np.savetxt(fh, graph.offsets[:-1], fmt="%d")
        np.savetxt(fh, graph.targets, fmt="%d")


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Persist a CSR graph losslessly (offsets + targets + flags).

    Atomic like :func:`write_edge_list`; keeps ``np.savez``'s behavior
    of appending ``.npz`` when the name lacks it (the temp file carries
    the suffix so numpy does not rename it mid-flight).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    with atomic_write_path(path, suffix=".npz") as tmp:
        np.savez_compressed(
            tmp,
            offsets=graph.offsets,
            targets=graph.targets,
            symmetric=np.array([graph.symmetric]),
        )


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph written by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        try:
            return CSRGraph(
                offsets=data["offsets"],
                targets=data["targets"],
                symmetric=bool(data["symmetric"][0]),
            )
        except KeyError as exc:
            raise GraphFormatError(f"{path} is not a repro graph file") from exc
