"""Structural graph operations: relabeling, subgraphs, degree stats.

Support routines shared by contraction, verification and the
experiment harness.  All bulk operations are vectorized and charge
their PRAM cost.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.builder import from_directed_edges
from repro.graphs.csr import CSRGraph
from repro.runtime.context import current_context

__all__ = [
    "relabel_graph",
    "degree_statistics",
    "isolated_vertices",
    "induced_subgraph",
    "edges_as_undirected_pairs",
]


def relabel_graph(graph: CSRGraph, new_labels: np.ndarray) -> CSRGraph:
    """Apply a bijective relabeling ``v -> new_labels[v]``.

    Used to randomize vertex labels (the paper randomly assigns labels
    to its synthetic inputs so label order carries no information).
    """
    new_labels = np.asarray(new_labels, dtype=np.int64)
    n = graph.num_vertices
    if new_labels.shape != (n,):
        raise GraphFormatError("new_labels must have one entry per vertex")
    if n and (
        new_labels.min() < 0
        or new_labels.max() >= n
        or np.unique(new_labels).size != n
    ):
        raise GraphFormatError("new_labels must be a permutation of range(n)")
    src, dst = graph.edge_array()
    current_context().tracker.add("gather", work=float(2 * src.size), depth=1.0)
    return from_directed_edges(
        new_labels[src], new_labels[dst], n, symmetric=graph.symmetric
    )


def degree_statistics(graph: CSRGraph) -> Dict[str, float]:
    """Min/max/mean degree and isolated-vertex count (Table 1 support)."""
    deg = graph.degrees
    current_context().tracker.add("scan", work=float(deg.size), depth=1.0)
    if deg.size == 0:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "isolated": 0.0}
    return {
        "min": float(deg.min()),
        "max": float(deg.max()),
        "mean": float(deg.mean()),
        "isolated": float(np.count_nonzero(deg == 0)),
    }


def isolated_vertices(graph: CSRGraph) -> np.ndarray:
    """Vertices with degree zero (singleton components)."""
    current_context().tracker.add("scan", work=float(graph.num_vertices), depth=1.0)
    return np.flatnonzero(graph.degrees == 0)


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """The subgraph induced by *vertices*, with compacted ids.

    Returns ``(subgraph, old_ids)`` where ``old_ids[i]`` is the original
    id of the subgraph's vertex ``i``.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    n = graph.num_vertices
    if vertices.size and (vertices.min() < 0 or vertices.max() >= n):
        raise GraphFormatError("vertex id out of range")
    in_set = np.zeros(n, dtype=bool)
    in_set[vertices] = True
    new_id = np.full(n, -1, dtype=np.int64)
    new_id[vertices] = np.arange(vertices.size, dtype=np.int64)
    src, dst = graph.edge_array()
    keep = in_set[src] & in_set[dst]
    current_context().tracker.add("gather", work=float(2 * src.size), depth=1.0)
    sub = from_directed_edges(
        new_id[src[keep]], new_id[dst[keep]], vertices.size, symmetric=graph.symmetric
    )
    return sub, vertices


def edges_as_undirected_pairs(graph: CSRGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Each undirected edge once, as (min-endpoint, max-endpoint) arrays.

    The representation the spanning-forest baselines consume (the paper
    notes SF codes store each edge in one direction only).
    """
    src, dst = graph.edge_array()
    current_context().tracker.add("scan", work=float(src.size), depth=1.0)
    keep = src < dst
    return src[keep], dst[keep]
