"""parallel-SF-PRM: Patwary-Refsnes-Manne lock-based union-find forest.

Patwary et al. (IPDPS 2012) build a spanning forest with a shared
disjoint-set structure where each union takes a short critical section
(a lock on the roots being spliced) and finds use path compression.
The paper uses their *lock-based* variant — "we found that [the]
verification-based one sometimes fails to terminate" — and it is the
fastest parallel SF baseline in Table 2.

Under our synchronous-round CRCW simulation, the lock discipline
becomes: every active edge hooks the larger of its two current roots
under the smaller (larger-to-smaller ids is a monotone, hence acyclic,
orientation), with an arbitrary winner when several edges contend for
the same root — exactly the effect of whichever thread takes the lock
first.  Unlike the PBBS reservation scheme, *every* contended root
makes progress each round (the winner's hook commits), so far fewer
rounds are needed — the reproduction of PRM's speed edge over PBBS.

Also not work-efficient: losers re-find roots next round.
"""

from __future__ import annotations

import numpy as np

from repro.connectivity.base import ConnectivityResult
from repro.connectivity.union_find import compress_all, find_roots
from repro.errors import ConvergenceError
from repro.graphs.csr import CSRGraph
from repro.graphs.ops import edges_as_undirected_pairs
from repro.primitives.atomics import first_winner
from repro.runtime.context import current_context

__all__ = ["parallel_sf_prm_cc"]

_MAX_ROUNDS = 10_000


def parallel_sf_prm_cc(graph: CSRGraph) -> ConnectivityResult:
    """Connected components via lock-based parallel union-find forest."""
    tracker = current_context().tracker
    n = graph.num_vertices
    src, dst = edges_as_undirected_pairs(graph)
    parent = np.arange(n, dtype=np.int64)
    tracker.add("alloc", work=float(n), depth=1.0)

    active_src, active_dst = src, dst
    rounds = 0
    forest_edges = 0
    while active_src.size:
        rounds += 1
        if rounds > _MAX_ROUNDS:  # pragma: no cover - safety net
            raise ConvergenceError("parallel-SF-PRM exceeded round budget")
        ru = find_roots(parent, active_src)
        rv = find_roots(parent, active_dst)
        alive = ru != rv
        active_src, active_dst = active_src[alive], active_dst[alive]
        ru, rv = ru[alive], rv[alive]
        if ru.size == 0:
            break

        # Orient each hook from the larger root to the smaller; one
        # arbitrary winner per contended root (the lock holder).
        hi = np.maximum(ru, rv)
        lo = np.minimum(ru, rv)
        win_pos, win_roots = first_winner(hi)
        parent[win_roots] = lo[win_pos]
        tracker.add("scatter", work=float(win_roots.size), depth=1.0)
        forest_edges += int(win_roots.size)

        # Winner edges leave the active set; losers retry after the
        # compression (their roots moved).
        settled = np.zeros(ru.size, dtype=bool)
        settled[win_pos] = True
        active_src, active_dst = active_src[~settled], active_dst[~settled]
        compress_all(parent)
        tracker.sync()

    compress_all(parent)  # root-finding post-processing (in timings)
    return ConnectivityResult(
        labels=parent.copy(),
        algorithm="parallel-SF-PRM",
        iterations=rounds,
        stats={"forest_edges": forest_edges},
    )
