"""serial-SF: the sequential spanning-forest connectivity baseline.

The paper compares every parallel implementation against "a simple
sequential spanning forest-based connectivity algorithm using
union-find (serial-SF) from the PBBS": stream the undirected edges once
through a union-find, then a post-processing pass assigns every vertex
the id of its tree root ("for the spanning forest-based connectivity
algorithms, we include in the timings a post-processing step that finds
the ID of the root of the tree for each vertex").

All work is charged under the sequential cost kind, so the machine
model keeps this baseline flat across thread counts — the paper's
Figure 2 horizontal line.
"""

from __future__ import annotations

from typing import List, Tuple


from repro.connectivity.base import ConnectivityResult
from repro.connectivity.union_find import UnionFind
from repro.graphs.csr import CSRGraph
from repro.graphs.ops import edges_as_undirected_pairs
from repro.pram.cost import CostTracker, tracking
from repro.runtime.context import current_context

__all__ = ["serial_sf_cc", "serial_spanning_forest"]


def serial_spanning_forest(
    graph: CSRGraph,
) -> Tuple[UnionFind, List[Tuple[int, int]]]:
    """Union-find sweep over the edges; returns the structure + forest edges.

    O(m alpha(n)) sequential work.
    """
    # The edge extraction is part of this *sequential* program, so its
    # work must not parallelize in the machine model: swallow the
    # parallel-primitive charges and re-charge them as seq work.
    with tracking(CostTracker()) as sub:
        src, dst = edges_as_undirected_pairs(graph)
        uf = UnionFind(graph.num_vertices)
    current_context().tracker.add("seq", work=sub.total_work(), depth=0.0)
    forest: List[Tuple[int, int]] = []
    forest_append = forest.append
    union = uf.union
    for u, v in zip(src.tolist(), dst.tolist()):
        if union(u, v):
            forest_append((u, v))
    uf.flush_costs()
    return uf, forest


def serial_sf_cc(graph: CSRGraph) -> ConnectivityResult:
    """Connected components via sequential union-find spanning forest.

    Includes the root-finding post-pass in its charged cost, matching
    the paper's timing methodology.
    """
    uf, forest = serial_spanning_forest(graph)
    labels = uf.components()
    return ConnectivityResult(
        labels=labels,
        algorithm="serial-SF",
        iterations=1,
        stats={"forest_edges": len(forest)},
    )
