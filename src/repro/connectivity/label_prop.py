"""Pure label-propagation connectivity (the graph-systems baseline).

Every vertex starts with its own id; each sweep, every vertex takes the
minimum of its own and its neighbors' labels; stop when a sweep changes
nothing.  This is the connectivity routine in PEGASUS/GraphChi-style
systems the paper's related-work section discusses: depth proportional
to the largest component's diameter and O(m * diameter) work — "not
work-efficient ... usually does not perform as well as linear or
near-linear work algorithms".

Exposed both as a standalone baseline and as the second stage of
multistep-CC (restricted to a vertex subset via the ``active_mask``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.connectivity.base import ConnectivityResult
from repro.errors import ConvergenceError
from repro.graphs.csr import CSRGraph
from repro.primitives.atomics import write_min
from repro.runtime.context import current_context

__all__ = ["label_prop_cc", "propagate_labels"]

_MAX_SWEEPS = 2_000_000


def propagate_labels(
    graph: CSRGraph,
    labels: np.ndarray,
    active_mask: Optional[np.ndarray] = None,
) -> int:
    """Run min-label propagation to fixpoint; returns the sweep count.

    Mutates *labels*.  When *active_mask* is given, only edges with
    both endpoints active participate (multistep-CC's second stage runs
    on the vertices the giant-component BFS did not reach).
    """
    tracker = current_context().tracker
    src, dst = graph.edge_array()
    if active_mask is not None:
        keep = active_mask[src] & active_mask[dst]
        src, dst = src[keep], dst[keep]
        tracker.add("scan", work=float(active_mask.size), depth=1.0)
    sweeps = 0
    while True:
        sweeps += 1
        if sweeps > _MAX_SWEEPS:  # pragma: no cover - safety net
            raise ConvergenceError("label propagation exceeded sweep budget")
        before = labels.copy()
        tracker.add("alloc", work=float(labels.size), depth=1.0)
        # One sweep: every vertex writeMins its label onto its neighbors.
        write_min(labels, dst, before[src])
        tracker.add("gather", work=float(src.size), depth=1.0)
        tracker.sync()
        if np.array_equal(before, labels):
            return sweeps


def label_prop_cc(graph: CSRGraph) -> ConnectivityResult:
    """Connected components by min-label propagation."""
    tracker = current_context().tracker
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    tracker.add("alloc", work=float(graph.num_vertices), depth=1.0)
    sweeps = propagate_labels(graph, labels)
    return ConnectivityResult(
        labels=labels,
        algorithm="label-prop-CC",
        iterations=sweeps,
        stats={},
    )
