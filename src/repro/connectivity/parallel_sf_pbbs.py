"""parallel-SF-PBBS: spanning forest via deterministic reservations.

The Problem Based Benchmark Suite's parallel spanning forest processes
edges speculatively: each round, every still-active edge finds the
current roots of its endpoints and *reserves* both roots with its edge
index (a writeMin, so the smallest-index edge deterministically wins);
an edge that still holds (at least) one of its roots at check time
commits, linking that root under the other, and everyone else retries
after a pointer-jumping compression.

Commit-if-holding-either is safe: a links-cycle r1 -> r2 -> ... -> r1
would need each linking edge e_i to be the minimum reservation at r_i,
but e_{i-1} also wrote r_i, forcing e_i <= e_{i-1} around the cycle —
so all the e_i are equal, i.e. one edge linking a root to itself,
which the ru != rv filter excludes.  And the globally smallest active
edge always holds both its roots, guaranteeing progress.

This baseline is *not* work-efficient: an edge may retry many rounds,
and every round re-finds roots — the super-linear work the paper's
Table 2 exposes (parallel-SF-PBBS is the slowest single-thread
parallel code).
"""

from __future__ import annotations

import numpy as np

from repro.connectivity.base import ConnectivityResult
from repro.connectivity.union_find import compress_all, find_roots
from repro.errors import ConvergenceError
from repro.graphs.csr import CSRGraph
from repro.graphs.ops import edges_as_undirected_pairs
from repro.primitives.atomics import write_min
from repro.runtime.context import current_context

__all__ = ["parallel_sf_pbbs_cc"]

_INF = np.int64(2**62)
_MAX_ROUNDS = 10_000


def parallel_sf_pbbs_cc(graph: CSRGraph) -> ConnectivityResult:
    """Connected components via PBBS-style reservation spanning forest.

    Includes the root-finding post-pass (pointer jumping to full
    compression), per the paper's timing methodology.
    """
    tracker = current_context().tracker
    n = graph.num_vertices
    src, dst = edges_as_undirected_pairs(graph)
    parent = np.arange(n, dtype=np.int64)
    reservation = np.full(n, _INF, dtype=np.int64)
    tracker.add("alloc", work=float(2 * n), depth=1.0)

    active_src, active_dst = src, dst
    active_idx = np.arange(src.size, dtype=np.int64)
    rounds = 0
    forest_edges = 0
    while active_idx.size:
        rounds += 1
        if rounds > _MAX_ROUNDS:  # pragma: no cover - safety net
            raise ConvergenceError("parallel-SF-PBBS exceeded round budget")
        ru = find_roots(parent, active_src)
        rv = find_roots(parent, active_dst)
        alive = ru != rv
        active_src, active_dst = active_src[alive], active_dst[alive]
        active_idx = active_idx[alive]
        ru, rv = ru[alive], rv[alive]
        if active_idx.size == 0:
            break

        # Reserve both roots with the edge index; smallest index wins.
        reservation[ru] = _INF
        reservation[rv] = _INF
        write_min(reservation, ru, active_idx)
        write_min(reservation, rv, active_idx)

        # Commit: an edge holding either root links that root under the
        # other (acyclic — see module docstring); losers retry.
        holds_u = reservation[ru] == active_idx
        holds_v = reservation[rv] == active_idx
        tracker.add("gather", work=float(2 * active_idx.size), depth=1.0)
        link_from = np.where(holds_u, ru, rv)
        link_to = np.where(holds_u, rv, ru)
        committed = holds_u | holds_v
        parent[link_from[committed]] = link_to[committed]
        tracker.add("scatter", work=float(int(committed.sum())), depth=1.0)
        forest_edges += int(committed.sum())

        done = committed  # committed edges leave the active set
        active_src, active_dst = active_src[~done], active_dst[~done]
        active_idx = active_idx[~done]
        compress_all(parent)
        tracker.sync()

    compress_all(parent)  # the paper's root-finding post-processing
    return ConnectivityResult(
        labels=parent.copy(),
        algorithm="parallel-SF-PBBS",
        iterations=rounds,
        stats={"forest_edges": forest_edges},
    )
