"""Algorithm 1: decomposition-based connected components (the paper).

    procedure CC(G):
        L  = DECOMP(G, beta)
        G' = CONTRACT(G, L)
        if |E'| = 0: return L
        L' = CC(G')
        return RELABELUP(L, L')

Each DECOMP removes at least a (1 - beta) [min] / (1 - 2*beta) [arb]
fraction of edges in expectation (usually far more, because contraction
merges duplicate edges — Figure 4), so there are O(log m) iterations
w.h.p.; total expected work O(m), depth O(log^3 n) w.h.p. (Theorem 1).

We run the recursion as an explicit loop with an unwind stack — the
iterations are a straight chain, and the loop gives the harness natural
access to the per-iteration edge counts (Figure 4 series).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.connectivity.base import ConnectivityResult
from repro.decomp import DECOMP_VARIANTS
from repro.decomp.contract import Contraction, contract
from repro.errors import ConvergenceError, ParameterError
from repro.graphs.csr import CSRGraph
from repro.runtime.context import current_context

__all__ = ["decomp_cc", "DEFAULT_BETA"]

#: The experiments' default decomposition parameter; the paper's
#: Figure 3 locates the best beta between 0.05 and 0.2.
DEFAULT_BETA = 0.2

#: Iteration backstop far above the O(log m) bound for any feasible input.
_MAX_ITERATIONS = 200


def decomp_cc(
    graph: CSRGraph,
    beta: float = DEFAULT_BETA,
    variant: str = "arb",
    seed: int = 1,
    schedule_mode: str = "permutation",
    remove_duplicates: bool = True,
    **variant_kwargs,
) -> ConnectivityResult:
    """Connected components via recursive decomposition + contraction.

    Parameters
    ----------
    graph:
        Symmetric CSR graph.
    beta:
        Decomposition parameter; must be in (0, 1).  The linear-work
        guarantee needs beta < 1 for ``variant="min"`` and beta < 1/2
        for the arbitrary-tie-break variants (Theorem 2); values
        outside that are allowed for experiments (Figure 3 sweeps to
        0.95) but void the work bound.
    variant:
        ``"min"`` (Algorithm 2), ``"arb"`` (Algorithm 3, default) or
        ``"arb-hybrid"`` (direction-optimizing) — the paper's
        decomp-min-CC / decomp-arb-CC / decomp-arb-hybrid-CC.
    seed:
        Base seed; each iteration derives an independent stream.
    schedule_mode:
        Start-time schedule: the paper's ``"permutation"`` simulation
        or exact ``"exponential"`` draws.
    remove_duplicates:
        Pass-through to contraction (ablation hook).
    variant_kwargs:
        Extra arguments for the variant (e.g. ``dense_threshold`` for
        the hybrid).

    Returns
    -------
    ConnectivityResult
        Labels in ``[0, n)``; ``edges_per_iteration`` holds the
        undirected edge count entering each DECOMP call (Figure 4).
    """
    if variant not in DECOMP_VARIANTS:
        raise ParameterError(
            f"unknown variant {variant!r}; expected one of {sorted(DECOMP_VARIANTS)}"
        )
    decomp_fn = DECOMP_VARIANTS[variant]
    tracker = current_context().tracker

    # ---- downward pass: decompose + contract until |E'| = 0. --------
    current = graph
    unwind: List[Contraction] = []
    edges_per_iteration: List[int] = [graph.num_edges]
    rounds_per_iteration: List[int] = []
    for iteration in range(_MAX_ITERATIONS):
        decomposition = decomp_fn(
            current,
            beta,
            seed=seed + 1000003 * iteration,
            schedule_mode=schedule_mode,
            **variant_kwargs,
        )
        rounds_per_iteration.append(decomposition.num_rounds)
        with tracker.phase("contractGraph"):
            contraction = contract(
                decomposition,
                current.num_vertices,
                remove_duplicates=remove_duplicates,
                dedup_seed=seed + 7 * iteration,
            )
        unwind.append(contraction)
        if contraction.is_base_case:
            break
        current = contraction.graph
        edges_per_iteration.append(current.num_edges)
    else:
        raise ConvergenceError(
            f"decomp_cc exceeded {_MAX_ITERATIONS} iterations "
            f"(beta={beta}, variant={variant})",
            algorithm=f"decomp-{variant}-CC",
            rounds_used=_MAX_ITERATIONS,
            budget=_MAX_ITERATIONS,
        )

    # ---- upward pass: RELABELUP through the contraction chain. ------
    # At the deepest level every component is maximal, so its label is
    # its own component id.  One level up, a non-singleton component
    # takes the label of its contracted vertex (offset past that
    # level's singleton label space); singletons keep distinct labels.
    with tracker.phase("contractGraph"):
        last = unwind[-1]
        labels = np.arange(last.num_components, dtype=np.int64)
        for contraction in reversed(unwind):
            k = contraction.num_components
            sub = contraction.component_to_sub
            component_labels = np.empty(k, dtype=np.int64)
            is_sub = sub >= 0
            if contraction is last:
                component_labels = np.arange(k, dtype=np.int64)
            else:
                # Non-singletons inherit the deeper labels; singletons
                # get fresh labels above the deeper label space.
                deeper_space = int(labels.max()) + 1 if labels.size else 0
                component_labels[is_sub] = labels[sub[is_sub]]
                num_singletons = int((~is_sub).sum())
                component_labels[~is_sub] = deeper_space + np.arange(
                    num_singletons, dtype=np.int64
                )
            labels = component_labels[contraction.vertex_to_component]
            tracker.add("gather", work=float(labels.size), depth=1.0)

    return ConnectivityResult(
        labels=labels,
        algorithm=f"decomp-{variant}-CC",
        iterations=len(unwind),
        edges_per_iteration=edges_per_iteration,
        stats={
            "beta": beta,
            "rounds_per_iteration": rounds_per_iteration,
            "schedule_mode": schedule_mode,
        },
    )
