"""hybrid-BFS-CC: direction-optimizing BFS over components one-by-one.

The baseline from Ligra the paper compares against: run a
direction-optimizing BFS [Beamer et al.] from an unvisited vertex,
label everything it reaches, and repeat until all vertices are
visited.  Work-efficient (O(n + m)), but the depth is the *sum of the
component diameters* — linear in the worst case — which is why it wins
on dense single-component graphs (random, rMat2, com-Orkut), collapses
on the line graph, and "does poorly in parallel [on rMat] since it
visits the components one-by-one".

The implementation shares one labels array across all the BFS runs
(per-component allocation would inflate the cost profile) and applies
the dense switch against the whole vertex set, exactly as a
Ligra-style code would: small components never trigger the bottom-up
sweep, big ones do.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.bfs.frontier import DENSE_THRESHOLD
from repro.bfs.hybrid_bfs import bottom_up_step
from repro.connectivity.base import ConnectivityResult
from repro.graphs.csr import CSRGraph
from repro.pram.cost import current_tracker
from repro.primitives.atomics import first_winner

__all__ = ["hybrid_bfs_cc", "bfs_from_source"]

_UNLABELED = np.int64(-1)


def bfs_from_source(
    graph: CSRGraph,
    source: int,
    labels: np.ndarray,
    label: int,
    dense_threshold: float = DENSE_THRESHOLD,
) -> int:
    """Label *source*'s component with *label* via hybrid BFS.

    Mutates *labels* (entries must be ``-1`` where unvisited); returns
    the number of vertices labeled, including the source.
    """
    tracker = current_tracker()
    n = graph.num_vertices
    labels[source] = label
    frontier = np.array([source], dtype=np.int64)
    count = 1
    # Ligra's direction rule: go bottom-up when the frontier's outgoing
    # edges (plus its vertices) exceed (m + n)/20 at the default
    # dense_threshold of 0.20 — an edge-count heuristic, so a handful of
    # hub vertices can already flip a dense graph to the read-based
    # sweep (the rMat2/com-Orkut regime).
    switch_budget = (graph.num_directed + n) * dense_threshold / 4.0
    while frontier.size:
        frontier_edges = int(
            (graph.offsets[frontier + 1] - graph.offsets[frontier]).sum()
        )
        tracker.add("scan", work=float(frontier.size), depth=1.0)
        if frontier_edges + frontier.size > switch_budget:
            visited = labels != _UNLABELED
            tracker.add("scan", work=float(n), depth=1.0)
            bitmap = np.zeros(n, dtype=bool)
            bitmap[frontier] = True
            winners, _parents, _examined = bottom_up_step(graph, bitmap, visited)
        else:
            src, dst = graph.expand(frontier)
            fresh = labels[dst] == _UNLABELED
            tracker.add("gather", work=float(dst.size), depth=1.0)
            _pos, winners = first_winner(dst[fresh])
        labels[winners] = label
        tracker.add("scatter", work=float(winners.size), depth=1.0)
        tracker.sync()
        count += int(winners.size)
        frontier = winners
    return count


def hybrid_bfs_cc(
    graph: CSRGraph, dense_threshold: float = DENSE_THRESHOLD
) -> ConnectivityResult:
    """Connected components by repeated direction-optimizing BFS.

    Components are discovered in vertex-id order; the next source is
    found with a monotone cursor (amortized O(n) across the whole run).
    """
    tracker = current_tracker()
    n = graph.num_vertices
    labels = np.full(n, _UNLABELED, dtype=np.int64)
    tracker.add("alloc", work=float(n), depth=1.0)

    num_components = 0
    component_sizes: List[int] = []
    cursor = 0
    visited_total = 0
    labels_list_charge = 0
    while visited_total < n:
        while cursor < n and labels[cursor] != _UNLABELED:
            cursor += 1
            labels_list_charge += 1
        if cursor >= n:
            break
        size = bfs_from_source(
            graph, cursor, labels, num_components, dense_threshold
        )
        component_sizes.append(size)
        visited_total += size
        num_components += 1
    # The source-scan is a sequential cursor in the real code too.
    tracker.add("seq", work=float(labels_list_charge), depth=float(num_components))
    return ConnectivityResult(
        labels=labels,
        algorithm="hybrid-BFS-CC",
        iterations=num_components,
        stats={"component_sizes_found": component_sizes},
    )
