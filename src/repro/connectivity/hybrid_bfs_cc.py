"""hybrid-BFS-CC: direction-optimizing BFS over components one-by-one.

The baseline from Ligra the paper compares against: run a
direction-optimizing BFS [Beamer et al.] from an unvisited vertex,
label everything it reaches, and repeat until all vertices are
visited.  Work-efficient (O(n + m)), but the depth is the *sum of the
component diameters* — linear in the worst case — which is why it wins
on dense single-component graphs (random, rMat2, com-Orkut), collapses
on the line graph, and "does poorly in parallel [on rMat] since it
visits the components one-by-one".

The implementation shares one labels array across all the BFS runs
(per-component allocation would inflate the cost profile) and applies
the dense switch against the whole vertex set, exactly as a
Ligra-style code would: small components never trigger the bottom-up
sweep, big ones do.

As an engine configuration each per-component BFS is a
:class:`~repro.engine.state.ComponentLabelState` under Ligra's
edge-count direction rule
(:class:`~repro.engine.direction.LigraEdgeHybrid`).  The outer
next-source loop is a sequential cursor, not a level-synchronous
frontier loop, so it stays here.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.connectivity.base import ConnectivityResult
from repro.engine.core import UNVISITED, TraversalEngine
from repro.engine.direction import LigraEdgeHybrid
from repro.engine.frontier import DENSE_THRESHOLD
from repro.engine.state import ComponentLabelState
from repro.graphs.csr import CSRGraph
from repro.runtime.context import current_context

__all__ = ["hybrid_bfs_cc", "bfs_from_source"]

#: Historical alias for the shared sentinel (see
#: :data:`repro.engine.core.UNVISITED`).
_UNLABELED = UNVISITED


def bfs_from_source(
    graph: CSRGraph,
    source: int,
    labels: np.ndarray,
    label: int,
    dense_threshold: float = DENSE_THRESHOLD,
    workspace=None,
) -> int:
    """Label *source*'s component with *label* via hybrid BFS.

    Mutates *labels* (entries must be ``-1`` where unvisited); returns
    the number of vertices labeled, including the source.  *workspace*
    lets a caller looping over components share one execution arena
    across all the per-component runs.
    """
    state = ComponentLabelState(graph, source, labels, label, workspace=workspace)
    TraversalEngine(
        state, direction=LigraEdgeHybrid(graph, threshold=dense_threshold)
    ).run()
    return state.count


def hybrid_bfs_cc(
    graph: CSRGraph, dense_threshold: float = DENSE_THRESHOLD
) -> ConnectivityResult:
    """Connected components by repeated direction-optimizing BFS.

    Components are discovered in vertex-id order; the next source is
    found with a monotone cursor (amortized O(n) across the whole run).
    """
    tracker = current_context().tracker
    n = graph.num_vertices
    labels = np.full(n, _UNLABELED, dtype=np.int64)
    tracker.add("alloc", work=float(n), depth=1.0)
    # One arena for the whole run: rMat-style graphs have millions of
    # components, and a per-component workspace would never amortize.
    workspace = current_context().acquire_workspace(n)

    num_components = 0
    component_sizes: List[int] = []
    cursor = 0
    visited_total = 0
    labels_list_charge = 0
    while visited_total < n:
        while cursor < n and labels[cursor] != _UNLABELED:
            cursor += 1
            labels_list_charge += 1
        if cursor >= n:
            break
        size = bfs_from_source(
            graph, cursor, labels, num_components, dense_threshold,
            workspace=workspace,
        )
        component_sizes.append(size)
        visited_total += size
        num_components += 1
    # The source-scan is a sequential cursor in the real code too.
    tracker.add("seq", work=float(labels_list_charge), depth=float(num_components))
    return ConnectivityResult(
        labels=labels,
        algorithm="hybrid-BFS-CC",
        iterations=num_components,
        stats={"component_sizes_found": component_sizes},
    )
