"""multistep-CC: Slota-Rajamanickam-Madduri (IPDPS 2014).

The strongest BFS-family baseline in the paper's comparison: first a
direction-optimizing parallel BFS from a high-degree vertex computes
the (usually giant) first component; then min-label propagation
finishes the remaining vertices in parallel.  This avoids
hybrid-BFS-CC's one-component-at-a-time collapse on many-component
graphs like rMat, while inheriting its strengths on dense
low-diameter inputs.  Worst case (the line graph): quadratic work and
linear depth — the paper's Table 2 shows it flat-lining there.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.frontier import DENSE_THRESHOLD
from repro.connectivity.base import ConnectivityResult
from repro.connectivity.hybrid_bfs_cc import bfs_from_source
from repro.connectivity.label_prop import propagate_labels
from repro.graphs.csr import CSRGraph
from repro.runtime.context import current_context

__all__ = ["multistep_cc"]

_UNLABELED = np.int64(-1)


def multistep_cc(
    graph: CSRGraph, dense_threshold: float = DENSE_THRESHOLD
) -> ConnectivityResult:
    """Connected components via BFS for the first component + label prop.

    The BFS source is the maximum-degree vertex (Slota et al.'s
    heuristic for hitting the giant component).
    """
    tracker = current_context().tracker
    n = graph.num_vertices
    labels = np.full(n, _UNLABELED, dtype=np.int64)
    tracker.add("alloc", work=float(n), depth=1.0)
    if n == 0:
        return ConnectivityResult(
            labels=labels, algorithm="multistep-CC", iterations=0, stats={}
        )

    # Stage 1: hybrid BFS from the max-degree vertex.
    source = int(np.argmax(graph.degrees))
    tracker.add("scan", work=float(n), depth=1.0)
    # Use a label outside the vertex-id space so stage 2's min-labels
    # (vertex ids) can never swallow the giant component.
    giant_label = n
    giant_size = bfs_from_source(
        graph, source, labels, giant_label, dense_threshold
    )

    # Stage 2: min-label propagation over everything the BFS missed.
    rest = labels == _UNLABELED
    tracker.add("scan", work=float(n), depth=1.0)
    ids = np.arange(n, dtype=np.int64)
    labels[rest] = ids[rest]
    sweeps = propagate_labels(graph, labels, active_mask=rest)
    return ConnectivityResult(
        labels=labels,
        algorithm="multistep-CC",
        iterations=1 + sweeps,
        stats={"giant_component_size": giant_size, "label_prop_sweeps": sweeps},
    )
