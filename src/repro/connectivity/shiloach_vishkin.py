"""Shiloach-Vishkin connectivity (JACM 1982) — the classical baseline.

The archetypal "simple but super-linear" parallel connectivity
algorithm the paper's introduction positions itself against: vertices
are combined into trees by repeated *hooking* (a root adopts a smaller
neighboring tree id) and *shortcutting* (pointer doubling).  The tree
count drops by a constant factor per round, giving O(log n) rounds —
but every round touches all m edges, so the work is O(m log n), not
linear.  Included so the experiments can quantify the work-efficiency
gap the paper's algorithm closes.

Implemented in the standard practical form: conditional hooking of
roots via writeMin, unconditional hooking of stagnant stars, then a
full shortcut, iterated to fixpoint.
"""

from __future__ import annotations

import numpy as np

from repro.connectivity.base import ConnectivityResult
from repro.connectivity.union_find import compress_all
from repro.errors import ConvergenceError
from repro.graphs.csr import CSRGraph
from repro.primitives.atomics import write_min
from repro.runtime.context import current_context

__all__ = ["shiloach_vishkin_cc"]

_MAX_ROUNDS = 10_000


def shiloach_vishkin_cc(graph: CSRGraph) -> ConnectivityResult:
    """Connected components via Shiloach-Vishkin hook-and-shortcut."""
    tracker = current_context().tracker
    n = graph.num_vertices
    src, dst = graph.edge_array()
    parent = np.arange(n, dtype=np.int64)
    tracker.add("alloc", work=float(n), depth=1.0)

    rounds = 0
    while True:
        rounds += 1
        if rounds > _MAX_ROUNDS:  # pragma: no cover - safety net
            raise ConvergenceError("Shiloach-Vishkin exceeded round budget")
        before = parent.copy()
        tracker.add("alloc", work=float(n), depth=1.0)

        # Conditional hooking: for every edge (u, v), if u's parent is a
        # root, offer it v's parent when smaller (writeMin resolves the
        # concurrent offers).
        pu = parent[src]
        pv = parent[dst]
        tracker.add("gather", work=float(2 * src.size), depth=1.0)
        u_root = parent[pu] == pu
        smaller = pv < pu
        hook = u_root & smaller
        write_min(parent, pu[hook], pv[hook])

        # Shortcut: pointer doubling until flat.
        compress_all(parent)
        tracker.sync()
        if np.array_equal(parent, before):
            break
    return ConnectivityResult(
        labels=parent,
        algorithm="shiloach-vishkin-CC",
        iterations=rounds,
        stats={},
    )
