"""Disjoint-set (union-find) structures, sequential and array-based.

Two consumers:

* :mod:`repro.connectivity.serial_sf` wraps :class:`UnionFind` — union
  by rank + path halving, the classic near-linear sequential structure
  behind the paper's serial-SF baseline (PBBS's ``serialST``);
* the parallel spanning-forest baselines use the module-level
  :func:`find_roots` / :func:`compress_all` vectorized helpers over a
  shared parent array, the idiom of Patwary et al.'s multi-core
  disjoint-set codes.

The sequential structure uses plain Python lists internally (scalar
indexing into NumPy arrays is several times slower — see the profiling
guidance in the HPC coding guides) and *defers* its cost accounting:
operations bump plain counters and :meth:`UnionFind.flush_costs`
charges them in one call, keeping the per-edge overhead of the
sequential baseline honest.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.runtime.context import current_context

__all__ = ["UnionFind", "find_roots", "compress_all", "pointer_jump_to_roots"]


COMPRESSION_STRATEGIES = ("halving", "splitting", "full", "none")


class UnionFind:
    """Sequential union-find with selectable path-compression strategy.

    Union is always by rank; *compression* picks the find-time scheme —
    the design axis Patwary, Refsnes and Manne study for their
    multi-core codes (the paper's parallel-SF-PRM baseline):

    * ``halving`` (default): every node on the path points to its
      grandparent — one pass, the PRM choice;
    * ``splitting``: like halving but advances one hop at a time;
    * ``full``: two passes, every path node repointed to the root;
    * ``none``: no compression (union-by-rank alone: O(log n) finds).

    All amortized near-constant per operation except ``none``.  Work is
    charged under the ``seq`` cost kind: the machine model never
    parallelizes it, which is what makes serial-SF flat across the
    paper's thread sweep.
    """

    def __init__(self, n: int, compression: str = "halving"):
        if compression not in COMPRESSION_STRATEGIES:
            raise ValueError(
                f"unknown compression {compression!r}; "
                f"choose from {COMPRESSION_STRATEGIES}"
            )
        self.n = n
        self.compression = compression
        self.parent: List[int] = list(range(n))
        self.rank: List[int] = [0] * n
        self._ops = 0
        current_context().tracker.add("alloc", work=float(2 * n), depth=1.0)

    def find(self, x: int) -> int:
        """Root of x's set, compressing per the selected strategy."""
        parent = self.parent
        ops = 1
        if self.compression == "halving":
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
                ops += 1
        elif self.compression == "splitting":
            while parent[x] != x:
                nxt = parent[x]
                parent[x] = parent[nxt]
                x = nxt
                ops += 1
        elif self.compression == "full":
            root = x
            while parent[root] != root:
                root = parent[root]
                ops += 1
            while parent[x] != root:
                parent[x], x = root, parent[x]
                ops += 1
            x = root
        else:  # none
            while parent[x] != x:
                x = parent[x]
                ops += 1
        self._ops += ops
        return x

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of x and y; True if they were distinct."""
        rx, ry = self.find(x), self.find(y)
        self._ops += 2
        if rx == ry:
            return False
        if self.rank[rx] < self.rank[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        if self.rank[rx] == self.rank[ry]:
            self.rank[rx] += 1
        return True

    def flush_costs(self) -> None:
        """Charge accumulated operations as sequential work.

        No depth is charged: ``seq`` work is never divided by the core
        count in the machine model, so it already sits on the critical
        path once — charging depth too would double-count it.
        """
        if self._ops:
            current_context().tracker.add("seq", work=float(self._ops), depth=0.0)
            self._ops = 0

    def components(self) -> np.ndarray:
        """Per-element root labels (flattens all paths, sequentially)."""
        out = np.empty(self.n, dtype=np.int64)
        for v in range(self.n):
            out[v] = self.find(v)
        self.flush_costs()
        return out


def find_roots(parent: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """Roots of *vertices* under *parent*, by synchronous pointer jumping.

    Each jump round advances every still-unsettled vertex one hop:
    O(total hops) work, O(max path length) rounds — the parallel
    ``find`` used by the spanning-forest baselines.  Does not mutate
    *parent*.
    """
    tracker = current_context().tracker
    cur = parent[np.asarray(vertices, dtype=np.int64)]
    rounds = 0
    while True:
        nxt = parent[cur]
        tracker.add("gather", work=float(cur.size), depth=1.0)
        rounds += 1
        if np.array_equal(nxt, cur):
            return cur
        cur = nxt
        if rounds > 2 * parent.size + 4:  # pragma: no cover - safety net
            raise RuntimeError("find_roots failed to converge (cycle in parents?)")


def compress_all(parent: np.ndarray) -> int:
    """Full path compression: make every parent pointer point to a root.

    Mutates *parent* in place by repeated global pointer doubling
    (``parent = parent[parent]``); returns the number of rounds
    (O(log n) — each round halves every path length).  This is the
    "shortcut" step of Shiloach-Vishkin and the root-finding
    post-processing step the paper includes in the SF baselines'
    timings.
    """
    tracker = current_context().tracker
    rounds = 0
    while True:
        grand = parent[parent]
        tracker.add("gather", work=float(parent.size), depth=1.0)
        rounds += 1
        if np.array_equal(grand, parent):
            return rounds
        parent[:] = grand


def pointer_jump_to_roots(parent: np.ndarray) -> np.ndarray:
    """Non-mutating variant of :func:`compress_all`; returns root labels."""
    out = parent.copy()
    current_context().tracker.add("alloc", work=float(parent.size), depth=1.0)
    compress_all(out)
    return out
