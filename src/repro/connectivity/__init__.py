"""Connectivity algorithms: the paper's decomp-CC and all its baselines.

The eight implementations of the paper's Table 2, all returning a
:class:`~repro.connectivity.base.ConnectivityResult`:

================ =====================================================
decomp-min-CC     ``decomp_cc(g, variant="min")`` — Algorithm 1 + 2
decomp-arb-CC     ``decomp_cc(g, variant="arb")`` — Algorithm 1 + 3
decomp-arb-hybrid-CC  ``decomp_cc(g, variant="arb-hybrid")``
serial-SF         ``serial_sf_cc`` — sequential union-find forest
parallel-SF-PBBS  ``parallel_sf_pbbs_cc`` — deterministic reservations
parallel-SF-PRM   ``parallel_sf_prm_cc`` — lock-based union-find
hybrid-BFS-CC     ``hybrid_bfs_cc`` — dir-optimizing BFS per component
multistep-CC      ``multistep_cc`` — BFS giant comp + label propagation
================ =====================================================

Plus two classical extras for the work-efficiency comparisons:
``label_prop_cc`` (graph-systems style) and ``shiloach_vishkin_cc``
(O(m log n)).
"""

from repro.connectivity.base import (
    ConnectivityResult,
    canonicalize_labels,
    num_components,
)
from repro.connectivity.decomp_cc import DEFAULT_BETA, decomp_cc
from repro.connectivity.hybrid_bfs_cc import bfs_from_source, hybrid_bfs_cc
from repro.connectivity.label_prop import label_prop_cc, propagate_labels
from repro.connectivity.multistep import multistep_cc
from repro.connectivity.parallel_sf_pbbs import parallel_sf_pbbs_cc
from repro.connectivity.parallel_sf_prm import parallel_sf_prm_cc
from repro.connectivity.serial_sf import serial_sf_cc, serial_spanning_forest
from repro.connectivity.shiloach_vishkin import shiloach_vishkin_cc
from repro.connectivity.spanning_forest import (
    decomp_spanning_forest,
    partition_parents,
    verify_spanning_forest,
)
from repro.connectivity.union_find import UnionFind, compress_all, find_roots

__all__ = [
    "ConnectivityResult",
    "DEFAULT_BETA",
    "UnionFind",
    "bfs_from_source",
    "canonicalize_labels",
    "compress_all",
    "decomp_cc",
    "decomp_spanning_forest",
    "find_roots",
    "partition_parents",
    "verify_spanning_forest",
    "hybrid_bfs_cc",
    "label_prop_cc",
    "multistep_cc",
    "num_components",
    "parallel_sf_pbbs_cc",
    "parallel_sf_prm_cc",
    "propagate_labels",
    "serial_sf_cc",
    "serial_spanning_forest",
    "shiloach_vishkin_cc",
]
