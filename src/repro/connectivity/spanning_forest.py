"""Spanning forest extraction from the decomposition algorithm.

The paper's footnote 1 notes that "a spanning forest algorithm can be
used to compute connected components"; this module implements the
converse — the decomposition-based connectivity algorithm naturally
*produces* a spanning forest, an extension beyond the paper's stated
scope:

* inside each decomposition partition, the BFS that grew it defines a
  tree rooted at the center (we re-derive the parents with one
  multi-source BFS over same-label edges — O(n + m));
* each tree edge of the recursively computed spanning forest of the
  contracted graph maps back to a *representative original edge* of
  the component adjacency it uses (carried by
  :class:`~repro.decomp.contract.Contraction`).

The union over all recursion levels is a spanning forest of the input:
per level, the intra-partition trees span each partition, and the
contracted forest connects partitions exactly as the contracted graph's
forest connects its vertices — acyclicity and edge count
(n − #components) follow inductively.

Same asymptotics as decomp-CC: O(m) expected work, O(log^3 n) depth
w.h.p.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.connectivity.union_find import UnionFind
from repro.decomp import DECOMP_VARIANTS, contract
from repro.engine.core import TraversalEngine, TraversalState, end_round
from repro.engine.direction import AlwaysPush
from repro.errors import ParameterError, VerificationError
from repro.graphs.csr import CSRGraph
from repro.primitives.atomics import first_winner
from repro.runtime.context import current_context

__all__ = ["decomp_spanning_forest", "partition_parents", "verify_spanning_forest"]

_MAX_LEVELS = 200


class _PartitionParentState(TraversalState):
    """Multi-source same-label BFS rebuilding per-partition parent trees.

    Push-only: every center starts reached, and a round claims the
    unreached same-label neighbors of the frontier with an arbitrary
    first-winner rule (which neighbor wins parenthood is immaterial —
    any intra-partition BFS tree from the same roots is valid).
    """

    def __init__(self, graph: CSRGraph, labels: np.ndarray) -> None:
        self.graph = graph
        self.labels = labels
        self.n = graph.num_vertices
        self.parents = np.full(self.n, -1, dtype=np.int64)
        self.reached = np.zeros(self.n, dtype=bool)
        self._frontier = np.zeros(0, dtype=np.int64)

    @property
    def frontier(self) -> np.ndarray:
        return self._frontier

    @property
    def done(self) -> bool:
        return self._frontier.size == 0

    @property
    def visited_count(self) -> int:
        return int(self.reached.sum())

    def shared_arrays(self):
        return {"parents": self.parents, "reached": self.reached}

    def initial_frontier(self) -> np.ndarray:
        centers = np.unique(self.labels)
        self.reached[centers] = True
        current_context().tracker.add("scatter", work=float(centers.size), depth=1.0)
        return centers

    def begin_round(self, engine, next_frontier: np.ndarray) -> None:
        self._frontier = next_frontier

    def push_round(self, engine) -> np.ndarray:
        src, dst = self.graph.expand(self._frontier)
        same = self.labels[src] == self.labels[dst]
        fresh = same & ~self.reached[dst]
        current_context().tracker.add("gather", work=float(2 * dst.size), depth=1.0)
        if not fresh.any():
            # dead frontier: no claim and no barrier, the engine's next
            # begin_round sees the empty frontier and stops
            return np.zeros(0, dtype=np.int64)
        # arbitrary-CRCW: first claimer per target wins parenthood
        fresh_pos = np.flatnonzero(fresh)
        first, targets = first_winner(dst[fresh_pos])
        self.parents[targets] = src[fresh_pos[first]]
        self.reached[targets] = True
        end_round(packing="unit")
        return targets


def partition_parents(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    """BFS-tree parent of each vertex within its decomposition partition.

    Multi-source BFS from all centers, restricted to same-label edges;
    centers (and isolated vertices) get parent -1.  This reconstructs
    the trees the decomposition's BFS's grew — any intra-partition BFS
    tree from the same roots is a valid choice, since the forest only
    needs *a* spanning tree per partition.
    """
    labels = np.asarray(labels)
    if graph.num_vertices == 0:
        return np.full(0, -1, dtype=np.int64)
    state = _PartitionParentState(graph, labels)
    TraversalEngine(state, direction=AlwaysPush()).run()
    return state.parents


def decomp_spanning_forest(
    graph: CSRGraph,
    beta: float = 0.2,
    variant: str = "arb",
    seed: int = 1,
    schedule_mode: str = "permutation",
) -> Tuple[np.ndarray, np.ndarray]:
    """A spanning forest of *graph* via recursive decomposition.

    Returns ``(src, dst)`` arrays of undirected forest edges (each once,
    arbitrary orientation); ``len(src) == n - #components``.
    """
    if variant not in DECOMP_VARIANTS:
        raise ParameterError(
            f"unknown variant {variant!r}; expected one of {sorted(DECOMP_VARIANTS)}"
        )
    decomp_fn = DECOMP_VARIANTS[variant]

    forest_src: List[np.ndarray] = []
    forest_dst: List[np.ndarray] = []
    # Chain of contractions: the level-l forest edges are component
    # pairs that must be pulled down through levels l-1, ..., 0.
    chain = []
    current = graph
    for level in range(_MAX_LEVELS):
        dec = decomp_fn(
            current, beta, seed=seed + 1000003 * level, schedule_mode=schedule_mode
        )
        # Intra-partition tree edges, in *current-level* vertex ids.
        parents = partition_parents(current, dec.labels)
        children = np.flatnonzero(parents >= 0)
        chain.append((children, parents[children]))
        con = contract(dec, current.num_vertices)
        chain[-1] = chain[-1] + (con,)
        if con.is_base_case:
            break
        current = con.graph
    else:  # pragma: no cover - safety net
        raise RuntimeError("spanning forest exceeded recursion budget")

    # Unwind: pull each level's forest edges down to original ids.
    # sub_edges holds the forest of the *contracted* graph at the
    # current level, as contracted-vertex pairs.
    sub_src = np.zeros(0, dtype=np.int64)
    sub_dst = np.zeros(0, dtype=np.int64)
    for children, parents_of, con in reversed(chain):
        level_src = [children]
        level_dst = [parents_of]
        if sub_src.size:
            # Contracted forest edges -> component pairs -> one
            # representative current-level edge each.
            comp_u = con.sub_to_component[sub_src]
            comp_v = con.sub_to_component[sub_dst]
            rep_u, rep_v = con.representative_edge(comp_u, comp_v)
            level_src.append(rep_u)
            level_dst.append(rep_v)
        sub_src = np.concatenate(level_src)
        sub_dst = np.concatenate(level_dst)
    return sub_src, sub_dst


def verify_spanning_forest(
    graph: CSRGraph, src: np.ndarray, dst: np.ndarray
) -> None:
    """Raise :class:`VerificationError` unless (src, dst) spans *graph*.

    Checks: every forest edge is a real graph edge; the forest is
    acyclic; its size is n - #components; and it connects exactly the
    graph's components.
    """
    from repro.analysis.verify import ground_truth_labels

    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise VerificationError("forest src/dst must have equal length")
    n = graph.num_vertices
    # edges must exist in the graph
    gsrc, gdst = graph.edge_array()
    real = set(zip(gsrc.tolist(), gdst.tolist()))
    for u, v in zip(src.tolist(), dst.tolist()):
        if (u, v) not in real and (v, u) not in real:
            raise VerificationError(f"forest edge ({u}, {v}) is not a graph edge")
    # acyclic + count
    labels = ground_truth_labels(graph)
    num_components = int(np.unique(labels).size) if n else 0
    if src.size != n - num_components:
        raise VerificationError(
            f"forest has {src.size} edges; expected n - c = {n - num_components}"
        )
    uf = UnionFind(n)
    for u, v in zip(src.tolist(), dst.tolist()):
        if not uf.union(u, v):
            raise VerificationError(f"forest edge ({u}, {v}) closes a cycle")
    uf.flush_costs()
    # spanning: same partition as the graph
    forest_labels = uf.components()
    from repro.connectivity.base import canonicalize_labels

    if not np.array_equal(
        canonicalize_labels(forest_labels), canonicalize_labels(labels)
    ):
        raise VerificationError("forest does not span the graph's components")
