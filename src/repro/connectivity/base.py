"""Common connectivity result type and label utilities.

Every connectivity implementation in this package — the paper's
decomposition algorithm and all six baselines — returns a
:class:`ConnectivityResult`, so the harness, verifier and tests treat
them interchangeably.  Labels are only meaningful up to renaming (the
problem statement requires L(u) = L(v) iff same component), so
:func:`canonicalize_labels` provides the normal form the equivalence
checks compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.runtime.context import current_context

__all__ = ["ConnectivityResult", "canonicalize_labels", "num_components"]


@dataclass
class ConnectivityResult:
    """Connected-components labeling plus run metadata.

    Attributes
    ----------
    labels:
        One label per vertex; equal labels iff same component.
    algorithm:
        Name of the implementation (the paper's Table 2 row names).
    iterations:
        Outer iterations: DECOMP+CONTRACT calls for decomp-CC, hook/
        compress rounds for SV, sweeps for label propagation, 1 for
        the sequential baselines.
    edges_per_iteration:
        For decomp-CC: undirected edge count entering each iteration,
        starting with the original m — the series of Figure 4.  Other
        algorithms leave it empty.
    stats:
        Free-form per-algorithm diagnostics (rounds, frontier sizes,
        direction decisions, ...).
    """

    labels: np.ndarray
    algorithm: str
    iterations: int = 1
    edges_per_iteration: List[int] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def num_components(self) -> int:
        return num_components(self.labels)

    def component_sizes(self) -> np.ndarray:
        """Component sizes, descending (giant component first)."""
        canon = canonicalize_labels(self.labels)
        counts = np.bincount(canon) if canon.size else np.zeros(0, dtype=np.int64)
        return np.sort(counts)[::-1]


def canonicalize_labels(labels: np.ndarray) -> np.ndarray:
    """Rename labels to first-occurrence order: the partition's normal form.

    Two labelings describe the same partition of the vertices iff their
    canonical forms are identical arrays.
    """
    labels = np.asarray(labels)
    current_context().tracker.add("scan", work=float(labels.size), depth=1.0)
    _, first_index, inverse = np.unique(
        labels, return_index=True, return_inverse=True
    )
    # np.unique orders by label value; re-rank by first occurrence.
    order = np.argsort(np.argsort(first_index, kind="stable"), kind="stable")
    return order[inverse].astype(np.int64)


def num_components(labels: np.ndarray) -> int:
    """Number of distinct labels."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0
    return int(np.unique(labels).size)
