"""repro — reproduction of Shun, Dhulipala & Blelloch, SPAA 2014:
"A Simple and Practical Linear-Work Parallel Algorithm for Connectivity".

Public API tour
---------------
Graphs::

    from repro.graphs import random_kregular, rmat_paper, grid3d, line_graph
    g = random_kregular(100_000, k=5, seed=1)

Connectivity (the paper's algorithm and every baseline it compares to)::

    from repro.connectivity import decomp_cc, serial_sf_cc, multistep_cc
    result = decomp_cc(g, beta=0.2, variant="arb-hybrid", seed=1)
    labels = result.labels          # one label per vertex

Simulated-machine timing (the paper's 40-core experiments)::

    from repro.pram import CostTracker, tracking, PAPER_MACHINE
    with tracking() as t:
        decomp_cc(g, beta=0.2, variant="arb", seed=1)
    seconds_40h = PAPER_MACHINE.time_seconds(t)

Experiment harness (regenerates every table and figure)::

    from repro.experiments import run_table2, run_figure2

Runtime sessions (load a graph once, run and query many times)::

    from repro.runtime import Session
    s = Session("rMat", scale="small")
    s.connected(0, 1)               # memoized after the first labeling
    sizes = s.component_sizes()     # {component label: vertex count}
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
