"""Engine states for the BFS family.

Two :class:`~repro.engine.core.TraversalState` implementations cover
every BFS-shaped baseline:

* :class:`BFSTreeState` — builds a BFS tree (parents + hop distances)
  from one source; configured push-only it is the textbook
  level-synchronous BFS (:func:`repro.bfs.parallel_bfs`), with a
  hybrid policy it is direction-optimizing BFS
  (:func:`repro.bfs.hybrid_bfs`).
* :class:`ComponentLabelState` — writes one component label over
  everything reachable from a source into a shared labels array; the
  per-component building block of hybrid-BFS-CC and multistep-CC.

(The decomposition family's state is
:class:`~repro.decomp.base.DecompState`, which lives with the
decomposition machinery it owns.)

Cost-parity notes: the BFS states charge exactly what the pre-engine
loops charged — no ``bfsPre`` seeding phase, no phase labels at all
(profiles stay "unphased"), unit end-of-round barriers (see
:func:`~repro.engine.core.end_round`), and the visited bitmap is only
allocated when a direction policy can actually pull.  Behaviour-parity
note: the BFS baselines have never been fault-injection targets (a
dropped frontier or corrupted label silently splits components, and the
resilient runner relies on them as *clean* fallbacks), so their
``begin_round`` checks the optional round budget but deliberately does
NOT consult the active :class:`~repro.resilience.faults.FaultPlan` —
fault hooks fire only from the decomposition family's round boundary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.engine.core import UNVISITED, TraversalEngine, TraversalState, end_round
from repro.engine.frontier import Frontier
from repro.engine.kernels import bottom_up_step
from repro.primitives.atomics import first_winner
from repro.runtime.context import current_context

if TYPE_CHECKING:
    from repro.engine.workspace import NullWorkspace
    from repro.graphs.csr import CSRGraph
    from repro.resilience.policy import RoundBudget

__all__ = ["BFSTreeState", "ComponentLabelState"]


class BFSTreeState(TraversalState):
    """BFS-tree construction state: parents, distances, visited set.

    Parameters
    ----------
    graph / source:
        The traversal input; *source* is range-checked here so every
        BFS entry point shares one validation.
    track_visited:
        Allocate the boolean visited bitmap (needed by any policy that
        can pull; the push-only configuration tests visitedness against
        ``distances`` and allocates one array fewer, as the seed's
        ``parallel_bfs`` did).
    budget:
        Optional :class:`~repro.resilience.policy.RoundBudget` checked
        at every round boundary.
    """

    def __init__(
        self,
        graph: "CSRGraph",
        source: int,
        track_visited: bool = False,
        budget: "Optional[RoundBudget]" = None,
    ) -> None:
        n = graph.num_vertices
        if not 0 <= source < n:
            raise ValueError(f"source {source} out of range [0, {n})")
        self.graph = graph
        self.source = source
        self.budget = budget
        tracker = current_context().tracker
        self.parents = np.full(n, UNVISITED, dtype=np.int64)
        self.distances = np.full(n, UNVISITED, dtype=np.int64)
        self.visited: Optional[np.ndarray] = (
            np.zeros(n, dtype=bool) if track_visited else None
        )
        tracker.add(
            "alloc", work=float((3 if track_visited else 2) * n), depth=1.0
        )
        self.distances[source] = 0
        if self.visited is not None:
            self.visited[source] = True
        self.num_visited = 1
        self.directions: List[str] = []
        self.workspace = current_context().acquire_workspace(n)
        self._frontier = Frontier.from_vertices(
            n, np.zeros(0, dtype=np.int64), workspace=self.workspace
        )

    @property
    def n(self) -> int:
        return self.graph.num_vertices

    @property
    def visited_count(self) -> int:
        return self.num_visited

    @property
    def done(self) -> bool:
        return self._frontier.size == 0

    @property
    def frontier(self) -> np.ndarray:
        return self._frontier.as_vertices()

    def initial_frontier(self) -> np.ndarray:
        return np.array([self.source], dtype=np.int64)

    def shared_arrays(self) -> "dict[str, np.ndarray]":
        arrays = {"parents": self.parents, "distances": self.distances}
        if self.visited is not None:
            arrays["visited"] = self.visited
        return arrays

    def begin_round(self, engine: TraversalEngine, next_frontier: np.ndarray) -> None:
        if self.budget is not None:
            self.budget.check(self.round)
        self._frontier = Frontier.from_vertices(
            self.n, next_frontier, workspace=self.workspace
        )

    def _absorb(self, winners: np.ndarray) -> None:
        # The claim's bookkeeping writes ride along with the parent
        # scatter (already charged by the round kernel).
        if self.visited is not None:
            self.visited[winners] = True
        self.distances[winners] = self.round + 1
        self.num_visited += int(winners.size)

    def push_round(self, engine: TraversalEngine) -> np.ndarray:
        tracker = current_context().tracker
        plan = current_context().fault_plan
        ws = self.workspace
        self.directions.append("top-down")
        src, dst = self.graph.expand(self.frontier, workspace=ws)
        if self.visited is not None:
            fresh = ws.logical_not(
                ws.take(self.visited, dst, "bfs.vis"), "bfs.fresh"
            )
        else:
            fresh = ws.equal(
                ws.take(self.distances, dst, "bfs.dist"), UNVISITED, "bfs.fresh"
            )
        tracker.add("gather", work=float(dst.size), depth=1.0)
        # CAS race: one arbitrary winner per newly discovered vertex.
        win_pos, winners = first_winner(
            ws.compress(fresh, dst, "bfs.race"),
            workspace=ws,
            tracker=tracker,
            plan=plan,
        )
        src_fresh = ws.compress(fresh, src, "bfs.srcfresh")
        self.parents[winners] = src_fresh[win_pos]
        tracker.add("scatter", work=float(winners.size), depth=1.0)
        self._absorb(winners)
        end_round(packing="unit")
        return winners

    def pull_round(self, engine: TraversalEngine) -> np.ndarray:
        self.directions.append("bottom-up")
        assert self.visited is not None, "pull requires track_visited=True"
        winners, parent_of, _examined = bottom_up_step(
            self.graph,
            self._frontier.as_bitmap(),
            self.visited,
            workspace=self.workspace,
        )
        self.parents[winners] = parent_of
        self._absorb(winners)
        end_round(packing="unit")
        return winners


class ComponentLabelState(TraversalState):
    """Label one component into a shared labels array.

    The hybrid-BFS-CC building block: *labels* is shared across all the
    per-component runs (per-component allocation would inflate the cost
    profile), entries must be ``UNVISITED`` where not yet reached, and
    every vertex this traversal claims gets *label*.
    """

    def __init__(
        self,
        graph: "CSRGraph",
        source: int,
        labels: np.ndarray,
        label: int,
        budget: "Optional[RoundBudget]" = None,
        workspace: "Optional[NullWorkspace]" = None,
    ) -> None:
        self.graph = graph
        self.source = source
        self.labels = labels
        self.label = np.int64(label)
        self.budget = budget
        # Callers looping over components should create one workspace
        # per graph and pass it in, so the arena persists across the
        # per-component runs instead of being rebuilt for each.
        self.workspace = (
            workspace
            if workspace is not None
            else current_context().acquire_workspace(graph.num_vertices)
        )
        labels[source] = self.label
        self.count = 1
        self._frontier = np.zeros(0, dtype=np.int64)

    @property
    def n(self) -> int:
        return self.graph.num_vertices

    @property
    def visited_count(self) -> int:
        # Component-local: how many vertices this run has labeled.
        return self.count

    @property
    def done(self) -> bool:
        return self._frontier.size == 0

    @property
    def frontier(self) -> np.ndarray:
        return self._frontier

    def initial_frontier(self) -> np.ndarray:
        return np.array([self.source], dtype=np.int64)

    def shared_arrays(self) -> "dict[str, np.ndarray]":
        return {"labels": self.labels}

    def begin_round(self, engine: TraversalEngine, next_frontier: np.ndarray) -> None:
        if self.budget is not None:
            self.budget.check(self.round)
        self._frontier = next_frontier

    def _claim(self, winners: np.ndarray) -> None:
        self.labels[winners] = self.label
        current_context().tracker.add("scatter", work=float(winners.size), depth=1.0)
        self.count += int(winners.size)

    def push_round(self, engine: TraversalEngine) -> np.ndarray:
        tracker = current_context().tracker
        plan = current_context().fault_plan
        ws = self.workspace
        src, dst = self.graph.expand(self._frontier, workspace=ws)
        fresh = ws.equal(
            ws.take(self.labels, dst, "cc.lab"), UNVISITED, "cc.fresh"
        )
        tracker.add("gather", work=float(dst.size), depth=1.0)
        _pos, winners = first_winner(
            ws.compress(fresh, dst, "cc.race"),
            workspace=ws,
            tracker=tracker,
            plan=plan,
        )
        self._claim(winners)
        end_round(packing="unit")
        return winners

    def pull_round(self, engine: TraversalEngine) -> np.ndarray:
        tracker = current_context().tracker
        ws = self.workspace
        n = self.n
        visited = ws.not_equal(self.labels, UNVISITED, "cc.visited")
        tracker.add("scan", work=float(n), depth=1.0)
        # The frontier byte array is preallocated and reused in a
        # Ligra-style implementation, so (as in the seed) building it
        # is not charged as a scatter here.
        bitmap = ws.falses("cc.bitmap", n)
        bitmap[self._frontier] = True
        winners, _parents, _examined = bottom_up_step(
            self.graph, bitmap, visited, workspace=ws
        )
        self._claim(winners)
        end_round(packing="unit")
        return winners
