"""Real shared-memory parallel execution: deterministic chunked kernels.

The ``parallel`` backend runs the ``fast`` backend's kernels across a
persistent :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy
releases the GIL inside its C loops, so chunked slice operations scale
across threads without pickling — the Ligra-style chunked-frontier
execution the paper's own C++ implementation uses, adapted to the
NumPy simulation.

Determinism is non-negotiable (the golden parity fixtures pin every
labeling byte-for-byte):

* **Data-parallel ops** (gathers, compares, the slot hash) partition
  the output range into fixed-size chunks (:data:`DEFAULT_CHUNK_SIZE`);
  each worker writes a disjoint output slice, so the result is
  identical to the serial pass by construction.
* **CRCW reductions** (the arb-CAS race, writeMin) split the write
  stream into at most ``workers`` contiguous spans.  Each worker
  resolves its span into a private per-worker shard (the sharded arena
  pool, keyed by worker id), and the calling thread merges the shards
  **sequentially** in a fixed order: lowest-stream-position wins for
  the CAS race (reverse-span overwrite), plain ``np.minimum`` for
  writeMin.  Both merges reproduce the serial schedule exactly, at any
  worker count.

Cost-model invisibility: like every workspace, nothing here charges
(work, depth) — the kernels charge from batch *sizes* before the
execution strategy runs, so ``parallel`` runs carry identical charges
to ``fast`` and ``reference`` runs (the parity contract of
:mod:`repro.engine.backend`).

Sanitizer interplay: worker threads only ever write per-worker shards
and disjoint slices of arena buffers — never the run's registered
shared arrays.  All shared-array mutation happens on the calling
thread during the sequential combine, *before* the kernel returns, so
the sanitizer's post-round snapshot diff
(:meth:`~repro.pram.sanitizer.PramSanitizer.close_round`) always runs
after the combine barrier.  Each combine is reported through
:meth:`~repro.pram.sanitizer.PramSanitizer.record_combine` so a
sanitized parallel run shows how many sharded merges it covered.

Machine-checked contracts (``repro lint``, docs/static_analysis.md):
this module is the primary scope of the interprocedural rule family.
RL006 proves no worker-count-derived value reaches an allocation
size, the chunk grid, or a reduction operand (the one sanctioned use,
``_worker_spans``'s span partitioning, carries a reasoned allowlist
entry); RL007 demands a disjointness proof for every write issued
from a parallel task (``[lo:hi]`` span slices, worker-keyed shards,
or task-local buffers only); RL009 confines shard combines to the two
sanctioned deterministic merge shapes below.  Editing this file into
a violation fails lint *and* the w=2/w=4 parity fixtures — the same
contract, checked statically and at runtime.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.backend import BACKENDS, ExecutionBackend
from repro.engine.workspace import Workspace, _grown
from repro.primitives.rand import splitmix64

if TYPE_CHECKING:
    from numpy.typing import DTypeLike

__all__ = [
    "PARALLEL",
    "ParallelWorkspace",
    "DEFAULT_CHUNK_SIZE",
    "get_pool",
    "shutdown_pools",
    "context_gather",
]

#: Fixed chunk length for the data-parallel ops.  Big enough that one
#: chunk's NumPy C loop dominates the ~50us submit/join overhead of a
#: pool task, small enough that medium-scale rounds split into several
#: chunks per worker.  Fixed (not derived from the worker count) so the
#: chunk grid never changes the computed values.
DEFAULT_CHUNK_SIZE = 1 << 15

#: workers -> persistent executor; pools survive across runs (the
#: tentpole's "persistent ThreadPoolExecutor sized from the context").
_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(workers: int) -> ThreadPoolExecutor:
    """The process-wide persistent pool for *workers* threads.

    One executor per worker count, created on first use and reused by
    every subsequent run at that width — thread spawn cost is paid once
    per process, not once per round.
    """
    workers = max(1, int(workers))
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-par{workers}"
            )
            _POOLS[workers] = pool
        return pool


def shutdown_pools() -> None:
    """Tear down every persistent pool (test/teardown hook)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


class ParallelWorkspace(Workspace):
    """Chunked execution of the fast-backend workspace vocabulary.

    Inherits the arena (named reused buffers) from :class:`Workspace`
    and adds a *sharded* arena pool keyed by worker id for the CRCW
    reductions.  Every operation degrades to the inherited serial path
    when the batch is smaller than one chunk or ``workers == 1`` — the
    "frontier smaller than one chunk" edge case costs nothing.

    Parameters
    ----------
    num_vertices:
        Sizing hint, as for :class:`Workspace`.
    workers:
        Width of the persistent pool this workspace fans out to.
    """

    #: Class-level so tests can shrink it to force chunking on tiny
    #: inputs; instances read it at call time.
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def __init__(self, num_vertices: int, workers: int = 1) -> None:
        super().__init__(num_vertices)
        self.workers = max(1, int(workers))
        #: (worker id, key) -> shard buffer; workers only ever touch
        #: their own shards, the combine loop reads them sequentially.
        self._shard_buffers: Dict[Tuple[int, str], np.ndarray] = {}

    # -- chunk plumbing ----------------------------------------------------

    def _chunks(self, total: int) -> Optional[List[Tuple[int, int]]]:
        """Fixed-size chunk spans over ``[0, total)``, or None = serial."""
        step = int(self.chunk_size)
        if self.workers <= 1 or total <= step:
            return None
        return [(a, min(a + step, total)) for a in range(0, total, step)]

    def _worker_spans(self, total: int) -> Optional[List[Tuple[int, int]]]:
        """At most ``workers`` contiguous spans on chunk boundaries.

        Used by the sharded reductions: each span feeds one worker's
        shard, so shard memory is O(workers), not O(chunks).  The
        *results* are span-partition independent (proven in each
        reduction's combine note), so worker count changes nothing.
        """
        chunks = self._chunks(total)
        if chunks is None:
            return None
        per = -(-len(chunks) // self.workers)
        return [
            (chunks[i][0], chunks[min(i + per, len(chunks)) - 1][1])
            for i in range(0, len(chunks), per)
        ]

    def _run(self, tasks: Sequence[Callable[[], None]]) -> None:
        """Execute *tasks* on the pool; returns after ALL complete.

        The join is the combine barrier: nothing downstream observes a
        partially executed batch.  A single task runs inline.
        """
        if len(tasks) == 1:
            tasks[0]()
            return
        from repro.runtime.context import current_context

        ctx = current_context()
        ctx.metrics.incr("parallel.batches")
        ctx.metrics.observe("parallel.batch.tasks", len(tasks))
        span = (
            ctx.tracer.span("chunk-batch", "parallel", tasks=len(tasks))
            if ctx.tracer.enabled
            else None
        )
        futures = [get_pool(self.workers).submit(t) for t in tasks]
        for future in futures:
            future.result()
        if span is not None:
            span.close()

    def _foreach_span(
        self,
        spans: List[Tuple[int, int]],
        body: Callable[[int, int], None],
    ) -> None:
        self._run(
            [(lambda lo=lo, hi=hi: body(lo, hi)) for lo, hi in spans]
        )

    # -- sharded arena pool ------------------------------------------------

    def _shard_buf(
        self, worker: int, key: str, size: int, dtype: "DTypeLike"
    ) -> np.ndarray:
        buf = self._shard_buffers.get((worker, key))
        if buf is None or buf.shape[0] < size:
            buf = np.empty(_grown(size), dtype=dtype)
            self._shard_buffers[(worker, key)] = buf
        return buf[:size]

    def _shard_zeroed_bool(self, worker: int, key: str, size: int) -> np.ndarray:
        # Invariant: all-False between uses (combine resets exactly the
        # touched entries), so growth is the only zeroing.
        buf = self._shard_buffers.get((worker, key))
        if buf is None or buf.shape[0] < size:
            buf = np.zeros(_grown(size), dtype=bool)
            self._shard_buffers[(worker, key)] = buf
        return buf[:size]

    def _shard_filled(
        self, worker: int, key: str, size: int, fill: object, dtype: "DTypeLike"
    ) -> np.ndarray:
        # Invariant: all-`fill` (the reduction identity) between uses.
        buf = self._shard_buffers.get((worker, key))
        if buf is None or buf.shape[0] < size:
            buf = np.full(_grown(size), fill, dtype=dtype)
            self._shard_buffers[(worker, key)] = buf
        return buf[:size]

    @property
    def bytes_held(self) -> int:
        base: int = super().bytes_held
        return base + sum(int(b.nbytes) for b in self._shard_buffers.values())

    def _note_combine(self, kind: str, shards: int) -> None:
        """Report one sequential shard merge to sanitizer and metrics."""
        from repro.runtime.context import current_context

        ctx = current_context()
        if ctx.sanitizer is not None:
            ctx.sanitizer.record_combine(kind, shards)
        ctx.metrics.incr(f"parallel.combine.{kind}")
        ctx.metrics.observe("parallel.combine.shards", shards)

    # -- chunked data-parallel vocabulary ----------------------------------
    #
    # Each op writes disjoint slices of one output buffer; chunk i's
    # slice is a pure function of chunk i's inputs, so the result is
    # bit-identical to the inherited serial pass regardless of worker
    # count, scheduling, or chunk completion order.

    def take(self, arr: np.ndarray, idx: np.ndarray, key: str) -> np.ndarray:
        spans = self._chunks(idx.shape[0])
        if spans is None:
            return super().take(arr, idx, key)
        out = self._buf(key, idx.shape[0], arr.dtype)
        self._foreach_span(
            spans,
            lambda lo, hi: np.take(
                arr, idx[lo:hi], out=out[lo:hi], mode="clip"
            ),
        )
        return out

    def compress(self, mask: np.ndarray, arr: np.ndarray, key: str) -> np.ndarray:
        # The position scan stays serial (one fused C pass); the gather
        # that dominates is chunked.
        pos = np.flatnonzero(mask)
        spans = self._chunks(pos.shape[0])
        if spans is None:
            out = self._buf(key, pos.shape[0], arr.dtype)
            np.take(arr, pos, out=out, mode="clip")
            return out
        out = self._buf(key, pos.shape[0], arr.dtype)
        self._foreach_span(
            spans,
            lambda lo, hi: np.take(
                arr, pos[lo:hi], out=out[lo:hi], mode="clip"
            ),
        )
        return out

    def equal(self, a: np.ndarray, b: np.ndarray, key: str) -> np.ndarray:
        spans = self._chunks(a.shape[0])
        if spans is None:
            return super().equal(a, b, key)
        out = self._buf(key, a.shape[0], np.bool_)
        scalar = np.ndim(b) == 0
        self._foreach_span(
            spans,
            lambda lo, hi: np.equal(
                a[lo:hi], b if scalar else b[lo:hi], out=out[lo:hi]
            ),
        )
        return out

    def not_equal(self, a: np.ndarray, b: np.ndarray, key: str) -> np.ndarray:
        spans = self._chunks(a.shape[0])
        if spans is None:
            return super().not_equal(a, b, key)
        out = self._buf(key, a.shape[0], np.bool_)
        scalar = np.ndim(b) == 0
        self._foreach_span(
            spans,
            lambda lo, hi: np.not_equal(
                a[lo:hi], b if scalar else b[lo:hi], out=out[lo:hi]
            ),
        )
        return out

    def logical_not(self, a: np.ndarray, key: str) -> np.ndarray:
        spans = self._chunks(a.shape[0])
        if spans is None:
            return super().logical_not(a, key)
        out = self._buf(key, a.shape[0], np.bool_)
        self._foreach_span(
            spans,
            lambda lo, hi: np.logical_not(a[lo:hi], out=out[lo:hi]),
        )
        return out

    def bitand(self, a: np.ndarray, scalar: "DTypeLike", key: str) -> np.ndarray:
        spans = self._chunks(a.shape[0])
        if spans is None:
            return super().bitand(a, scalar, key)
        out = self._buf(key, a.shape[0], a.dtype)
        self._foreach_span(
            spans,
            lambda lo, hi: np.bitwise_and(a[lo:hi], scalar, out=out[lo:hi]),
        )
        return out

    def sub(self, a: np.ndarray, b: np.ndarray, key: str) -> np.ndarray:
        spans = self._chunks(a.shape[0])
        if spans is None:
            return super().sub(a, b, key)
        out = self._buf(key, a.shape[0], a.dtype)
        self._foreach_span(
            spans,
            lambda lo, hi: np.subtract(a[lo:hi], b[lo:hi], out=out[lo:hi]),
        )
        return out

    def as_float(self, a: np.ndarray, key: str) -> np.ndarray:
        spans = self._chunks(a.shape[0])
        if spans is None:
            return super().as_float(a, key)
        out = self._buf(key, a.shape[0], np.float64)

        def body(lo: int, hi: int) -> None:
            out[lo:hi] = a[lo:hi]

        self._foreach_span(spans, body)
        return out

    def hash_slots(
        self, keys: np.ndarray, seed: np.uint64, mask: np.uint64, key: str
    ) -> np.ndarray:
        spans = self._chunks(keys.shape[0])
        if spans is None:
            return super().hash_slots(keys, seed, mask, key)
        out = np.empty(keys.shape[0], dtype=np.int64)

        def body(lo: int, hi: int) -> None:
            h = splitmix64(keys[lo:hi].astype(np.uint64) ^ seed)
            np.bitwise_and(h, mask, out=h)
            out[lo:hi] = h.astype(np.int64)

        self._foreach_span(spans, body)
        return out

    # -- sharded CRCW reductions -------------------------------------------

    def winner_scatter(self, idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """First occurrence per distinct value of *idx*, sharded.

        Each worker runs the serial reversed last-write-wins scatter
        over its contiguous span (with *global* stream positions) into
        its own shard: shard ``w`` ends holding, per destination, the
        first position within span ``w``.  The sequential combine then
        overwrites in **reverse span order**, so each destination ends
        with the first position of the *earliest* span containing it —
        the global first occurrence, i.e. exactly the serial schedule.
        Independent of worker count and of chunk boundaries.
        """
        m = idx.shape[0]
        spans = self._worker_spans(m)
        if spans is None or len(spans) == 1:
            return super().winner_scatter(idx)
        bound = int(idx.max()) + 1
        slots = self._buf("winner#slots", bound, np.int64)
        mask = self._zeroed_bool("winner#mask", bound)
        iota = self._iota(m)
        touched: List[np.ndarray] = [np.zeros(0, dtype=np.int64)] * len(spans)

        def body(w: int, lo: int, hi: int) -> None:
            shard = self._shard_buf(w, "winner#slots", bound, np.int64)
            shard_mask = self._shard_zeroed_bool(w, "winner#mask", bound)
            chunk = idx[lo:hi]
            shard[chunk[::-1]] = iota[lo:hi][::-1]
            shard_mask[chunk] = True
            touched[w] = np.flatnonzero(shard_mask)

        self._run(
            [
                (lambda w=w, lo=lo, hi=hi: body(w, lo, hi))
                for w, (lo, hi) in enumerate(spans)
            ]
        )
        # Sequential deterministic combine (calling thread only): later
        # spans first, earlier spans overwrite -> lowest stream
        # position (= lowest edge index) wins every CAS race.
        for w in range(len(spans) - 1, -1, -1):
            hit = touched[w]
            shard = self._shard_buf(w, "winner#slots", bound, np.int64)
            shard_mask = self._shard_zeroed_bool(w, "winner#mask", bound)
            slots[hit] = shard[hit]
            mask[hit] = True
            shard_mask[hit] = False  # restore the all-False invariant
        dests = np.flatnonzero(mask)
        mask[dests] = False
        positions = slots[dests]
        self._note_combine("winner", len(spans))
        return positions, dests

    def minimum_scatter(
        self, dest: np.ndarray, idx: np.ndarray, values: np.ndarray
    ) -> None:
        """Sharded writeMin: per-worker minima, sequential ``np.minimum``.

        Each worker folds its span into a private shard held at the
        reduction identity (``iinfo.max``); the calling thread then
        merges ``dest[i] = min(dest[i], shard_w[i])`` per shard.  The
        minimum is commutative and associative over identical values,
        so the merge equals the serial ``np.minimum.at`` bit-for-bit in
        any span partition.
        """
        spans = self._worker_spans(idx.shape[0])
        if (
            spans is None
            or len(spans) == 1
            or not np.issubdtype(dest.dtype, np.integer)
        ):
            super().minimum_scatter(dest, idx, values)
            return
        bound = dest.shape[0]
        identity = np.iinfo(dest.dtype).max
        touched: List[np.ndarray] = [np.zeros(0, dtype=np.int64)] * len(spans)

        def body(w: int, lo: int, hi: int) -> None:
            shard = self._shard_filled(w, "min#vals", bound, identity, dest.dtype)
            shard_mask = self._shard_zeroed_bool(w, "min#mask", bound)
            chunk = idx[lo:hi]
            np.minimum.at(shard, chunk, values[lo:hi])
            shard_mask[chunk] = True
            touched[w] = np.flatnonzero(shard_mask)

        self._run(
            [
                (lambda w=w, lo=lo, hi=hi: body(w, lo, hi))
                for w, (lo, hi) in enumerate(spans)
            ]
        )
        for w in range(len(spans)):
            hit = touched[w]
            shard = self._shard_filled(w, "min#vals", bound, identity, dest.dtype)
            shard_mask = self._shard_zeroed_bool(w, "min#mask", bound)
            dest[hit] = np.minimum(dest[hit], shard[hit])
            shard[hit] = identity  # restore the all-identity invariant
            shard_mask[hit] = False
        self._note_combine("write-min", len(spans))


def context_gather(arr: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Fresh-output ``arr[idx]`` gather, chunked under a parallel context.

    The contraction relabel path: the big dense gathers
    (``component_of_center[labels]`` and the inter-edge endpoint
    relabelings) run between engine rounds, where no state workspace is
    in scope.  Under a chunked backend with ``workers > 1`` the gather
    fans out over the persistent pool into disjoint slices of one
    fresh output; otherwise it is exactly the historical expression.
    """
    from repro.runtime.context import current_context

    ctx = current_context()
    total = int(idx.shape[0])
    if (
        not ctx.backend.chunked
        or ctx.workers <= 1
        or total <= ParallelWorkspace.chunk_size
    ):
        return arr[idx]
    out = np.empty(total, dtype=arr.dtype)
    step = int(ParallelWorkspace.chunk_size)
    spans = [(a, min(a + step, total)) for a in range(0, total, step)]
    pool = get_pool(ctx.workers)
    futures = [
        pool.submit(
            lambda lo=lo, hi=hi: np.take(
                arr, idx[lo:hi], out=out[lo:hi], mode="clip"
            )
        )
        for lo, hi in spans
    ]
    for future in futures:
        future.result()
    return out


PARALLEL = ExecutionBackend(
    name="parallel",
    description="fast-backend kernels executed across a persistent thread "
    "pool: fixed-size chunks, per-worker shards, sequential deterministic "
    "combines — identical outputs and charges at any worker count "
    "(--workers N)",
    use_workspace=True,
    scatter_first_winner=True,
    fused_sort=True,
    bitmap_dense=True,
    trusted_contraction=True,
    chunked=True,
)

BACKENDS[PARALLEL.name] = PARALLEL
