"""The unified level-synchronous traversal engine.

Every traversal in this reproduction — the three paper decomposition
variants, Decomp-Min-Hybrid, parallel BFS, direction-optimizing BFS,
and hybrid-BFS-CC — is one configuration of a single round loop:

    ``TraversalEngine(state, direction=..., tiebreak=...).run()``

The engine owns the frontier lifecycle (sparse/dense via
:class:`Frontier` and the shared :data:`DENSE_THRESHOLD` rule), the
round counter, and the one authoritative round boundary where
:class:`~repro.pram.cost.CostTracker` barriers are charged
(:func:`end_round`), :class:`~repro.resilience.policy.RoundBudget`
limits are checked, and :class:`~repro.resilience.faults.FaultPlan`
hooks fire.  What *varies* between algorithms is expressed as two
pluggable policies:

* :mod:`~repro.engine.tiebreak` — who wins concurrent claims
  (``arb`` = CAS race, ``min`` = writeMin over (delta', id) pairs);
* :mod:`~repro.engine.direction` — push vs. pull per round
  (always-push, always-pull, the paper's 20 % fraction rule, Ligra's
  edge-count rule);

plus a :class:`TraversalState` subclass holding the algorithm's arrays
and round kernels.  See ``docs/api.md`` for writing custom policies.
"""

from repro.engine.backend import (
    BACKENDS,
    DEFAULT_BACKEND_NAME,
    ExecutionBackend,
    current_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.engine.core import (
    UNVISITED,
    TraversalEngine,
    TraversalState,
    end_round,
)
from repro.engine.direction import (
    DIRECTION_POLICIES,
    AlwaysPull,
    AlwaysPush,
    DirectionPolicy,
    FractionHybrid,
    LigraEdgeHybrid,
    register_direction_policy,
)
from repro.engine.frontier import DENSE_THRESHOLD, Frontier
from repro.engine.kernels import (
    arb_round,
    bottom_up_step,
    dense_round,
    filter_edges,
    min_round,
)
from repro.engine.parallel import PARALLEL, ParallelWorkspace
from repro.engine.state import BFSTreeState, ComponentLabelState
from repro.engine.tiebreak import (
    TIEBREAK_POLICIES,
    ArbTiebreak,
    MinTiebreak,
    TiebreakPolicy,
    register_tiebreak_policy,
)
from repro.engine.workspace import (
    NULL_WORKSPACE,
    NullWorkspace,
    Workspace,
    make_workspace,
)

__all__ = [
    "ExecutionBackend",
    "BACKENDS",
    "DEFAULT_BACKEND_NAME",
    "current_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "Workspace",
    "NullWorkspace",
    "NULL_WORKSPACE",
    "make_workspace",
    "PARALLEL",
    "ParallelWorkspace",
    "TraversalEngine",
    "TraversalState",
    "end_round",
    "UNVISITED",
    "Frontier",
    "DENSE_THRESHOLD",
    "TiebreakPolicy",
    "ArbTiebreak",
    "MinTiebreak",
    "TIEBREAK_POLICIES",
    "register_tiebreak_policy",
    "DirectionPolicy",
    "AlwaysPush",
    "AlwaysPull",
    "FractionHybrid",
    "LigraEdgeHybrid",
    "DIRECTION_POLICIES",
    "register_direction_policy",
    "BFSTreeState",
    "ComponentLabelState",
    "arb_round",
    "min_round",
    "dense_round",
    "filter_edges",
    "bottom_up_step",
]
