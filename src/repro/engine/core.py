"""The unified level-synchronous traversal engine.

Every BFS-shaped algorithm in the repository — the three paper
decomposition variants, their new Decomp-Min-Hybrid combination, plain
parallel BFS, direction-optimizing BFS, and the per-component BFS of
hybrid-BFS-CC — is one *round loop* around three pluggable pieces:

* a :class:`TraversalState` — the per-run mutable state (who is
  visited, what the frontier is, what a claim writes) plus the round
  kernels that expand it;
* a :class:`~repro.engine.tiebreak.TiebreakPolicy` — how concurrent
  claims on the same unvisited vertex are resolved (``arb`` = bare CAS
  race, ``min`` = writeMin over (delta', center) pairs);
* a :class:`~repro.engine.direction.DirectionPolicy` — whether a round
  runs write-based (push) or read-based (pull), per Beamer's
  direction-optimizing rule.

:class:`TraversalEngine` owns the loop itself: the round boundary
(where the :class:`~repro.resilience.policy.RoundBudget` check and the
:class:`~repro.resilience.faults.FaultPlan` hooks fire, via the
state's ``begin_round``), the push/pull dispatch, and the end-of-round
barrier accounting (:func:`end_round` — the single authoritative place
that charges frontier/edge-packing depth, so the per-phase breakdowns
of Figures 5-7 are mutually comparable).

The engine exists so that a *variant* is nothing but a policy table
(see ``docs/algorithms.md``): the level-synchronous loop is written
once, here, and nowhere else.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ParameterError
from repro.runtime.context import current_context

if TYPE_CHECKING:  # policies import the engine's types, not vice versa
    from repro.engine.direction import DirectionPolicy
    from repro.engine.tiebreak import TiebreakPolicy

__all__ = ["UNVISITED", "TraversalState", "TraversalEngine", "end_round"]

#: Sentinel for "no label / not yet visited" in every per-vertex state
#: array (component labels, BFS parents, BFS distances).  The single
#: definition; :mod:`repro.decomp.base` and :mod:`repro.bfs` re-export.
UNVISITED = np.int64(-1)


def end_round(edges: int = 0, *, packing: str = "edges") -> None:
    """Charge the end-of-round barrier — the engine-owned ``sync``.

    Every level-synchronous round ends with a barrier at which the
    surviving work items are compacted into the next round's input.
    Two packing regimes exist, and this function is the only place
    either is charged:

    * ``packing="edges"`` — the decomposition kernels compact the
      round's surviving/kept edge list and the next frontier with a
      parallel pack: O(log(*edges* + 1)) depth (at least one step, so
      an empty round still pays its barrier).
    * ``packing="unit"`` — the BFS kernels keep the seed cost model's
      unit barrier: the frontier pack's log-depth is already folded
      into their per-primitive depth charges.
    """
    tracker = current_context().tracker
    if packing == "edges":
        tracker.sync(depth=float(max(1, math.ceil(math.log2(edges + 1)))))
    elif packing == "unit":
        tracker.sync()
    else:
        raise ParameterError(f"unknown packing rule {packing!r}")


class TraversalState:
    """Base class for the engine's per-run mutable state.

    Concrete states (:class:`~repro.decomp.base.DecompState`,
    :class:`~repro.engine.state.BFSTreeState`,
    :class:`~repro.engine.state.ComponentLabelState`) hold the
    per-vertex arrays and implement the round kernels; the engine only
    talks to this interface.
    """

    #: Rounds executed so far (incremented by the engine).
    round: int = 0

    # The data half of the interface is annotation-only (no base-class
    # properties) so implementations are free to satisfy each name with
    # either a plain attribute or a property:
    #: Number of vertices in the traversed graph.
    n: int
    #: Vertices claimed so far (drives the fraction dense switch).
    visited_count: int
    #: True when the loop should stop (checked after ``begin_round``).
    done: bool
    #: The current frontier as a vertex-id array.
    frontier: np.ndarray

    def initial_frontier(self) -> np.ndarray:
        """Frontier fed into the first ``begin_round``."""
        raise NotImplementedError

    def shared_arrays(self) -> "dict[str, np.ndarray]":
        """The shared state an active PRAM sanitizer shadow-checks.

        Name -> array for every per-vertex array this traversal mutates
        during rounds (labels, parents, ...).  The default is empty —
        such a state simply gets no shadow coverage; the CAS-schedule
        and duplicate-write checks still apply through the atomics.
        """
        return {}

    def begin_round(self, engine: "TraversalEngine", next_frontier: np.ndarray) -> None:
        """Install *next_frontier* and run round-boundary bookkeeping.

        This is the round boundary, so resilience lives here: budget
        checks and fault-plan hooks fire from the implementations.
        """
        raise NotImplementedError

    def note_dense_round(self) -> None:
        """Called before a pull round runs (record-keeping hook)."""

    def push_round(self, engine: "TraversalEngine") -> np.ndarray:
        """One write-based round; returns the next frontier."""
        raise NotImplementedError

    def pull_round(self, engine: "TraversalEngine") -> np.ndarray:
        """One read-based round; returns the next frontier."""
        raise NotImplementedError(
            "this state has no read-based kernel; use a push-only "
            "direction policy"
        )

    def finalize(self, engine: "TraversalEngine") -> None:
        """Post-loop work (e.g. the hybrid's filterEdges pass)."""


class TraversalEngine:
    """The one level-synchronous round loop.

    Parameters
    ----------
    state:
        The per-run :class:`TraversalState`.
    direction:
        A :class:`~repro.engine.direction.DirectionPolicy` deciding
        push vs. pull each round.
    tiebreak:
        A :class:`~repro.engine.tiebreak.TiebreakPolicy` resolving
        concurrent claims; states whose push kernel delegates to it
        (the decomposition family) require one, the BFS states resolve
        with the arbitrary-CRCW race directly and may omit it.
    """

    def __init__(
        self,
        state: TraversalState,
        direction: "DirectionPolicy",
        tiebreak: "Optional[TiebreakPolicy]" = None,
    ) -> None:
        self.state = state
        self.direction = direction
        self.tiebreak = tiebreak

    def run(self) -> TraversalState:
        """Drive rounds until the state reports done; return the state.

        Each iteration: the round boundary (``begin_round`` — seeding,
        budget check, fault hooks), the direction decision on the
        *claimed* frontier (last round's winners, before any seeding —
        the decomposition's switch deliberately excludes fresh
        centers), then one push or pull round.
        """
        state, direction = self.state, self.direction
        if self.tiebreak is not None:
            self.tiebreak.setup(state)
        next_frontier = state.initial_frontier()
        ctx = current_context()
        sanitizer, tracer, tracker = ctx.sanitizer, ctx.tracer, ctx.tracker
        if sanitizer is not None:
            sanitizer.open_run(state.shared_arrays())
        try:
            while True:
                claimed = int(next_frontier.size)
                # Tracing is observational: the span and the tracker
                # snapshots exist only when a tracer is active, and
                # nothing below reads them back into the computation.
                span = tracer.span("round", "round") if tracer.enabled else None
                if span is not None:
                    span.set(round=state.round, frontier=claimed)
                    work0 = tracker.total_work()
                    depth0 = tracker.total_depth()
                # The round window opens before begin_round so that the
                # seeding writes — and anything a fault plan injects at
                # the round boundary — fall inside the shadow check.
                if sanitizer is not None:
                    sanitizer.open_round(state.round)
                state.begin_round(self, next_frontier)
                if state.done:
                    if sanitizer is not None:
                        sanitizer.close_round()
                    if span is not None:
                        span.set(
                            done=True,
                            work=tracker.total_work() - work0,
                            depth=tracker.total_depth() - depth0,
                        )
                        span.close()
                    break
                dense = direction.go_dense(self, state, claimed)
                if dense:
                    state.note_dense_round()
                    next_frontier = state.pull_round(self)
                else:
                    next_frontier = state.push_round(self)
                if sanitizer is not None:
                    sanitizer.close_round()
                if span is not None:
                    span.set(
                        dense=dense,
                        next_frontier=int(next_frontier.size),
                        work=tracker.total_work() - work0,
                        depth=tracker.total_depth() - depth0,
                    )
                    span.close()
                state.round += 1
        finally:
            if sanitizer is not None:
                sanitizer.close_run()
        state.finalize(self)
        return state
