"""Execution backends: *how* the kernels run, never *what* they compute.

The engine's round kernels admit three executions of the same PRAM
step batch:

* ``reference`` — the historical kernels: every temporary is a fresh
  NumPy allocation, the CAS race resolves through a sort
  (``np.unique``), the radix sort runs its per-digit passes, and every
  contraction level re-validates the CSR invariants it just
  established.  Slow, but each round is exactly the code the golden
  parity fixture was captured against.
* ``fast`` — the same winner schedules, labelings and (work, depth)
  charges, computed without the wall-clock waste: per-run
  :class:`~repro.engine.workspace.Workspace` arenas replace the
  steady-state allocations, the CAS race resolves with an O(n)
  reverse-order scatter, the stable radix permutation is produced in
  one fused pass, dense rounds reuse arena bitmaps, and contraction
  builds its sub-graphs through the trusted (validation-free)
  constructor path.
* ``parallel`` — the fast kernels executed across a persistent thread
  pool (:mod:`repro.engine.parallel`): fixed-size chunks over
  vertex/edge ranges, per-worker workspace shards for the CRCW
  reductions, and a sequential deterministic combine, so outputs and
  charges stay byte-identical to ``fast`` at any worker count.

The parity contract — enforced by ``tests/test_engine_parity.py``
replaying the golden fixture under *both* backends — is that switching
backends changes no observable output and no charged cost.  The
simulated cost model charges are explicit ``tracker.add`` calls
computed from sizes, so the fast variants are free to change the
NumPy execution underneath them.

Selection: ``fast`` is the default.  The bound backend rides in the
:class:`~repro.runtime.context.ExecutionContext`
(``current_context().backend``); :func:`use_backend` scopes a switch
to a ``with`` block by activating a derived context (the parity tests
do this), and the CLI's ``--backend`` flag builds its command context
with the chosen backend.  :func:`set_default_backend` survives as a
deprecated shim that mutates the process-root context.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Union

from repro.errors import ParameterError

__all__ = [
    "ExecutionBackend",
    "BACKENDS",
    "DEFAULT_BACKEND_NAME",
    "current_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]


@dataclass(frozen=True)
class ExecutionBackend:
    """One named execution strategy for the round kernels.

    Attributes
    ----------
    use_workspace:
        Thread a per-run :class:`~repro.engine.workspace.Workspace`
        arena through the kernels so steady-state rounds perform zero
        large allocations (``out=`` writes into reused arena slices).
    scatter_first_winner:
        Resolve the arbitrary-CRCW race with the O(n) reverse-order
        scatter instead of the sort-based ``np.unique`` pass.  Both
        pick the first occurrence per destination, so the winner
        schedule is identical.
    fused_sort:
        Produce the stable radix permutation with one fused stable
        argsort instead of per-16-bit-digit passes.  Stable sorting
        permutations are unique, so the output is identical; the
        charged pass structure is unchanged.
    bitmap_dense:
        Reuse arena bitmaps on the dense (pull) rounds instead of
        materializing fresh boolean arrays per round.
    trusted_contraction:
        Build contraction sub-graphs via the trusted constructor path
        (skip re-validating invariants the contraction itself just
        established); public builders still validate.
    chunked:
        Execute the hot kernels in fixed-size chunks across the
        execution context's worker pool
        (:class:`~repro.engine.parallel.ParallelWorkspace`); the worker
        count rides in ``ExecutionContext.workers``.
    """

    name: str
    description: str
    use_workspace: bool
    scatter_first_winner: bool
    fused_sort: bool
    bitmap_dense: bool
    trusted_contraction: bool
    chunked: bool = False


REFERENCE = ExecutionBackend(
    name="reference",
    description="byte-for-byte the historical kernels (fresh allocations, "
    "sort-based CAS resolution, per-digit radix passes, validating builders)",
    use_workspace=False,
    scatter_first_winner=False,
    fused_sort=False,
    bitmap_dense=False,
    trusted_contraction=False,
)

FAST = ExecutionBackend(
    name="fast",
    description="zero-allocation round kernels: workspace arenas, scatter "
    "CAS resolution, fused stable sort, bitmap dense rounds, trusted "
    "contraction constructors — identical outputs and charges",
    use_workspace=True,
    scatter_first_winner=True,
    fused_sort=True,
    bitmap_dense=True,
    trusted_contraction=True,
)

#: Name -> backend; the CLI's ``--backend`` choices and the wall-clock
#: bench enumerate this.
BACKENDS: Dict[str, ExecutionBackend] = {
    REFERENCE.name: REFERENCE,
    FAST.name: FAST,
}

DEFAULT_BACKEND_NAME = FAST.name


def resolve_backend(
    spec: Union[str, ExecutionBackend, None],
) -> ExecutionBackend:
    """Turn a name / instance / None into a backend (None = current)."""
    if spec is None:
        return current_backend()
    if isinstance(spec, ExecutionBackend):
        return spec
    try:
        return BACKENDS[spec]
    except KeyError:
        raise ParameterError(
            f"unknown execution backend {spec!r} "
            f"(choose from {sorted(BACKENDS)})"
        ) from None


def current_backend() -> ExecutionBackend:
    """The backend new runs bind to (the execution context's binding)."""
    from repro.runtime.context import current_context

    return current_context().backend


def set_default_backend(
    spec: Union[str, ExecutionBackend],
) -> ExecutionBackend:
    """Deprecated: mutate the process-root context's backend.

    Shim kept for downstream compatibility; returns the previous root
    backend.  It does not affect already-activated contexts — scope
    switches with :func:`use_backend` or build an explicit
    :class:`~repro.runtime.context.ExecutionContext` instead.  Warns
    once per process.
    """
    from repro.runtime.context import root_context, warn_deprecated_accessor

    warn_deprecated_accessor(
        "repro.engine.backend.set_default_backend",
        "ExecutionContext(backend=...).activate()",
    )
    root = root_context()
    previous = root.backend
    root.backend = resolve_backend(spec)
    return previous


@contextmanager
def use_backend(spec: Union[str, ExecutionBackend]) -> Iterator[ExecutionBackend]:
    """Scope a backend switch to a ``with`` block (re-entrant).

    Activates a derived execution context, so the switch is
    exception-safe and isolated to the calling thread/task.
    """
    from repro.runtime.context import current_context

    backend = resolve_backend(spec)
    with current_context().child(backend=backend).activate():
        yield backend


# Registration side effect: importing the registry always registers the
# parallel backend too (repro.engine.parallel appends itself to
# BACKENDS).  The import sits at module bottom so parallel.py can in
# turn import ExecutionBackend/BACKENDS from the (by then initialised)
# top of this module without a cycle.
import repro.engine.parallel as _parallel  # noqa: E402,F401  isort:skip
