"""The shared round kernels: one vectorized CRCW step batch each.

These are the bodies of every level-synchronous round in the system,
written once.  The decomposition kernels (:func:`arb_round`,
:func:`min_round`, :func:`dense_round`, :func:`filter_edges`) operate
on a :class:`~repro.decomp.base.DecompState`; :func:`bottom_up_step`
is the read-based sweep shared by the BFS family.  The variant modules
re-export them under their historical names, and the engine's policy
objects dispatch to them.

Cost parity note: each kernel charges exactly what its pre-engine
counterpart charged; the only intentional change is that every
end-of-round barrier is routed through
:func:`repro.engine.core.end_round`, which charges the uniform
``log2(round_edges + 1)`` packing depth for decomposition rounds
(previously the hybrid's dense round charged ``log2(n_vertices + 1)``,
making the Figure 5-7 phase breakdowns mutually incomparable).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.engine.core import UNVISITED, end_round
from repro.pram.cost import current_tracker
from repro.primitives.atomics import decode_pair, encode_pair, first_winner, write_min
from repro.primitives.pack import pack_index

__all__ = [
    "arb_round",
    "min_round",
    "dense_round",
    "filter_edges",
    "bottom_up_step",
    "_PAIR_INF",
]

#: writeMin identity for the merged (delta', center) pair array.
_PAIR_INF = np.int64((1 << 62) - 1)


def arb_round(state) -> np.ndarray:
    """One Decomp-Arb BFS round over the current frontier.

    Returns the next frontier (this round's CAS winners).  Mutates
    ``state.C`` and appends surviving inter-edges.
    """
    tracker = current_tracker()
    graph, C = state.graph, state.C
    src, dst = graph.expand(state.frontier)
    state.edges_inspected += int(src.size)
    if src.size == 0:
        end_round()
        return np.zeros(0, dtype=np.int64)
    cu = C[src]
    cw = C[dst]
    tracker.add("gather", work=float(2 * src.size), depth=1.0)

    # CAS races on unvisited targets: one arbitrary winner each.
    unvis = cw == UNVISITED
    unvis_pos = np.flatnonzero(unvis)
    win_local, winners = first_winner(dst[unvis_pos])
    win_pos = unvis_pos[win_local]
    C[winners] = cu[win_pos]
    tracker.add("scatter", work=float(winners.size), depth=1.0)
    state.visited += int(winners.size)

    # All non-winning edges can be classified immediately: the winner's
    # component id is visible to the losers of the race (Algorithm 3
    # lines 16-19), and previously visited targets carry their label.
    is_winner_edge = np.zeros(src.size, dtype=bool)
    is_winner_edge[win_pos] = True
    rest = ~is_winner_edge
    cw_now = C[dst[rest]]
    cu_rest = cu[rest]
    tracker.add("gather", work=float(cu_rest.size), depth=1.0)
    inter = cw_now != cu_rest
    state.keep_inter(
        cu_rest[inter], cw_now[inter], src[rest][inter], dst[rest][inter]
    )
    # End-of-round packing of kept edges / next frontier.
    end_round(int(src.size))
    return winners


def min_round(state, pair: np.ndarray) -> np.ndarray:
    """One Decomp-Min round: writeMin phase, barrier, claim phase.

    *pair* is the per-vertex merged (delta', center) writeMin cell
    (the first element of the paper's C pairs); ``state.C`` plays the
    role of the second element (the component id).  Returns the next
    frontier.
    """
    tracker = current_tracker()
    graph, C = state.graph, state.C
    frac = state.schedule.frac

    # ---- Phase 1: writeMin marking + classification of visited targets.
    with tracker.phase("bfsPhase1"):
        src, dst = graph.expand(state.frontier)
        state.edges_inspected += int(src.size)
        if src.size == 0:
            end_round()
            return np.zeros(0, dtype=np.int64)
        cu = C[src]
        cw = C[dst]
        # 3 words per edge: the source's component plus the target's
        # (conflict-value, componentID) *pair* — the extra word per
        # vertex visit the paper's pair layout trades for one fewer
        # cache miss than a two-array layout would cost.
        tracker.add("gather", work=float(3 * src.size), depth=1.0)

        unvis = cw == UNVISITED
        # writeMin((delta'_{C[u]}, C[u])) onto every unvisited target.
        keys = encode_pair(frac[cu[unvis]], cu[unvis])
        write_min(pair, dst[unvis], keys)

        # Edges to visited targets resolve now: inter iff labels differ.
        vis_pos = np.flatnonzero(~unvis)
        inter_vis = cw[vis_pos] != cu[vis_pos]
        keep_pos = vis_pos[inter_vis]
        state.keep_inter(cu[keep_pos], cw[keep_pos], src[keep_pos], dst[keep_pos])
        # Phase-1 output compaction (the paper's in-place E overwrite).
        end_round(int(src.size))

    # ---- Phase 2: losers classify, winners claim (one CAS per target).
    with tracker.phase("bfsPhase2"):
        unvis_pos = np.flatnonzero(unvis)
        # The paper's phase 2 re-reads every edge kept by phase 1: the
        # unresolved (unvisited-target) ones — whose merged pair is two
        # words — plus the already-classified inter edges, skipped via
        # their sign bit at unit cost.
        tracker.add(
            "gather",
            work=float(2 * unvis_pos.size + int(inter_vis.sum())),
            depth=1.0,
        )
        if unvis_pos.size == 0:
            end_round()
            return np.zeros(0, dtype=np.int64)
        targets = dst[unvis_pos]
        merged = pair[targets]
        _, winner_center = decode_pair(merged)
        mine = cu[unvis_pos]
        won = winner_center == mine

        # Winning component's vertices race one CAS to add w once.
        win_targets = targets[won]
        first_pos, new_vertices = first_winner(win_targets)
        C[new_vertices] = winner_center[won][first_pos]
        # Mark claimed cells so later writeMins cannot touch them
        # (the paper sets C1[w] = -1; our pair array is per-DECOMP and
        # claimed vertices are excluded by C[w] != UNVISITED instead).
        tracker.add("scatter", work=float(new_vertices.size), depth=1.0)
        state.visited += int(new_vertices.size)

        # Losers: inter-component iff the winner differs (it does, by
        # definition of losing) — matches Algorithm 2 lines 32-35.
        lose_pos = unvis_pos[~won]
        state.keep_inter(
            cu[lose_pos], C[dst[lose_pos]], src[lose_pos], dst[lose_pos]
        )
        end_round(int(src.size))
    return new_vertices


def dense_round(state) -> np.ndarray:
    """One read-based round: unvisited vertices pull from the frontier.

    Returns the newly visited vertices (next frontier).  Charges the
    early-exit edge count as streaming ``scan`` work — no atomics.
    Tie-break-policy independent: whoever the tie-break rule would pick
    among concurrent writers, the pull sweep adopts the first frontier
    neighbor in adjacency order (a legal arbitrary-CRCW schedule).
    """
    tracker = current_tracker()
    graph, C = state.graph, state.C

    on_frontier = np.zeros(state.n, dtype=bool)
    on_frontier[state.frontier] = True
    tracker.add("scatter", work=float(state.frontier.size), depth=1.0)

    unvisited = pack_index(C == UNVISITED)
    if unvisited.size == 0:
        end_round()
        return np.zeros(0, dtype=np.int64)
    # charge_cost=False: only the early-exit edge count below is charged.
    src, dst = graph.expand(unvisited, charge_cost=False)
    hit = on_frontier[dst]
    hit_positions = np.flatnonzero(hit)
    if hit_positions.size:
        first_pos, winners = first_winner(src[hit_positions])
        adopted_from = dst[hit_positions[first_pos]]
        C[winners] = C[adopted_from]
        tracker.add("scatter", work=float(winners.size), depth=1.0)
        state.visited += int(winners.size)
    else:
        winners = np.zeros(0, dtype=np.int64)

    # Early-exit accounting: edges scanned up to the first hit (or the
    # whole list when there is none) — this is the work the paper's
    # read-based sweep saves over the write-based one.
    counts = graph.offsets[unvisited + 1] - graph.offsets[unvisited]
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    scanned = counts.astype(np.float64)
    if hit_positions.size:
        order = np.searchsorted(unvisited, winners)
        scanned[order] = (hit_positions[first_pos] - starts[order] + 1).astype(
            np.float64
        )
    examined = int(scanned.sum())
    state.edges_inspected += examined
    tracker.add("scan", work=float(examined + unvisited.size), depth=1.0)
    end_round(examined)
    return winners


def filter_edges(state, deferred: List[np.ndarray]) -> None:
    """The post-processing phase: classify every deferred edge.

    *deferred* holds the frontiers of the dense rounds; their out-edges
    were never inspected write-based, so we stream over them once,
    keeping those whose endpoint labels differ (already relabeled to
    component ids, as everywhere else).
    """
    tracker = current_tracker()
    if not deferred:
        return
    vertices = np.concatenate(deferred)
    if vertices.size == 0:
        return
    C = state.C
    src, dst = state.graph.expand(vertices)
    state.edges_inspected += int(src.size)
    cu = C[src]
    cw = C[dst]
    tracker.add("scan", work=float(2 * src.size), depth=1.0)
    inter = cu != cw
    state.keep_inter(cu[inter], cw[inter], src[inter], dst[inter])
    end_round(int(src.size))


def bottom_up_step(
    graph,
    frontier_bitmap: np.ndarray,
    visited: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """One read-based (bottom-up) BFS round.

    Every unvisited vertex scans its neighbors in adjacency order and
    adopts the first one lying on the current frontier.  Returns
    ``(new_vertices, their_parents, edges_examined)`` where
    *edges_examined* counts edge inspections up to each early exit —
    the quantity the cost model charges.
    """
    tracker = current_tracker()
    unvisited = pack_index(~visited)
    if unvisited.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 0
    # charge_cost=False: only the early-exit edge count below is charged.
    src, dst = graph.expand(unvisited, charge_cost=False)
    hit = frontier_bitmap[dst]
    # First frontier-neighbor per source, exploiting expand()'s grouped,
    # adjacency-ordered layout: the first occurrence of each source
    # among the hits is its earliest hit.
    hit_positions = np.flatnonzero(hit)
    first_pos, winners = first_winner(src[hit_positions]) if hit_positions.size else (
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
    )
    parent_of_winner = dst[hit_positions[first_pos]] if hit_positions.size else (
        np.zeros(0, dtype=np.int64)
    )

    # Early-exit cost: edges scanned = (position of first hit within the
    # source's slice) + 1, or the full degree when there is no hit.
    counts = graph.offsets[unvisited + 1] - graph.offsets[unvisited]
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    scanned = counts.astype(np.float64)
    if winners.size:
        # Map winner vertex id -> its index within `unvisited` to find
        # the slice start of each winner.
        order = np.searchsorted(unvisited, winners)
        local_first = hit_positions[first_pos] - starts[order]
        scanned_winners = (local_first + 1).astype(np.float64)
        scanned[order] = scanned_winners
    edges_examined = int(scanned.sum())
    # Streaming reads, no atomics: the dense sweep's cache-friendliness.
    tracker.add("scan", work=float(edges_examined + unvisited.size), depth=1.0)
    tracker.add("scatter", work=float(winners.size), depth=1.0)
    return winners, parent_of_winner, edges_examined
