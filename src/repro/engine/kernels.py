"""The shared round kernels: one vectorized CRCW step batch each.

These are the bodies of every level-synchronous round in the system,
written once.  The decomposition kernels (:func:`arb_round`,
:func:`min_round`, :func:`dense_round`, :func:`filter_edges`) operate
on a :class:`~repro.decomp.base.DecompState`; :func:`bottom_up_step`
is the read-based sweep shared by the BFS family.  The variant modules
re-export them under their historical names, and the engine's policy
objects dispatch to them.

Execution-backend note: every array operation goes through the state's
:mod:`~repro.engine.workspace` — a :class:`~repro.engine.workspace.
NullWorkspace` (reference backend) makes each one the historical fresh
allocation, a real :class:`~repro.engine.workspace.Workspace` (fast
backend) writes into reused arena slices.  The kernels also resolve
the ambient cost tracker and fault plan once per round and pass them
into the primitives, so the innermost loops perform no repeated
context-var reads.  Anything that outlives the round (winners, kept
inter-edge chunks) is produced as a fresh array, never an arena view.

Cost parity note: each kernel charges exactly what its pre-engine
counterpart charged; the only intentional change is that every
end-of-round barrier is routed through
:func:`repro.engine.core.end_round`, which charges the uniform
``log2(round_edges + 1)`` packing depth for decomposition rounds
(previously the hybrid's dense round charged ``log2(n_vertices + 1)``,
making the Figure 5-7 phase breakdowns mutually incomparable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.engine.core import UNVISITED, end_round
from repro.engine.workspace import NULL_WORKSPACE
from repro.primitives.atomics import (
    PAIR_SHIFT,
    encode_pair,
    first_winner,
    write_min,
)
from repro.primitives.pack import pack_index
from repro.runtime.context import current_context

if TYPE_CHECKING:
    from repro.decomp.base import DecompState
    from repro.engine.workspace import NullWorkspace
    from repro.graphs.csr import CSRGraph

__all__ = [
    "arb_round",
    "min_round",
    "dense_round",
    "filter_edges",
    "bottom_up_step",
    "_PAIR_INF",
]

#: writeMin identity for the merged (delta', center) pair array.
_PAIR_INF = np.int64((1 << 62) - 1)

#: Payload half of an encoded (priority, payload) pair (the component
#: id Decomp-Min's phase 2 reads back out of the writeMin cell).
_PAIR_PAYLOAD_MASK = np.int64((1 << PAIR_SHIFT) - 1)


def arb_round(state: "DecompState") -> np.ndarray:
    """One Decomp-Arb BFS round over the current frontier.

    Returns the next frontier (this round's CAS winners).  Mutates
    ``state.C`` and appends surviving inter-edges.
    """
    tracker = current_context().tracker
    plan = current_context().fault_plan
    ws = state.workspace
    graph, C = state.graph, state.C
    src, dst = graph.expand(state.frontier, workspace=ws)
    state.edges_inspected += int(src.size)
    if src.size == 0:
        end_round()
        return np.zeros(0, dtype=np.int64)
    cu = ws.take(C, src, "arb.cu")
    cw = ws.take(C, dst, "arb.cw")
    tracker.add("gather", work=float(2 * src.size), depth=1.0)

    # CAS races on unvisited targets: one arbitrary winner each.
    unvis = ws.equal(cw, UNVISITED, "arb.unvis")
    unvis_pos = np.flatnonzero(unvis)
    win_local, winners = first_winner(
        ws.take(dst, unvis_pos, "arb.race"),
        workspace=ws,
        tracker=tracker,
        plan=plan,
    )
    win_pos = unvis_pos[win_local]
    C[winners] = cu[win_pos]
    tracker.add("scatter", work=float(winners.size), depth=1.0)
    state.visited += int(winners.size)

    # All non-winning edges can be classified immediately: the winner's
    # component id is visible to the losers of the race (Algorithm 3
    # lines 16-19), and previously visited targets carry their label.
    is_winner_edge = ws.falses("arb.winmask", int(src.size))
    is_winner_edge[win_pos] = True
    rest = ws.logical_not(is_winner_edge, "arb.rest")
    dst_rest = ws.compress(rest, dst, "arb.dstrest")
    cw_now = ws.take(C, dst_rest, "arb.cwnow")
    cu_rest = ws.compress(rest, cu, "arb.curest")
    tracker.add("gather", work=float(cu_rest.size), depth=1.0)
    inter = ws.not_equal(cw_now, cu_rest, "arb.inter")
    src_rest = ws.compress(rest, src, "arb.srcrest")
    state.keep_inter(
        cu_rest[inter], cw_now[inter], src_rest[inter], dst_rest[inter]
    )
    # End-of-round packing of kept edges / next frontier.
    end_round(int(src.size))
    return winners


def min_round(
    state: "DecompState", pair: np.ndarray, trusted_keys: bool = False
) -> np.ndarray:
    """One Decomp-Min round: writeMin phase, barrier, claim phase.

    *pair* is the per-vertex merged (delta', center) writeMin cell
    (the first element of the paper's C pairs); ``state.C`` plays the
    role of the second element (the component id).  Returns the next
    frontier.  ``trusted_keys`` skips the per-round pair-encoding range
    scans (the fast backend's tie-break policy proves the whole domain
    once at setup).
    """
    tracker = current_context().tracker
    plan = current_context().fault_plan
    ws = state.workspace
    graph, C = state.graph, state.C
    frac = state.schedule.frac

    # ---- Phase 1: writeMin marking + classification of visited targets.
    with tracker.phase("bfsPhase1"):
        src, dst = graph.expand(state.frontier, workspace=ws)
        state.edges_inspected += int(src.size)
        if src.size == 0:
            end_round()
            return np.zeros(0, dtype=np.int64)
        cu = ws.take(C, src, "min.cu")
        cw = ws.take(C, dst, "min.cw")
        # 3 words per edge: the source's component plus the target's
        # (conflict-value, componentID) *pair* — the extra word per
        # vertex visit the paper's pair layout trades for one fewer
        # cache miss than a two-array layout would cost.
        tracker.add("gather", work=float(3 * src.size), depth=1.0)

        unvis = ws.equal(cw, UNVISITED, "min.unvis")
        unvis_pos = np.flatnonzero(unvis)
        # writeMin((delta'_{C[u]}, C[u])) onto every unvisited target.
        cu_unvis = ws.take(cu, unvis_pos, "min.cuunvis")
        keys = ws.take(frac, cu_unvis, "min.keys")
        keys = encode_pair(keys, cu_unvis, check=not trusted_keys, out=keys)
        write_min(
            pair,
            ws.take(dst, unvis_pos, "min.dstunvis"),
            keys,
            tracker=tracker,
            workspace=ws,
        )

        # Edges to visited targets resolve now: inter iff labels differ.
        vis_pos = np.flatnonzero(ws.logical_not(unvis, "min.vis"))
        cw_vis = ws.take(cw, vis_pos, "min.cwvis")
        cu_vis = ws.take(cu, vis_pos, "min.cuvis")
        inter_vis = ws.not_equal(cw_vis, cu_vis, "min.intervis")
        keep_pos = vis_pos[inter_vis]
        state.keep_inter(cu[keep_pos], cw[keep_pos], src[keep_pos], dst[keep_pos])
        # Phase-1 output compaction (the paper's in-place E overwrite).
        end_round(int(src.size))

    # ---- Phase 2: losers classify, winners claim (one CAS per target).
    with tracker.phase("bfsPhase2"):
        # The paper's phase 2 re-reads every edge kept by phase 1: the
        # unresolved (unvisited-target) ones — whose merged pair is two
        # words — plus the already-classified inter edges, skipped via
        # their sign bit at unit cost.
        tracker.add(
            "gather",
            work=float(2 * unvis_pos.size + int(inter_vis.sum())),
            depth=1.0,
        )
        if unvis_pos.size == 0:
            end_round()
            return np.zeros(0, dtype=np.int64)
        targets = ws.take(dst, unvis_pos, "min.targets")
        merged = ws.take(pair, targets, "min.merged")
        winner_center = ws.bitand(merged, _PAIR_PAYLOAD_MASK, "min.wcenter")
        mine = ws.take(cu, unvis_pos, "min.mine")
        won = ws.equal(winner_center, mine, "min.won")

        # Winning component's vertices race one CAS to add w once.
        win_targets = ws.compress(won, targets, "min.wintargets")
        first_pos, new_vertices = first_winner(
            win_targets, workspace=ws, tracker=tracker, plan=plan
        )
        wc_won = ws.compress(won, winner_center, "min.wcwon")
        C[new_vertices] = wc_won[first_pos]
        # Mark claimed cells so later writeMins cannot touch them
        # (the paper sets C1[w] = -1; our pair array is per-DECOMP and
        # claimed vertices are excluded by C[w] != UNVISITED instead).
        tracker.add("scatter", work=float(new_vertices.size), depth=1.0)
        state.visited += int(new_vertices.size)

        # Losers: inter-component iff the winner differs (it does, by
        # definition of losing) — matches Algorithm 2 lines 32-35.
        lose_pos = ws.compress(
            ws.logical_not(won, "min.lost"), unvis_pos, "min.losepos"
        )
        state.keep_inter(
            cu[lose_pos], C[dst[lose_pos]], src[lose_pos], dst[lose_pos]
        )
        end_round(int(src.size))
    return new_vertices


def dense_round(state: "DecompState") -> np.ndarray:
    """One read-based round: unvisited vertices pull from the frontier.

    Returns the newly visited vertices (next frontier).  Charges the
    early-exit edge count as streaming ``scan`` work — no atomics.
    Tie-break-policy independent: whoever the tie-break rule would pick
    among concurrent writers, the pull sweep adopts the first frontier
    neighbor in adjacency order (a legal arbitrary-CRCW schedule).
    """
    tracker = current_context().tracker
    plan = current_context().fault_plan
    ws = state.workspace
    graph, C = state.graph, state.C

    on_frontier = ws.falses("dense.onfrontier", state.n)
    on_frontier[state.frontier] = True
    tracker.add("scatter", work=float(state.frontier.size), depth=1.0)

    unvisited = pack_index(ws.equal(C, UNVISITED, "dense.unvis"))
    if unvisited.size == 0:
        end_round()
        return np.zeros(0, dtype=np.int64)
    # charge_cost=False: only the early-exit edge count below is charged.
    src, dst = graph.expand(unvisited, charge_cost=False, workspace=ws)
    hit = ws.take(on_frontier, dst, "dense.hit")
    hit_positions = np.flatnonzero(hit)
    if hit_positions.size:
        first_pos, winners = first_winner(
            ws.take(src, hit_positions, "dense.race"),
            workspace=ws,
            tracker=tracker,
            plan=plan,
        )
        adopted_from = dst[hit_positions[first_pos]]
        C[winners] = C[adopted_from]
        tracker.add("scatter", work=float(winners.size), depth=1.0)
        state.visited += int(winners.size)
    else:
        winners = np.zeros(0, dtype=np.int64)

    # Early-exit accounting: edges scanned up to the first hit (or the
    # whole list when there is none) — this is the work the paper's
    # read-based sweep saves over the write-based one.
    counts = ws.sub(
        ws.take(graph.offsets, unvisited + 1, "dense.offs1"),
        ws.take(graph.offsets, unvisited, "dense.offs0"),
        "dense.counts",
    )
    starts = ws.exclusive_cumsum(counts, "dense.starts")
    scanned = ws.as_float(counts, "dense.scanned")
    if hit_positions.size:
        order = np.searchsorted(unvisited, winners)
        scanned[order] = (hit_positions[first_pos] - starts[order] + 1).astype(
            np.float64
        )
    examined = int(scanned.sum())
    state.edges_inspected += examined
    tracker.add("scan", work=float(examined + unvisited.size), depth=1.0)
    end_round(examined)
    return winners


def filter_edges(state: "DecompState", deferred: List[np.ndarray]) -> None:
    """The post-processing phase: classify every deferred edge.

    *deferred* holds the frontiers of the dense rounds; their out-edges
    were never inspected write-based, so we stream over them once,
    keeping those whose endpoint labels differ (already relabeled to
    component ids, as everywhere else).
    """
    tracker = current_context().tracker
    if not deferred:
        return
    vertices = np.concatenate(deferred)
    if vertices.size == 0:
        return
    C = state.C
    ws = state.workspace
    src, dst = state.graph.expand(vertices, workspace=ws)
    state.edges_inspected += int(src.size)
    cu = ws.take(C, src, "filter.cu")
    cw = ws.take(C, dst, "filter.cw")
    tracker.add("scan", work=float(2 * src.size), depth=1.0)
    inter = ws.not_equal(cu, cw, "filter.inter")
    state.keep_inter(cu[inter], cw[inter], src[inter], dst[inter])
    end_round(int(src.size))


def bottom_up_step(
    graph: "CSRGraph",
    frontier_bitmap: np.ndarray,
    visited: np.ndarray,
    workspace: "Optional[NullWorkspace]" = None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """One read-based (bottom-up) BFS round.

    Every unvisited vertex scans its neighbors in adjacency order and
    adopts the first one lying on the current frontier.  Returns
    ``(new_vertices, their_parents, edges_examined)`` where
    *edges_examined* counts edge inspections up to each early exit —
    the quantity the cost model charges.
    """
    tracker = current_context().tracker
    plan = current_context().fault_plan
    ws = workspace if workspace is not None else NULL_WORKSPACE
    unvisited = pack_index(ws.logical_not(visited, "bu.notvis"))
    if unvisited.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 0
    # charge_cost=False: only the early-exit edge count below is charged.
    src, dst = graph.expand(unvisited, charge_cost=False, workspace=ws)
    hit = ws.take(frontier_bitmap, dst, "bu.hit")
    # First frontier-neighbor per source, exploiting expand()'s grouped,
    # adjacency-ordered layout: the first occurrence of each source
    # among the hits is its earliest hit.
    hit_positions = np.flatnonzero(hit)
    if hit_positions.size:
        first_pos, winners = first_winner(
            ws.take(src, hit_positions, "bu.race"),
            workspace=ws,
            tracker=tracker,
            plan=plan,
        )
        parent_of_winner = dst[hit_positions[first_pos]]
    else:
        first_pos = np.zeros(0, dtype=np.int64)
        winners = np.zeros(0, dtype=np.int64)
        parent_of_winner = np.zeros(0, dtype=np.int64)

    # Early-exit cost: edges scanned = (position of first hit within the
    # source's slice) + 1, or the full degree when there is no hit.
    counts = ws.sub(
        ws.take(graph.offsets, unvisited + 1, "bu.offs1"),
        ws.take(graph.offsets, unvisited, "bu.offs0"),
        "bu.counts",
    )
    starts = ws.exclusive_cumsum(counts, "bu.starts")
    scanned = ws.as_float(counts, "bu.scanned")
    if winners.size:
        # Map winner vertex id -> its index within `unvisited` to find
        # the slice start of each winner.
        order = np.searchsorted(unvisited, winners)
        local_first = hit_positions[first_pos] - starts[order]
        scanned_winners = (local_first + 1).astype(np.float64)
        scanned[order] = scanned_winners
    edges_examined = int(scanned.sum())
    # Streaming reads, no atomics: the dense sweep's cache-friendliness.
    tracker.add("scan", work=float(edges_examined + unvisited.size), depth=1.0)
    tracker.add("scatter", work=float(winners.size), depth=1.0)
    return winners, parent_of_winner, edges_examined
