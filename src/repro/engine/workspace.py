"""Per-run buffer arenas for the round kernels.

The round kernels are written once against a small workspace
vocabulary (``take``, ``compress``, ``equal``, ``repeat`` ...).  Two
implementations exist:

* :class:`NullWorkspace` — the ``reference`` execution: every request
  is a fresh NumPy allocation computed exactly as the historical
  kernels computed it.  A stateless singleton (:data:`NULL_WORKSPACE`).
* :class:`Workspace` — the ``fast`` execution: requests return views
  into named, lazily allocated, geometrically grown arena buffers and
  the operations write into them with ``out=``.  After the first few
  rounds of a run the arena reaches steady state and the round-kernel
  temporaries stop allocating — except where NumPy's fused one-pass
  primitives (``np.repeat``, ``flatnonzero``, fancy extraction) beat
  any multi-pass arena reformulation; those keep their fresh outputs,
  because the goal is wall clock, not allocation count.

A buffer view for a key is valid until the next request for the same
key, which is exactly one round in every kernel (each call site owns
its key).  Anything that outlives the round — next frontiers, kept
inter-edge chunks, winner arrays — is produced as a fresh array by the
kernels, never as an arena view.

Workspaces are *cost-model invisible*: no method charges any (work,
depth).  The simulated machine's allocations were always charged where
the algorithm conceptually allocates (``alloc`` kind at run setup);
reusing real memory across rounds changes how the NumPy execution
runs, not what the PRAM run costs — the parity contract of
:mod:`repro.engine.backend`.

Machine-checked contract (``repro lint`` RL006): arena buffer sizes
(``_buf``/``_zeroed_bool``/``_iota``/``_grown``) are pure functions of
batch sizes — the worker-count taint analysis proves no value derived
from ``workers``/``cpu_count`` ever reaches them, here or in the
chunked subclass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple, Union

import numpy as np

from repro.primitives.rand import splitmix64

if TYPE_CHECKING:
    from numpy.typing import DTypeLike

    from repro.engine.backend import ExecutionBackend

__all__ = ["Workspace", "NullWorkspace", "NULL_WORKSPACE", "make_workspace"]

_MIN_CAPACITY = 16


def _grown(size: int) -> int:
    """Geometric capacity for a requested view length."""
    return max(_MIN_CAPACITY, 1 << int(max(size, 1) - 1).bit_length())


class NullWorkspace:
    """Reference execution: every operation is a fresh allocation.

    Each method reproduces the historical kernels' NumPy expression
    byte-for-byte, so running the kernels through a ``NullWorkspace``
    *is* running the pre-backend code.
    """

    #: Kernels may not skip redundant range validation.
    trusted = False
    #: ``first_winner`` resolves through the sort-based path.
    scatter_winner = False

    def take(self, arr: np.ndarray, idx: np.ndarray, key: str) -> np.ndarray:
        return arr[idx]

    def compress(self, mask: np.ndarray, arr: np.ndarray, key: str) -> np.ndarray:
        return arr[mask]

    def equal(self, a: np.ndarray, b: np.ndarray, key: str) -> np.ndarray:
        return a == b

    def not_equal(self, a: np.ndarray, b: np.ndarray, key: str) -> np.ndarray:
        return a != b

    def logical_not(self, a: np.ndarray, key: str) -> np.ndarray:
        return ~a

    def bitand(self, a: np.ndarray, scalar: "DTypeLike", key: str) -> np.ndarray:
        return a & scalar

    def sub(self, a: np.ndarray, b: np.ndarray, key: str) -> np.ndarray:
        return a - b

    def as_float(self, a: np.ndarray, key: str) -> np.ndarray:
        return a.astype(np.float64)

    def falses(self, key: str, size: int) -> np.ndarray:
        return np.zeros(size, dtype=bool)

    def exclusive_cumsum(self, a: np.ndarray, key: str) -> np.ndarray:
        return np.concatenate(([0], np.cumsum(a)[:-1]))

    def repeat(
        self, values: np.ndarray, counts: np.ndarray, total: int, key: str
    ) -> np.ndarray:
        return np.repeat(values, counts)

    def ragged_positions(
        self, starts: np.ndarray, counts: np.ndarray, total: int, key: str
    ) -> np.ndarray:
        pos = np.repeat(
            starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        return pos + np.arange(total, dtype=np.int64)

    def hash_slots(
        self, keys: np.ndarray, seed: np.uint64, mask: np.uint64, key: str
    ) -> np.ndarray:
        """Initial probe slots: ``splitmix64(keys ^ seed) & mask``.

        The hash table's per-batch slot computation, exposed as a
        workspace op so the chunked backend can split it across
        workers.  Always a fresh array — the table mutates slots as the
        probe loop advances.
        """
        h = splitmix64(keys.astype(np.uint64) ^ seed)
        return (h & mask).astype(np.int64)

    def minimum_scatter(
        self, dest: np.ndarray, idx: np.ndarray, values: np.ndarray
    ) -> None:
        """One batch of priority-CRCW writeMins: ``dest[idx] min= values``.

        The execution seam of :func:`repro.primitives.atomics.write_min`
        (which owns the charging and the sanitizer seam); the chunked
        backend overrides this with per-worker shard minima and a
        sequential combine.
        """
        np.minimum.at(dest, idx, values)


#: The shared stateless reference workspace.
NULL_WORKSPACE = NullWorkspace()


class Workspace(NullWorkspace):
    """Fast execution: named, reused, geometrically grown arena buffers.

    Parameters
    ----------
    num_vertices:
        The run's vertex universe — a sizing hint only; buffers are
        allocated lazily at the sizes the rounds actually need.
    """

    trusted = True
    scatter_winner = True

    def __init__(self, num_vertices: int) -> None:
        self.num_vertices = int(num_vertices)
        self._buffers: Dict[str, np.ndarray] = {}
        self._iota_buf = np.zeros(0, dtype=np.int64)

    # -- arena management --------------------------------------------------

    def _buf(self, key: str, size: int, dtype: "DTypeLike") -> np.ndarray:
        buf = self._buffers.get(key)
        if buf is None or buf.shape[0] < size:
            buf = np.empty(_grown(size), dtype=dtype)
            self._buffers[key] = buf
        return buf[:size]

    def _zeroed_bool(self, key: str, size: int) -> np.ndarray:
        # Invariant: this buffer is all-False between uses (users reset
        # exactly the entries they set), so growth is the only zeroing.
        buf = self._buffers.get(key)
        if buf is None or buf.shape[0] < size:
            buf = np.zeros(_grown(size), dtype=bool)
            self._buffers[key] = buf
        return buf[:size]

    def _iota(self, size: int) -> np.ndarray:
        if self._iota_buf.shape[0] < size:
            self._iota_buf = np.arange(_grown(size), dtype=np.int64)
        return self._iota_buf[:size]

    @property
    def bytes_held(self) -> int:
        """Total arena footprint (diagnostics / the wall-clock bench)."""
        return sum(b.nbytes for b in self._buffers.values()) + self._iota_buf.nbytes

    # -- the kernel vocabulary ---------------------------------------------

    def take(self, arr: np.ndarray, idx: np.ndarray, key: str) -> np.ndarray:
        # mode="clip" selects NumPy's unchecked fast path (measurably
        # faster than both mode="raise" and fancy indexing).  Safe
        # because every index stream here is internally generated and
        # in range; the reference path keeps the bounds-checked gather.
        out = self._buf(key, idx.shape[0], arr.dtype)
        np.take(arr, idx, out=out, mode="clip")
        return out

    def compress(self, mask: np.ndarray, arr: np.ndarray, key: str) -> np.ndarray:
        # flatnonzero + unchecked take beats both boolean fancy
        # indexing and np.compress(out=) — the mask-walking loop inside
        # compress is slower than one fused position scan plus a gather.
        pos = np.flatnonzero(mask)
        out = self._buf(key, pos.shape[0], arr.dtype)
        np.take(arr, pos, out=out, mode="clip")
        return out

    def equal(self, a: np.ndarray, b: np.ndarray, key: str) -> np.ndarray:
        out = self._buf(key, a.shape[0], np.bool_)
        np.equal(a, b, out=out)
        return out

    def not_equal(self, a: np.ndarray, b: np.ndarray, key: str) -> np.ndarray:
        out = self._buf(key, a.shape[0], np.bool_)
        np.not_equal(a, b, out=out)
        return out

    def logical_not(self, a: np.ndarray, key: str) -> np.ndarray:
        out = self._buf(key, a.shape[0], np.bool_)
        np.logical_not(a, out=out)
        return out

    def bitand(self, a: np.ndarray, scalar: "DTypeLike", key: str) -> np.ndarray:
        out = self._buf(key, a.shape[0], a.dtype)
        np.bitwise_and(a, scalar, out=out)
        return out

    def sub(self, a: np.ndarray, b: np.ndarray, key: str) -> np.ndarray:
        out = self._buf(key, a.shape[0], a.dtype)
        np.subtract(a, b, out=out)
        return out

    def as_float(self, a: np.ndarray, key: str) -> np.ndarray:
        out = self._buf(key, a.shape[0], np.float64)
        out[:] = a
        return out

    def falses(self, key: str, size: int) -> np.ndarray:
        out = self._buf(key, size, np.bool_)
        out.fill(False)
        return out

    def exclusive_cumsum(self, a: np.ndarray, key: str) -> np.ndarray:
        n = a.shape[0]
        out = self._buf(key, n, np.int64)
        if n:
            out[0] = 0
            np.cumsum(a[:-1], out=out[1:])
        return out

    # ``repeat`` is deliberately NOT overridden: ``np.repeat`` is one
    # fused C pass, and every arena reformulation (scatter boundary
    # deltas + in-place cumsum) costs three memory passes — measured
    # 2-3x slower at every scale.  The workspace optimizes where reuse
    # actually wins wall-clock, not allocation counts for their own sake.

    def ragged_positions(
        self, starts: np.ndarray, counts: np.ndarray, total: int, key: str
    ) -> np.ndarray:
        """Global gather positions of a ragged expansion.

        Same ``repeat(starts - excl_cumsum(counts), counts) +
        arange(total)`` computation as the reference, but the exclusive
        cumsum lands in an arena buffer, the iota comes from the cached
        ascending buffer instead of a per-round ``arange``, and the add
        runs in place over ``np.repeat``'s output — one temporary and
        two fewer passes per round.
        """
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        base = self.exclusive_cumsum(counts, key + "#base")
        np.subtract(starts, base, out=base)
        pos = np.repeat(base, counts)
        np.add(pos, self._iota(total), out=pos)
        return pos

    # -- CAS-race resolution -----------------------------------------------

    def winner_scatter(self, idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """First occurrence per distinct value of *idx*, without sorting.

        A last-write-wins scatter of descending positions over the
        reversed stream leaves each destination holding its *first*
        position on the original stream — the same winner schedule
        ``np.unique(idx, return_index=True)`` produces, in O(n + max).
        Returns fresh ``(positions, dests)`` arrays (they outlive the
        round as the next frontier).
        """
        m = idx.shape[0]
        bound = int(idx.max()) + 1
        slots = self._buf("winner#slots", bound, np.int64)
        mask = self._zeroed_bool("winner#mask", bound)
        slots[idx[::-1]] = self._iota(m)[::-1]
        mask[idx] = True
        dests = np.flatnonzero(mask)
        mask[dests] = False
        positions = slots[dests]
        return positions, dests


def make_workspace(
    backend: "ExecutionBackend", num_vertices: int, workers: int = 1
) -> Union[Workspace, NullWorkspace]:
    """The workspace a run should thread through its kernels.

    *workers* sizes the chunked backend's shard pool (the execution
    context's worker count); the serial backends ignore it.
    """
    if backend.chunked:
        from repro.engine.parallel import ParallelWorkspace

        return ParallelWorkspace(num_vertices, workers=workers)
    if backend.use_workspace:
        return Workspace(num_vertices)
    return NULL_WORKSPACE
