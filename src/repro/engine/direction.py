"""Direction policies: push (write-based) vs. pull (read-based) rounds.

Beamer's direction-optimizing insight: when the frontier is large, it
is cheaper to run a level *backwards* — every unvisited vertex scans
its own adjacency list for a frontier neighbor and exits early — than
to expand the frontier's out-edges.  The engine makes the decision a
pluggable per-round policy:

* :class:`AlwaysPush` — classic level-synchronous traversal.
* :class:`AlwaysPull` — every round read-based (BFS ablations; also a
  legal, if eccentric, decomposition configuration).
* :class:`FractionHybrid` — the paper's 20 %-of-vertices rule, used by
  Decomp-Arb-Hybrid, Decomp-Min-Hybrid, and direction-optimizing BFS.
* :class:`LigraEdgeHybrid` — Ligra's edge-count heuristic
  (frontier out-degree + size vs. (m + n)/20), used by hybrid-BFS-CC.

A policy sees the engine, the state, and the *claimed* frontier size
(last round's winners, before any center seeding — the decomposition's
switch deliberately excludes fresh centers; see decomp_arb_hybrid's
history for why).  ``sparse_phase`` is the CostTracker phase label a
push round runs under for states that track phases (``bfsMain`` for
pure push decomposition, ``bfsSparse`` for the hybrids).

Register a custom policy with :func:`register_direction_policy`; see
``docs/api.md`` for a worked example.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Type

from repro.engine.frontier import DENSE_THRESHOLD
from repro.errors import ParameterError
from repro.runtime.context import current_context

if TYPE_CHECKING:
    from repro.engine.core import TraversalEngine, TraversalState
    from repro.graphs.csr import CSRGraph

__all__ = [
    "DirectionPolicy",
    "AlwaysPush",
    "AlwaysPull",
    "FractionHybrid",
    "LigraEdgeHybrid",
    "DIRECTION_POLICIES",
    "register_direction_policy",
]


class DirectionPolicy:
    """Per-round choice between the push and pull kernels."""

    #: Registry key and display name.
    name: str = "?"
    #: Phase label for push rounds of phase-tracking states (or None).
    sparse_phase: Optional[str] = None

    def go_dense(
        self,
        engine: "TraversalEngine",
        state: "TraversalState",
        claimed: int,
    ) -> bool:
        """True to run this round read-based (pull)."""
        raise NotImplementedError


class AlwaysPush(DirectionPolicy):
    """Every round write-based: the classic level-synchronous loop."""

    name = "push"

    def __init__(self, sparse_phase: Optional[str] = None) -> None:
        self.sparse_phase = sparse_phase

    def go_dense(
        self,
        engine: "TraversalEngine",
        state: "TraversalState",
        claimed: int,
    ) -> bool:
        return False


class AlwaysPull(DirectionPolicy):
    """Every round read-based (the forced bottom-up ablation)."""

    name = "pull"

    def __init__(self, sparse_phase: Optional[str] = None) -> None:
        self.sparse_phase = sparse_phase

    def go_dense(
        self,
        engine: "TraversalEngine",
        state: "TraversalState",
        claimed: int,
    ) -> bool:
        return True


class FractionHybrid(DirectionPolicy):
    """The paper's rule: pull when claimed > threshold * n.

    Matches §4's "fraction of vertices on the frontier is greater than
    20%", guarded by "someone is left to pull" — once every vertex is
    visited the remaining drain rounds run (cheap) write-based.
    """

    name = "fraction"

    def __init__(
        self,
        threshold: float = DENSE_THRESHOLD,
        sparse_phase: Optional[str] = None,
    ) -> None:
        self.threshold = threshold
        self.sparse_phase = sparse_phase

    def go_dense(
        self,
        engine: "TraversalEngine",
        state: "TraversalState",
        claimed: int,
    ) -> bool:
        return (
            state.visited_count < state.n
            and claimed > self.threshold * state.n
        )


class LigraEdgeHybrid(DirectionPolicy):
    """Ligra's edge-count switch, used by hybrid-BFS-CC.

    Go bottom-up when the frontier's outgoing edges plus its vertices
    exceed ``(m + n) * threshold / 4`` — at the default threshold of
    0.20 that is the classic (m + n)/20, so a handful of hub vertices
    can already flip a dense graph to the read-based sweep (the
    rMat2/com-Orkut regime).  The degree sum is a real per-round
    computation, charged as a ``scan`` over the frontier.
    """

    name = "ligra-edges"

    def __init__(
        self, graph: "CSRGraph", threshold: float = DENSE_THRESHOLD
    ) -> None:
        self.graph = graph
        self.switch_budget = (
            (graph.num_directed + graph.num_vertices) * threshold / 4.0
        )

    def go_dense(
        self,
        engine: "TraversalEngine",
        state: "TraversalState",
        claimed: int,
    ) -> bool:
        frontier = state.frontier
        offsets = self.graph.offsets
        frontier_edges = int((offsets[frontier + 1] - offsets[frontier]).sum())
        current_context().tracker.add("scan", work=float(frontier.size), depth=1.0)
        return frontier_edges + frontier.size > self.switch_budget


#: Name -> policy class; the property tests enumerate this.  (Note:
#: LigraEdgeHybrid is constructed with the input graph, the others with
#: keyword arguments only.)
DIRECTION_POLICIES: Dict[str, Type[DirectionPolicy]] = {
    AlwaysPush.name: AlwaysPush,
    AlwaysPull.name: AlwaysPull,
    FractionHybrid.name: FractionHybrid,
    LigraEdgeHybrid.name: LigraEdgeHybrid,
}


def register_direction_policy(cls: Type[DirectionPolicy]) -> Type[DirectionPolicy]:
    """Register a custom :class:`DirectionPolicy` under ``cls.name``.

    Usable as a class decorator; raises on name collisions so a custom
    policy cannot silently shadow a built-in rule.
    """
    name = getattr(cls, "name", None)
    if not name or name == "?":
        raise ParameterError("direction policy must define a class-level name")
    if name in DIRECTION_POLICIES and DIRECTION_POLICIES[name] is not cls:
        raise ParameterError(f"direction policy {name!r} already registered")
    DIRECTION_POLICIES[name] = cls
    return cls
