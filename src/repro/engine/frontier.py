"""Frontier representation for the level-synchronous engine.

Ligra's central engineering idea (which the paper's hybrid variants
inherit) is that a frontier has two natural representations:

* **sparse** — an array of vertex ids, cheap when the frontier is small
  (work proportional to frontier edges);
* **dense** — a boolean bitmap over all vertices, cheap when the
  frontier is a large fraction of the graph (streaming reads, no
  atomics, early exit per unvisited vertex).

:class:`Frontier` holds either form, converts lazily (each conversion
charges its PRAM cost), and exposes the paper's switching rule: go
dense when the frontier holds more than ``dense_threshold`` (20 % in
the paper) of the *remaining unvisited* vertices — the condition §4
describes as "the fraction of vertices on the frontier is greater than
20%".  The engine's :mod:`~repro.engine.direction` policies build on
this shared threshold rule.

(Historically this lived in :mod:`repro.bfs.frontier`, which still
re-exports it; the engine owns the frontier lifecycle now.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.primitives.pack import pack_index
from repro.runtime.context import current_context

if TYPE_CHECKING:
    from repro.engine.workspace import NullWorkspace

__all__ = ["Frontier", "DENSE_THRESHOLD"]

#: The paper's dense-switch fraction.
DENSE_THRESHOLD = 0.20


class Frontier:
    """A set of active vertices, in sparse (ids) or dense (bitmap) form.

    Parameters
    ----------
    num_vertices:
        Size of the vertex universe (bitmap length).
    vertices:
        Sparse form: int64 array of distinct vertex ids.
    bitmap:
        Dense form: bool array of length *num_vertices*.

    Exactly one of *vertices* / *bitmap* must be given.
    """

    def __init__(
        self,
        num_vertices: int,
        vertices: Optional[np.ndarray] = None,
        bitmap: Optional[np.ndarray] = None,
        workspace: "Optional[NullWorkspace]" = None,
    ) -> None:
        if (vertices is None) == (bitmap is None):
            raise ValueError("provide exactly one of vertices / bitmap")
        self.num_vertices = num_vertices
        #: Optional :mod:`~repro.engine.workspace` arena; when present,
        #: the dense conversion reuses its bitmap buffer across rounds
        #: instead of allocating one per round.  A frontier lives for
        #: one round, so the buffer is requested at most once per round.
        self.workspace = workspace
        self._vertices = (
            np.asarray(vertices, dtype=np.int64) if vertices is not None else None
        )
        self._bitmap = np.asarray(bitmap, dtype=bool) if bitmap is not None else None
        if self._bitmap is not None and self._bitmap.shape != (num_vertices,):
            raise ValueError("bitmap length must equal num_vertices")
        self._size: Optional[int] = (
            int(self._vertices.size) if self._vertices is not None else None
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_vertices(
        cls,
        num_vertices: int,
        vertices: np.ndarray,
        workspace: "Optional[NullWorkspace]" = None,
    ) -> "Frontier":
        return cls(num_vertices, vertices=vertices, workspace=workspace)

    @classmethod
    def empty(cls, num_vertices: int) -> "Frontier":
        return cls(num_vertices, vertices=np.zeros(0, dtype=np.int64))

    # -- views -------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of active vertices."""
        if self._size is None:
            assert self._bitmap is not None
            current_context().tracker.add("scan", work=float(self.num_vertices), depth=1.0)
            self._size = int(np.count_nonzero(self._bitmap))
        return self._size

    def __len__(self) -> int:
        return self.size

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    def as_vertices(self) -> np.ndarray:
        """Sparse form (converting from the bitmap costs a pack)."""
        if self._vertices is None:
            assert self._bitmap is not None
            self._vertices = pack_index(self._bitmap)
            self._size = int(self._vertices.size)
        return self._vertices

    def as_bitmap(self) -> np.ndarray:
        """Dense form (converting from ids costs a scatter)."""
        if self._bitmap is None:
            assert self._vertices is not None
            current_context().tracker.add(
                "scatter",
                work=float(self._vertices.size),
                depth=1.0,
            )
            if self.workspace is not None:
                bitmap = self.workspace.falses("frontier.bitmap", self.num_vertices)
            else:
                bitmap = np.zeros(self.num_vertices, dtype=bool)
            bitmap[self._vertices] = True
            self._bitmap = bitmap
        return self._bitmap

    # -- the paper's switching rule -----------------------------------------

    def should_go_dense(
        self, remaining_vertices: int, threshold: float = DENSE_THRESHOLD
    ) -> bool:
        """True when the read-based (dense) sweep is predicted cheaper.

        *remaining_vertices* is the count of not-yet-visited vertices;
        the dense sweep's cost scales with it, so the ratio
        ``frontier_size / remaining`` is the comparison the switch makes.
        """
        if remaining_vertices <= 0:
            return False
        return self.size > threshold * remaining_vertices
