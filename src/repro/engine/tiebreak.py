"""Tie-break policies: who wins when BFS frontiers collide.

When several frontiers reach the same unvisited vertex in one
level-synchronous round, some rule must pick the single winner.  The
paper's two rules are the engine's two built-in policies:

* :class:`ArbTiebreak` — Algorithm 3's arbitrary tie-breaking: a bare
  CAS race, resolved in one pass (``first_winner`` is one legal
  arbitrary-CRCW schedule).  Decomposition quality bound: 2*beta*m
  expected inter-edges (Theorem 2).
* :class:`MinTiebreak` — Algorithm 2's faithful Miller-Peng-Xu rule:
  the center with the minimum fractional shift delta' wins, via an
  atomic writeMin over encoded (delta', center) pairs, requiring two
  synchronized phases per round.  Bound: beta*m.

A policy owns whatever per-run auxiliary state its rule needs (the
writeMin pair array for ``min``) and runs the push-round kernel under
the right phase labels.  Read-based (pull) rounds are tie-break
independent — every concurrent writer would write the same component
adoption, so the pull kernel never consults the policy.

Register a custom policy with :func:`register_tiebreak_policy`; see
``docs/api.md`` for a worked example.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Type

import numpy as np

from repro.engine.kernels import _PAIR_INF, arb_round, min_round
from repro.errors import ParameterError
from repro.primitives.atomics import encode_pair
from repro.runtime.context import current_context

if TYPE_CHECKING:
    from repro.decomp.base import DecompState
    from repro.engine.core import TraversalEngine

__all__ = [
    "TiebreakPolicy",
    "ArbTiebreak",
    "MinTiebreak",
    "TIEBREAK_POLICIES",
    "register_tiebreak_policy",
]


class TiebreakPolicy:
    """How concurrent claims on one unvisited vertex are resolved.

    Subclasses implement :meth:`push_round` (one write-based round over
    the state's frontier, returning the next frontier) and may override
    :meth:`setup` to allocate per-run auxiliary state.  One policy
    instance serves exactly one engine run.
    """

    #: Registry key and display name.
    name: str = "?"

    def setup(self, state: "DecompState") -> None:
        """Allocate per-run auxiliary state (charged to ``init``)."""

    def push_round(
        self, state: "DecompState", engine: "TraversalEngine"
    ) -> np.ndarray:
        """Run one write-based round; return the next frontier."""
        raise NotImplementedError


class ArbTiebreak(TiebreakPolicy):
    """Arbitrary tie-breaking (Algorithm 3): a bare CAS race.

    One pass over the frontier's edges per round and one machine word
    of state per vertex — the paper's key engineering contribution.
    """

    name = "arb"

    def push_round(
        self, state: "DecompState", engine: "TraversalEngine"
    ) -> np.ndarray:
        label = engine.direction.sparse_phase or "bfsMain"
        with current_context().tracker.phase(label):
            return arb_round(state)


class MinTiebreak(TiebreakPolicy):
    """writeMin tie-breaking (Algorithm 2): minimum delta' wins.

    Owns the per-vertex merged (delta', center) writeMin cell and runs
    the two synchronized phases (``bfsPhase1`` / ``bfsPhase2``) the
    rule requires — the cost Decomp-Arb removes.
    """

    name = "min"

    def __init__(self) -> None:
        self.pair: np.ndarray = np.zeros(0, dtype=np.int64)
        self._checked = False

    def setup(self, state: "DecompState") -> None:
        tracker = current_context().tracker
        with tracker.phase("init"):
            self.pair = np.full(state.n, _PAIR_INF, dtype=np.int64)
            tracker.add("alloc", work=float(state.n), depth=1.0)
        if getattr(state.workspace, "trusted", False):
            # Prove the whole (delta', center) domain encodable once, so
            # the per-round encode_pair range scans can be skipped (the
            # per-round keys are gathers out of exactly this domain).
            encode_pair(
                state.schedule.frac,
                np.arange(state.n, dtype=np.int64),
                check=True,
            )
            self._checked = True

    def push_round(
        self, state: "DecompState", engine: "TraversalEngine"
    ) -> np.ndarray:
        # Phase labels are the rule's own (bfsPhase1/bfsPhase2, inside
        # the kernel); the direction policy's sparse label is unused.
        return min_round(state, self.pair, trusted_keys=self._checked)


#: Name -> policy class; the decomposition facade and the property
#: tests enumerate this.
TIEBREAK_POLICIES: Dict[str, Type[TiebreakPolicy]] = {
    ArbTiebreak.name: ArbTiebreak,
    MinTiebreak.name: MinTiebreak,
}


def register_tiebreak_policy(cls: Type[TiebreakPolicy]) -> Type[TiebreakPolicy]:
    """Register a custom :class:`TiebreakPolicy` under ``cls.name``.

    Usable as a class decorator; raises on name collisions so a custom
    policy cannot silently shadow a built-in rule.
    """
    name = getattr(cls, "name", None)
    if not name or name == "?":
        raise ParameterError("tie-break policy must define a class-level name")
    if name in TIEBREAK_POLICIES and TIEBREAK_POLICIES[name] is not cls:
        raise ParameterError(f"tie-break policy {name!r} already registered")
    TIEBREAK_POLICIES[name] = cls
    return cls
