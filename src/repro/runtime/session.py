"""Session layer: load a graph once, run many, answer queries cheaply.

The CLI, the fuzz oracle, the resilient runner and the benchmarks all
used to re-implement the same run choreography — pick a backend, build
a tracker, maybe arm a sanitizer or a fault plan, time the run, verify
the labeling.  :func:`execute_profiled` is that choreography written
once: it derives one :class:`~repro.runtime.context.ExecutionContext`
child carrying *all* of the run's ambient state and activates it around
exactly one algorithm execution.

:class:`Session` is the service-style facade on top (the ROADMAP
north star): it owns one graph, pools a
:class:`~repro.engine.workspace.Workspace` arena across runs (the fast
backend's steady-state zero-allocation property then holds across a
whole query *sequence*, not just within one run), and memoizes
labelings by ``(graph fingerprint, algorithm, seed, beta)`` so repeated
connectivity queries cost one dictionary lookup.  Sessions are
internally locked; *different* Session objects in different threads are
isolated by the ``contextvars`` carrier and never share trackers,
arenas or memo entries.

:class:`ConnectivityService` is the multi-graph registry facade: named
sessions built lazily from the experiment registry's graph suite.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.analysis.verify import verify_labeling
from repro.engine.backend import ExecutionBackend, resolve_backend
from repro.engine.workspace import make_workspace
from repro.experiments.harness import RunProfile
from repro.experiments.registry import build_graph, get_algorithm
from repro.graphs.csr import CSRGraph
from repro.pram.cost import CostTracker
from repro.pram.sanitizer import PramSanitizer
from repro.resilience.faults import FaultPlan
from repro.runtime.context import current_context

__all__ = ["execute_profiled", "Session", "ConnectivityService"]

#: The session default: the paper's headline algorithm.
DEFAULT_ALGORITHM = "decomp-arb-CC"
DEFAULT_BETA = 0.2


def execute_profiled(
    algorithm: str,
    graph: CSRGraph,
    *,
    graph_name: str = "?",
    verify: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    backend: Union[str, ExecutionBackend, None] = None,
    sanitize: bool = False,
    halt_on_race: bool = True,
    tracker: Optional[CostTracker] = None,
    workspace: object = None,
    workers: Optional[int] = None,
    **algorithm_kwargs: object,
) -> RunProfile:
    """Run *algorithm* once inside one derived execution context.

    The single entry point every runtime client goes through: builds a
    child of the current context carrying a fresh tracker (or the given
    one), the resolved *backend*, an optional sanitizer and an optional
    pooled *workspace*, activates it for exactly one algorithm
    execution, and returns the :class:`RunProfile`.  A *fault_plan* is
    armed inside the context (one call = one run against its sabotage
    budget).  *workers* binds the chunked backend's thread count for
    this run (``None`` inherits the ambient context's count).
    Verification happens outside the context so its costs never
    pollute the run's profile.
    """
    spec = get_algorithm(algorithm)
    overrides: Dict[str, object] = {
        "tracker": tracker if tracker is not None else CostTracker()
    }
    if backend is not None:
        overrides["backend"] = resolve_backend(backend)
    if workers is not None:
        overrides["workers"] = max(1, int(workers))
    if sanitize:
        overrides["sanitizer"] = PramSanitizer(halt_on_race=halt_on_race)
    if workspace is not None:
        overrides["workspace"] = workspace
    ctx = current_context().child(**overrides)
    tracer = ctx.tracer
    span = tracer.span("run", "run") if tracer.enabled else None
    if span is not None:
        span.set(
            algorithm=algorithm,
            graph=graph_name,
            backend=ctx.backend.name,
            workers=ctx.workers,
            faulted=fault_plan is not None,
        )
        # Phase windows recorded by the tracker flow to the tracer as
        # B/E events for the duration of this run; the previous
        # observer (normally None) is restored in the finally below so
        # a caller-supplied tracker is handed back unchanged.
        prev_observer = ctx.tracker.observer
        ctx.tracker.observer = tracer
    ctx.metrics.incr("runtime.runs")
    t0 = time.perf_counter()
    try:
        with ctx.activate():
            if fault_plan is not None:
                with fault_plan.activate():
                    result = spec.run(graph, **algorithm_kwargs)
            else:
                result = spec.run(graph, **algorithm_kwargs)
    finally:
        if span is not None:
            ctx.tracker.observer = prev_observer
            span.set(
                work=ctx.tracker.total_work(),
                depth=ctx.tracker.total_depth(),
            )
            span.close()
    wall = time.perf_counter() - t0
    if verify:
        verify_labeling(graph, result.labels)
    return RunProfile(
        algorithm=algorithm,
        graph_name=graph_name,
        result=result,
        tracker=ctx.tracker,
        wall_seconds=wall,
    )


class Session:
    """One loaded graph, many runs and queries, pooled resources.

    Parameters
    ----------
    graph:
        A :class:`CSRGraph`, or a registry graph name (built once at
        *scale*).
    algorithm / seed / beta:
        Defaults for :meth:`run`; each can be overridden per call.
    backend:
        The backend every run of this session binds to (default: the
        ambient context's backend at construction time).
    workers:
        Thread count for the chunked (``parallel``) backend; serial
        backends ignore it (default: the ambient context's count at
        construction time, mirroring *backend*).
    verify:
        Verify each fresh labeling before it enters the memo.
    """

    def __init__(
        self,
        graph: Union[CSRGraph, str],
        *,
        graph_name: Optional[str] = None,
        scale: str = "small",
        algorithm: str = DEFAULT_ALGORITHM,
        seed: int = 1,
        beta: float = DEFAULT_BETA,
        backend: Union[str, ExecutionBackend, None] = None,
        workers: Optional[int] = None,
        verify: bool = True,
    ) -> None:
        if isinstance(graph, str):
            graph_name = graph_name if graph_name is not None else graph
            graph = build_graph(graph, scale)
        self.graph = graph
        self.graph_name = graph_name if graph_name is not None else "?"
        self.algorithm = algorithm
        self.seed = seed
        self.beta = beta
        self.backend = (
            resolve_backend(backend)
            if backend is not None
            else current_context().backend
        )
        self.workers = (
            max(1, int(workers))
            if workers is not None
            else current_context().workers
        )
        self.verify = verify
        self.hits = 0
        self.misses = 0
        self._memo: Dict[Tuple[str, str, int, float], RunProfile] = {}
        self._pool: object = None
        self._pool_busy = False
        self._inflight: Dict[Tuple[str, str, int, float], threading.Event] = {}
        self._lock = threading.RLock()

    # -- resource pooling -------------------------------------------------

    def _ensure_pool(self) -> object:
        """The session's arena, grown to cover the current graph.

        Caller must hold ``self._lock``.
        """
        if not self.backend.use_workspace:
            return None
        n = self.graph.num_vertices
        if self._pool is None or getattr(self._pool, "num_vertices", 0) < n:
            self._pool = make_workspace(self.backend, n, self.workers)
        return self._pool

    def _claim_pool(self) -> object:
        """Claim the arena for one run (caller must :meth:`_release_pool`).

        Caller must hold ``self._lock``.  Returns ``None`` when another
        run already holds it — that run proceeds on a fresh per-run
        arena instead of waiting (compute never blocks on the pool).

        Machine-checked (``repro lint`` RL008): the typestate analysis
        proves every claim is paired with :meth:`_release_pool` on all
        CFG paths out of the claiming function, including exceptional
        ones — release must sit in a ``finally`` that covers the run.
        """
        if self._pool_busy:
            return None
        workspace = self._ensure_pool()
        if workspace is not None:
            self._pool_busy = True
        return workspace

    def _release_pool(self, workspace: object) -> None:
        """Return a claimed arena (caller must hold ``self._lock``)."""
        if workspace is not None and workspace is self._pool:
            self._pool_busy = False

    # -- running ----------------------------------------------------------

    def run(
        self,
        algorithm: Optional[str] = None,
        *,
        seed: Optional[int] = None,
        beta: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        **algorithm_kwargs: object,
    ) -> RunProfile:
        """Run (or recall) one labeling of the session's graph.

        Plain runs — no fault plan, no extra algorithm kwargs — are
        memoized by ``(graph fingerprint, algorithm, seed, beta)``;
        replacing the graph via :meth:`set_graph` changes the
        fingerprint and therefore misses naturally.

        The session lock guards only the bookkeeping (memo, pool claim,
        in-flight table) — the labeling itself computes *outside* the
        lock, so concurrent callers over different keys run truly in
        parallel.  Concurrent callers on the *same* key coalesce: one
        computes, the rest wait on a per-key event and return the memo
        entry (one hit each, exactly as if they had arrived later).
        """
        algorithm = algorithm if algorithm is not None else self.algorithm
        seed = seed if seed is not None else self.seed
        beta = beta if beta is not None else self.beta
        memoizable = fault_plan is None and not algorithm_kwargs
        kwargs = dict(algorithm_kwargs)
        if algorithm.startswith("decomp-"):
            kwargs.setdefault("beta", beta)
            kwargs.setdefault("seed", seed)
        metrics = current_context().metrics
        while True:
            wait_for: Optional[threading.Event] = None
            done: Optional[threading.Event] = None
            with self._lock:
                key = (self.graph.fingerprint(), algorithm, seed, beta)
                graph, graph_name = self.graph, self.graph_name
                if memoizable:
                    cached = self._memo.get(key)
                    if cached is not None:
                        self.hits += 1
                        metrics.incr("session.memo.hit")
                        return cached
                    wait_for = self._inflight.get(key)
                    if wait_for is None:
                        done = threading.Event()
                        self._inflight[key] = done
            if wait_for is not None:
                # Someone else is computing this key; when they finish
                # (or fail), re-check the memo — on failure this caller
                # becomes the next owner and retries the computation.
                metrics.incr("session.inflight.wait")
                wait_for.wait()
                continue
            # From this point on this caller owns the in-flight entry
            # for the key: EVERY exit — including a pool-claim failure
            # below — must clear it and set the event, or concurrent
            # waiters on the same key block forever.  Hence the claim
            # happens inside the try, not in the registration block.
            workspace: object = None
            try:
                with self._lock:
                    workspace = self._claim_pool()
                metrics.incr(
                    "session.pool.claimed"
                    if workspace is not None
                    else "session.pool.fresh"
                )
                profile = execute_profiled(
                    algorithm,
                    graph,
                    graph_name=graph_name,
                    verify=self.verify,
                    fault_plan=fault_plan,
                    backend=self.backend,
                    workspace=workspace,
                    workers=self.workers,
                    **kwargs,
                )
                with self._lock:
                    if memoizable:
                        self._memo[key] = profile
                        self.misses += 1
                if memoizable:
                    metrics.incr("session.memo.miss")
                return profile
            finally:
                with self._lock:
                    self._release_pool(workspace)
                    if done is not None:
                        self._inflight.pop(key, None)
                if done is not None:
                    done.set()

    def activate(self):
        """Activate a context bound to this session's backend and pool.

        For callers that drive algorithm code directly (the parity
        tests replaying golden captures through the session path)
        rather than through :meth:`run`.  Offers the pooled arena only
        when no :meth:`run` currently holds it.
        """
        with self._lock:
            workspace = None if self._pool_busy else self._ensure_pool()
        return current_context().child(
            backend=self.backend,
            workspace=workspace,
            workers=self.workers,
            seed=self.seed,
        ).activate()

    # -- graph management -------------------------------------------------

    def set_graph(
        self,
        graph: Union[CSRGraph, str],
        *,
        graph_name: Optional[str] = None,
        scale: str = "small",
    ) -> None:
        """Replace the session's graph (memo entries miss via fingerprint)."""
        if isinstance(graph, str):
            graph_name = graph_name if graph_name is not None else graph
            graph = build_graph(graph, scale)
        with self._lock:
            self.graph = graph
            if graph_name is not None:
                self.graph_name = graph_name

    # -- queries ----------------------------------------------------------

    def components(self, algorithm: Optional[str] = None) -> np.ndarray:
        """The component labeling (one label per vertex)."""
        return self.run(algorithm).result.labels

    def num_components(self, algorithm: Optional[str] = None) -> int:
        return self.run(algorithm).result.num_components

    def connected(
        self,
        u: Union[int, np.ndarray],
        v: Union[int, np.ndarray],
        algorithm: Optional[str] = None,
    ) -> Union[bool, np.ndarray]:
        """Whether *u* and *v* share a component (vectorizes over arrays)."""
        labels = self.components(algorithm)
        same = labels[np.asarray(u)] == labels[np.asarray(v)]
        return bool(same) if np.ndim(same) == 0 else same

    def component_sizes(self, algorithm: Optional[str] = None) -> Dict[int, int]:
        """``{component label: vertex count}`` for every component."""
        labels, counts = np.unique(self.components(algorithm), return_counts=True)
        return {int(lab): int(cnt) for lab, cnt in zip(labels, counts)}

    @property
    def stats(self) -> Dict[str, int]:
        """Memo effectiveness counters (fresh runs vs. recalled)."""
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session({self.graph_name!r}, algorithm={self.algorithm!r}, "
            f"backend={self.backend.name!r}, memo={len(self._memo)})"
        )


class ConnectivityService:
    """Named sessions over the experiment registry's graph suite.

    The long-running-service shape: one object, many graphs, each
    loaded at most once, each query answered from the graph's session
    (and therefore memoized).  Thread-safe: concurrent callers may
    open and query distinct graphs simultaneously.
    """

    def __init__(
        self,
        *,
        scale: str = "small",
        algorithm: str = DEFAULT_ALGORITHM,
        backend: Union[str, ExecutionBackend, None] = None,
        workers: Optional[int] = None,
        verify: bool = True,
    ) -> None:
        self.scale = scale
        self.algorithm = algorithm
        self.backend = backend
        self.workers = workers
        self.verify = verify
        self._sessions: Dict[str, Session] = {}
        self._lock = threading.Lock()

    def session(self, graph_name: str, **session_kwargs: object) -> Session:
        """The (lazily created) session for *graph_name*."""
        with self._lock:
            sess = self._sessions.get(graph_name)
            if sess is None:
                sess = Session(
                    graph_name,
                    scale=self.scale,
                    algorithm=self.algorithm,
                    backend=self.backend,
                    workers=self.workers,
                    verify=self.verify,
                    **session_kwargs,  # type: ignore[arg-type]
                )
                self._sessions[graph_name] = sess
            return sess

    def open(self, name: str, graph: CSRGraph, **session_kwargs: object) -> Session:
        """Register a session for an externally built graph."""
        sess = Session(
            graph,
            graph_name=name,
            algorithm=self.algorithm,
            backend=self.backend,
            workers=self.workers,
            verify=self.verify,
            **session_kwargs,  # type: ignore[arg-type]
        )
        with self._lock:
            self._sessions[name] = sess
        return sess

    def close(self, name: str) -> None:
        with self._lock:
            self._sessions.pop(name, None)

    def components(self, graph_name: str) -> np.ndarray:
        return self.session(graph_name).components()

    def connected(
        self, graph_name: str, u: Union[int, np.ndarray], v: Union[int, np.ndarray]
    ) -> Union[bool, np.ndarray]:
        return self.session(graph_name).connected(u, v)

    def component_sizes(self, graph_name: str) -> Dict[int, int]:
        return self.session(graph_name).component_sizes()

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._sessions))

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
