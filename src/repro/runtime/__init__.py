"""Explicit runtime: execution contexts and the session facade.

``repro.runtime.context`` is the foundation (imported by the legacy
accessor shims, so it stays dependency-light); ``repro.runtime.session``
pulls in the experiment registry and is loaded lazily so importing the
context layer never drags the full algorithm suite along.
"""

from repro.runtime.context import ExecutionContext, current_context, root_context

__all__ = [
    "ExecutionContext",
    "current_context",
    "root_context",
    "ConnectivityService",
    "Session",
    "execute_profiled",
]

_SESSION_EXPORTS = ("ConnectivityService", "Session", "execute_profiled")


def __getattr__(name: str) -> object:
    if name in _SESSION_EXPORTS:
        from repro.runtime import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
