"""The explicit execution context: one object instead of four globals.

Historically every run communicated with the kernels through four
separate module-global mutable stacks — the cost tracker
(``pram.cost``), the fault plan (``resilience.faults``), the race
sanitizer (``pram.sanitizer``) and the execution backend
(``engine.backend``).  That ambient-state pattern is exactly what the
reprolint pass polices *inside* kernels, and it makes concurrent
service-style execution (the ROADMAP north star) impossible: two
threads pushing onto one stack corrupt each other's accounting.

:class:`ExecutionContext` bundles all of that per-run state into one
immutable-by-convention record carried in a single
:data:`contextvars.ContextVar`.  ``contextvars`` gives every thread —
and every asyncio task — its own independent binding, so concurrent
:class:`~repro.runtime.session.Session` objects are isolated for free:
a tracker activated in one thread is invisible to every other.

The reading side is :func:`current_context`; kernels use it as::

    ctx = current_context()
    ctx.tracker.add("scan", work=float(n), depth=1.0)
    if ctx.fault_plan is not None: ...

The writing side is :meth:`ExecutionContext.activate` — the single
exception-safe push/pop in the whole package (a ``ContextVar`` token
reset in ``finally``).  The legacy context managers (``tracking``,
``sanitizing``, ``use_backend``, ``FaultPlan.activate``) are now thin
wrappers that derive a :meth:`child` context and activate it; the
legacy *accessors* (``current_tracker`` & co.) are deprecated shims
that read this contextvar and warn once per process.
"""

from __future__ import annotations

import contextlib
import threading
import warnings
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator, Optional, Set

import numpy as np

from repro.obs.metrics import NULL_METRICS, NullMetrics
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.pram.cost import _NULL, CostTracker

if TYPE_CHECKING:
    from repro.engine.backend import ExecutionBackend
    from repro.engine.workspace import NullWorkspace
    from repro.pram.sanitizer import PramSanitizer
    from repro.resilience.faults import FaultPlan

__all__ = [
    "ExecutionContext",
    "current_context",
    "root_context",
    "warn_deprecated_accessor",
]


def _default_backend() -> "ExecutionBackend":
    # Imported lazily so this module (the target of every accessor
    # shim) stays below the engine in the layering — the primitives
    # and graphs layers import it at module level.
    from repro.engine.backend import BACKENDS, DEFAULT_BACKEND_NAME

    return BACKENDS[DEFAULT_BACKEND_NAME]


@dataclass
class ExecutionContext:
    """Everything one run needs, bundled and thread-isolated.

    Attributes
    ----------
    tracker:
        The (work, depth) accumulator charges land in.  Defaults to the
        shared discard-everything null tracker, so uninstrumented code
        costs one no-op method call.
    backend:
        The :class:`~repro.engine.backend.ExecutionBackend` kernels
        consult for their execution strategy.
    fault_plan:
        The armed :class:`~repro.resilience.faults.FaultPlan`, or
        ``None`` (the common, free case).
    sanitizer:
        The active :class:`~repro.pram.sanitizer.PramSanitizer`, or
        ``None``.
    workspace:
        An optional pooled :class:`~repro.engine.workspace.Workspace`
        arena offered to the next run (see :meth:`acquire_workspace`).
    workers:
        Worker-thread count for the chunked (``parallel``) backend's
        persistent pool; the serial backends ignore it.  Clamped to at
        least 1.
    seed / rng:
        The context's seed and the generator derived from it; a
        :class:`~repro.runtime.session.Session` threads its seed here
        so host-side randomness is reproducible per context.
    tracer:
        The :mod:`repro.obs` span recorder.  Defaults to the shared
        no-op :data:`~repro.obs.tracer.NULL_TRACER`; instrumented code
        guards any bookkeeping behind ``tracer.enabled``.
    metrics:
        The :mod:`repro.obs` counter/histogram registry; defaults to
        the no-op :data:`~repro.obs.metrics.NULL_METRICS`.
    """

    tracker: CostTracker = field(default_factory=lambda: _NULL)
    backend: "ExecutionBackend" = field(default_factory=_default_backend)
    fault_plan: "Optional[FaultPlan]" = None
    sanitizer: "Optional[PramSanitizer]" = None
    workspace: "Optional[NullWorkspace]" = None
    workers: int = 1
    seed: int = 0
    rng: Optional[np.random.Generator] = None
    tracer: NullTracer = field(default_factory=lambda: NULL_TRACER)
    metrics: NullMetrics = field(default_factory=lambda: NULL_METRICS)

    def __post_init__(self) -> None:
        self.workers = max(1, int(self.workers))
        if self.rng is None:
            self.rng = np.random.default_rng(self.seed)

    # -- derivation --------------------------------------------------------

    def child(self, **overrides: object) -> "ExecutionContext":
        """A copy of this context with *overrides* replaced.

        The derived context shares every field it does not override
        (including the ``rng`` instance — override ``seed`` to get a
        fresh, reproducible stream).
        """
        if "seed" in overrides and "rng" not in overrides:
            overrides["rng"] = np.random.default_rng(int(overrides["seed"]))  # type: ignore[arg-type]
        return replace(self, **overrides)  # type: ignore[arg-type]

    # -- activation (the one push/pop in the package) ----------------------

    @contextlib.contextmanager
    def activate(self) -> Iterator["ExecutionContext"]:
        """Install this context for the ``with`` body.

        Exception-safe by construction: the ``ContextVar`` token is
        reset in ``finally``, so no failure path can leave a stale
        context installed — the bug class the old module-level
        push/pop stacks could not rule out.

        Machine-checked (``repro lint`` RL008): the typestate analysis
        proves the ``set``/``reset`` pair is balanced on every CFG
        path out of this method, exceptional paths included.
        """
        token = _CONTEXT.set(self)
        try:
            yield self
        finally:
            _CONTEXT.reset(token)

    # -- workspace pooling -------------------------------------------------

    def acquire_workspace(self, num_vertices: int) -> "NullWorkspace":
        """Claim the pooled arena, or build a fresh one.

        Claim-once semantics: the first state that asks takes the
        pooled workspace and the field is cleared, so nested states
        (contraction recursion) build their own arenas instead of
        aliasing buffers that are still live in their parent.  The
        :class:`~repro.runtime.session.Session` that owns the pool
        keeps its own reference and re-offers the arena to the next
        run.

        Machine-checked (``repro lint`` RL008): callers must bind the
        result and may claim at most once per function — a discarded
        or double ``acquire_workspace`` call is a lint violation.
        """
        ws = self.workspace
        if ws is not None and self.backend.use_workspace:
            self.workspace = None
            return ws
        from repro.engine.workspace import make_workspace

        return make_workspace(self.backend, num_vertices, self.workers)


#: The ambient default: null tracker, process-default backend, nothing
#: armed.  Created lazily (its backend field resolves through the
#: engine layer); ``set_default_backend`` (deprecated) mutates it.
_ROOT: Optional[ExecutionContext] = None
_ROOT_LOCK = threading.Lock()

_CONTEXT: ContextVar[Optional[ExecutionContext]] = ContextVar(
    "repro_execution_context", default=None
)


def current_context() -> ExecutionContext:
    """The innermost activated context, or the process root."""
    ctx = _CONTEXT.get()
    return ctx if ctx is not None else root_context()


def root_context() -> ExecutionContext:
    """The process-root context (the ``set_default_backend`` target)."""
    global _ROOT
    if _ROOT is None:
        with _ROOT_LOCK:
            if _ROOT is None:
                _ROOT = ExecutionContext()
    return _ROOT


# -- deprecation plumbing for the four legacy accessors -------------------

_WARNED: Set[str] = set()


def warn_deprecated_accessor(name: str, replacement: str) -> None:
    """Emit the accessor's :class:`DeprecationWarning` once per process."""
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name}() is deprecated; read repro.runtime.{replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_deprecation_warnings() -> None:
    """Re-arm the once-per-process warnings (test hook only)."""
    _WARNED.clear()
