"""Shared exception types for the ``repro`` package.

Keeping a small, explicit exception hierarchy lets callers distinguish
user errors (bad graph input, bad parameters) from internal invariant
violations without string-matching messages.

The operational errors carry structured fields (see
:class:`ConvergenceError` and :class:`VerificationError`) so the
resilience layer (:mod:`repro.resilience`) can log, classify and react
to failures programmatically; message-only construction remains
supported for backward compatibility.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphFormatError(ReproError):
    """Raised when an edge list / CSR structure is malformed.

    Examples: negative vertex ids, offsets array that is not monotone,
    an edge endpoint that is out of range for the declared vertex count.
    File readers attach the 1-based line number and the offending text
    where they are known (:attr:`line_number`, :attr:`line_text`).
    """

    def __init__(
        self,
        message: str,
        *,
        line_number: Optional[int] = None,
        line_text: Optional[str] = None,
    ) -> None:
        if line_number is not None:
            message = f"{message} (line {line_number}: {line_text!r})"
        super().__init__(message)
        self.line_number = line_number
        self.line_text = line_text


class ParameterError(ReproError, ValueError):
    """Raised when an algorithm parameter is outside its legal range.

    The decomposition parameter ``beta`` must lie in (0, 1) for
    Decomp-Min and (0, 1/2) is required for the linear-work guarantee of
    the arbitrary-tie-break variants; a non-positive thread count or a
    negative seed also raise this.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative algorithm exceeds its round budget.

    All fixed-point loops in this package (pointer jumping, label
    propagation, hash-table probing, the DECOMP BFS rounds and the
    outer decompose-contract iteration) carry explicit round limits far
    above their theoretical bounds; hitting one indicates a bug or
    injected fault rather than a hard input, so we fail loudly instead
    of spinning.

    Structured fields (``None`` when constructed message-only):

    - :attr:`algorithm` — name of the looping algorithm;
    - :attr:`rounds_used` — rounds executed when the budget tripped;
    - :attr:`budget` — the round budget that was exceeded.
    """

    def __init__(
        self,
        message: Optional[str] = None,
        *,
        algorithm: Optional[str] = None,
        rounds_used: Optional[int] = None,
        budget: Optional[int] = None,
    ) -> None:
        if message is None:
            message = (
                f"{algorithm or 'algorithm'} exceeded its round budget: "
                f"{rounds_used} rounds used, budget {budget}"
            )
        super().__init__(message)
        self.algorithm = algorithm
        self.rounds_used = rounds_used
        self.budget = budget


class VerificationError(ReproError):
    """Raised by :mod:`repro.analysis.verify` when a labeling is invalid.

    :attr:`reason` is a short machine-readable code (``"shape"``,
    ``"crossing-edge"``, ``"partition-mismatch"``, ...) the resilience
    layer records in its failure log; ``None`` for message-only
    construction.
    """

    def __init__(self, message: str = "", *, reason: Optional[str] = None) -> None:
        super().__init__(message)
        self.reason = reason


class CheckpointError(ReproError):
    """Raised when a sweep checkpoint file cannot be used.

    Examples: unreadable/corrupt JSON, a checkpoint format version this
    code does not understand, or resuming with sweep parameters that do
    not match the ones the checkpoint was recorded under.
    """


class FaultSpecError(ReproError, ValueError):
    """Raised when a fault-injection spec string cannot be parsed."""


class SanitizerError(ReproError):
    """Raised by :class:`repro.pram.sanitizer.PramSanitizer` on a race.

    A "race" here is any same-round access pattern outside the simulated
    CRCW machine's sanctioned disciplines: two non-atomic writes to one
    cell, a mutation of a registered shared array not covered by any
    recorded write set, or a CAS resolution that deviates from the
    deterministic first-occurrence schedule.  :attr:`report` carries the
    structured :class:`repro.pram.sanitizer.RaceReport`; ``None`` for
    message-only construction.
    """

    def __init__(self, message: str, *, report: Optional[object] = None) -> None:
        super().__init__(message)
        self.report = report


class LintConfigError(ReproError):
    """Raised when ``reprolint.toml`` cannot be used.

    Examples: unparseable TOML, an allowlist entry with an unknown rule
    id, or an entry missing its justification ``reason`` — the allowlist
    policy (docs/static_analysis.md) requires every suppression to say
    why it is legal.
    """


class ResilienceExhaustedError(ReproError):
    """Raised by :class:`repro.resilience.runner.ResilientRunner` when a
    cell keeps failing after every retry and every fallback algorithm.

    :attr:`failures` holds the per-attempt failure records (see
    :class:`repro.resilience.runner.FailureRecord`).
    """

    def __init__(self, message: str, *, failures: Optional[list] = None) -> None:
        super().__init__(message)
        self.failures = failures or []
