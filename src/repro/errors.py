"""Shared exception types for the ``repro`` package.

Keeping a small, explicit exception hierarchy lets callers distinguish
user errors (bad graph input, bad parameters) from internal invariant
violations without string-matching messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphFormatError(ReproError):
    """Raised when an edge list / CSR structure is malformed.

    Examples: negative vertex ids, offsets array that is not monotone,
    an edge endpoint that is out of range for the declared vertex count.
    """


class ParameterError(ReproError, ValueError):
    """Raised when an algorithm parameter is outside its legal range.

    The decomposition parameter ``beta`` must lie in (0, 1) for
    Decomp-Min and (0, 1/2) is required for the linear-work guarantee of
    the arbitrary-tie-break variants; a non-positive thread count or a
    negative seed also raise this.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative algorithm exceeds its round budget.

    All fixed-point loops in this package (pointer jumping, label
    propagation, hash-table probing) carry explicit round limits far
    above their theoretical bounds; hitting one indicates a bug rather
    than a hard input, so we fail loudly instead of spinning.
    """


class VerificationError(ReproError):
    """Raised by :mod:`repro.analysis.verify` when a labeling is invalid."""
