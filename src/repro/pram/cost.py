"""Work/depth cost accounting for the simulated CRCW PRAM.

The paper analyses its algorithms in the work-depth model: *work* is the
total number of operations across all processors and *depth* is the
length of the critical path (number of parallel time steps).  Our Python
implementations execute each level-synchronous ``parfor`` as one
vectorized NumPy pass, which matches the PRAM semantics exactly but
erases the machine-level parallelism.  To reproduce the paper's timing
experiments we therefore account work and depth *explicitly*: every
parallel primitive reports the cost it would incur on a CRCW PRAM to the
ambient :class:`CostTracker`, and :mod:`repro.pram.machine` later
converts the accumulated (work, depth) profile into simulated seconds on
a machine with ``p`` cores.

Costs are bucketed two ways simultaneously:

* by **phase** — the paper's per-phase breakdowns (Figures 5-7) use the
  labels ``init``, ``bfsPre``, ``bfsPhase1``, ``bfsPhase2``, ``bfsMain``,
  ``bfsSparse``, ``bfsDense``, ``filterEdges`` and ``contractGraph``;
  phases nest and the innermost label wins;
* by **kind** — the memory-access class of the operation (sequential
  scan, random gather/scatter, atomic, sort, hash probe, purely
  sequential code), because these have very different per-element costs
  on a real machine and the machine model assigns each kind its own
  calibrated constant.

The active tracker rides in the process-wide
:class:`~repro.runtime.context.ExecutionContext` (a ``contextvars``
binding), so concurrent sessions in different threads or tasks each
accumulate into their own tracker with no cross-talk.  :func:`tracking`
derives and activates a child context; :func:`current_tracker` is a
deprecated shim kept for downstream compatibility — new code reads
``current_context().tracker``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Protocol, Tuple

__all__ = [
    "CostKind",
    "CostTracker",
    "KINDS",
    "PhaseObserver",
    "SEQUENTIAL_KINDS",
    "current_tracker",
    "tracking",
]


class PhaseObserver(Protocol):
    """Anything that wants to see phase windows open and close.

    Structurally matched by :class:`repro.obs.tracer.NullTracer` (and
    thus by the active tracer) without this module importing the
    observability layer.  Observers are notified *outside* the cost
    accounting: they may record but never charge.
    """

    def phase_begin(self, label: str) -> None: ...

    def phase_end(self, label: str) -> None: ...

#: Recognised operation kinds. ``seq`` marks inherently sequential code
#: (e.g. the serial union-find baseline) whose work cannot be divided
#: among processors by the machine model.
KINDS: Tuple[str, ...] = (
    "scan",  # streaming, unit-stride memory traffic (prefix sums, packs)
    "gather",  # random reads (CSR neighbor lookups, C[w] loads)
    "scatter",  # random writes (frontier marking, relabeling)
    "atomic",  # CAS / writeMin traffic, contended cache lines
    "sort",  # per-element cost of the radix integer sort
    "hash",  # per-probe cost of the phase-concurrent hash table
    "alloc",  # array allocation/initialisation
    "seq",  # inherently sequential work (not divisible by p)
)

#: Kinds whose work the machine model must NOT divide by the core count.
SEQUENTIAL_KINDS: Tuple[str, ...] = ("seq",)

CostKind = str


@dataclass
class _Bucket:
    """Accumulated cost for one (phase, kind) cell."""

    work: float = 0.0
    depth: float = 0.0

    def add(self, work: float, depth: float) -> None:
        self.work += work
        self.depth += depth


@dataclass
class CostTracker:
    """Accumulates (work, depth) by phase and kind.

    Depth accounting follows the level-synchronous discipline used by
    every algorithm in this package: callers charge depth via
    :meth:`add` (for a primitive whose critical path is known, e.g.
    ``log n`` for a prefix sum) or :meth:`sync` (for an explicit
    barrier between phases of a BFS round).  Because all our parallel
    loops are executed one synchronous round at a time, simply *summing*
    charged depth yields the critical-path length of the whole run —
    there is never uncharged overlap to subtract.

    Instances are cheap; create one per experiment run and activate it
    with :func:`tracking`.
    """

    buckets: Dict[Tuple[str, str], _Bucket] = field(default_factory=dict)
    _phase_stack: List[str] = field(default_factory=list)
    #: Number of sync points charged; exposed for tests and diagnostics.
    sync_count: int = 0
    #: Optional :class:`PhaseObserver` (the run's tracer) notified when
    #: phase windows open/close.  Observational only — never charged.
    observer: Optional[PhaseObserver] = None

    # -- phase management -------------------------------------------------

    @property
    def phase_label(self) -> str:
        """The innermost active phase label (``"unphased"`` if none)."""
        return self._phase_stack[-1] if self._phase_stack else "unphased"

    @contextlib.contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Attribute costs recorded inside the ``with`` body to *label*."""
        self._phase_stack.append(label)
        if self.observer is not None:
            self.observer.phase_begin(label)
        try:
            yield
        finally:
            self._phase_stack.pop()
            if self.observer is not None:
                self.observer.phase_end(label)

    # -- recording --------------------------------------------------------

    def add(self, kind: CostKind, work: float, depth: float = 0.0) -> None:
        """Charge *work* element-operations of *kind* and *depth* steps.

        ``work`` is in units of elementary operations (one edge
        inspected, one element scanned); ``depth`` is in units of PRAM
        time steps along the critical path.
        """
        if kind not in KINDS:
            raise ValueError(f"unknown cost kind {kind!r}; expected one of {KINDS}")
        key = (self.phase_label, kind)
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = self.buckets[key] = _Bucket()
        bucket.add(work, depth)

    def sync(self, depth: float = 1.0) -> None:
        """Charge a synchronisation barrier of *depth* time steps.

        Barriers are attributed to the ``scan`` kind (they cost no work)
        under the current phase.
        """
        self.sync_count += 1
        self.add("scan", 0.0, depth)

    # -- aggregation ------------------------------------------------------

    def total_work(self) -> float:
        return sum(b.work for b in self.buckets.values())

    def total_depth(self) -> float:
        return sum(b.depth for b in self.buckets.values())

    def work_by_kind(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (_, kind), bucket in self.buckets.items():
            out[kind] = out.get(kind, 0.0) + bucket.work
        return out

    def depth_by_phase(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (phase, _), bucket in self.buckets.items():
            out[phase] = out.get(phase, 0.0) + bucket.depth
        return out

    def work_by_phase(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (phase, _), bucket in self.buckets.items():
            out[phase] = out.get(phase, 0.0) + bucket.work
        return out

    def phase_kind_work(self) -> Dict[str, Dict[str, float]]:
        """Nested ``{phase: {kind: work}}`` view, used by the machine model."""
        out: Dict[str, Dict[str, float]] = {}
        for (phase, kind), bucket in self.buckets.items():
            out.setdefault(phase, {})[kind] = (
                out.get(phase, {}).get(kind, 0.0) + bucket.work
            )
        return out

    def phase_kind_depth(self) -> Dict[str, Dict[str, float]]:
        """Nested ``{phase: {kind: depth}}`` view."""
        out: Dict[str, Dict[str, float]] = {}
        for (phase, kind), bucket in self.buckets.items():
            out.setdefault(phase, {})[kind] = (
                out.get(phase, {}).get(kind, 0.0) + bucket.depth
            )
        return out

    def merge(self, other: "CostTracker") -> None:
        """Fold *other*'s buckets into this tracker (phases preserved)."""
        for key, bucket in other.buckets.items():
            mine = self.buckets.get(key)
            if mine is None:
                mine = self.buckets[key] = _Bucket()
            mine.add(bucket.work, bucket.depth)
        self.sync_count += other.sync_count

    def snapshot(self) -> Dict[Tuple[str, str], Tuple[float, float]]:
        """Immutable copy of the bucket contents, for diffing in tests."""
        return {k: (b.work, b.depth) for k, b in self.buckets.items()}

    def clear(self) -> None:
        self.buckets.clear()
        self.sync_count = 0


class _NullTracker(CostTracker):
    """Tracker that discards everything — active when nothing else is.

    Using a do-nothing subclass (rather than ``if tracker is not None``
    checks at every call site) keeps primitive code branch-free.
    """

    def add(  # noqa: D102
        self, kind: CostKind, work: float, depth: float = 0.0
    ) -> None:
        if kind not in KINDS:  # keep the validation so bugs surface in tests
            raise ValueError(f"unknown cost kind {kind!r}; expected one of {KINDS}")

    def sync(self, depth: float = 1.0) -> None:  # noqa: D102
        pass


_NULL = _NullTracker()


def current_tracker() -> CostTracker:
    """Deprecated: the execution context's tracker.

    Shim kept for downstream compatibility; new code reads
    ``repro.runtime.current_context().tracker``.  Warns once per
    process.
    """
    from repro.runtime.context import current_context, warn_deprecated_accessor

    warn_deprecated_accessor(
        "repro.pram.cost.current_tracker", "current_context().tracker"
    )
    return current_context().tracker


@contextlib.contextmanager
def tracking(tracker: Optional[CostTracker] = None) -> Iterator[CostTracker]:
    """Activate *tracker* (a fresh one if ``None``) for the ``with`` body.

    Nesting is allowed; the innermost tracker receives the costs.  Use
    :meth:`CostTracker.merge` to roll a nested tracker into an outer
    one when sub-accounting is needed.  Implemented as a derived
    :class:`~repro.runtime.context.ExecutionContext` activation, so it
    is exception-safe and thread-isolated.
    """
    from repro.runtime.context import current_context

    tracker = tracker if tracker is not None else CostTracker()
    with current_context().child(tracker=tracker).activate():
        yield tracker
