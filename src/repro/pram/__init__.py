"""Simulated CRCW PRAM: work/depth accounting and a machine timing model.

This subpackage is the reproduction's substitute for the paper's
physical 40-core machine (see DESIGN.md §2 and §5).  Algorithms record
the work and depth they would incur on a CRCW PRAM into a
:class:`~repro.pram.cost.CostTracker`; a
:class:`~repro.pram.machine.MachineModel` then converts that profile
into simulated seconds at any core count, which is what the benchmark
harness reports for the paper's tables and figures.
"""

from repro.pram.cost import (
    KINDS,
    SEQUENTIAL_KINDS,
    CostTracker,
    current_tracker,
    tracking,
)
from repro.pram.machine import (
    PAPER_MACHINE,
    MachineModel,
    paper_thread_sweep,
    parse_thread_spec,
)
from repro.pram.sanitizer import (
    PramSanitizer,
    RaceReport,
    active_sanitizer,
    sanitizing,
)

__all__ = [
    "KINDS",
    "SEQUENTIAL_KINDS",
    "CostTracker",
    "current_tracker",
    "tracking",
    "PramSanitizer",
    "RaceReport",
    "active_sanitizer",
    "sanitizing",
    "MachineModel",
    "PAPER_MACHINE",
    "paper_thread_sweep",
    "parse_thread_spec",
]
