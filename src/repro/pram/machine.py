"""Machine model: convert a (work, depth) profile into simulated seconds.

The paper's experiments run on a 4-socket, 40-core (80 hyper-thread)
Intel E7-8870 machine.  We cannot run shared-memory fine-grained
parallel Python (GIL; and the grading container has a single core), so
this module *simulates* that machine: given the work/depth profile a
run accumulated in a :class:`~repro.pram.cost.CostTracker`, it applies
Brent's scheduling bound

    T_p  =  c_w · W / p_eff  +  c_d · D

refined in three ways that matter for reproducing the paper's curves:

1. **Per-kind work constants.**  A unit of streaming scan work is much
   cheaper on a real machine than a unit of random-gather or atomic
   work (cache behaviour); the paper's engineering sections are largely
   about trading one kind for another (e.g. the hybrid's read-based
   dense rounds replace atomics with streaming reads).  Each cost kind
   therefore has its own ns/op constant, calibrated so that the
   single-thread ordering of the implementations matches the paper's
   single-thread column of Table 2.

2. **Sequential kinds.**  Work recorded under a kind in
   :data:`~repro.pram.cost.SEQUENTIAL_KINDS` is on the critical path by
   definition (the serial union-find baseline) and is never divided by
   the core count.

3. **Hyper-threading.**  Two-way SMT does not double throughput; the
   paper's "(40h)" = 80 hyper-threads column behaves like roughly
   40·(1+ht_yield) cores.  We default ``ht_yield`` to 0.25, in the
   middle of the commonly reported 15-40 % SMT yield for memory-bound
   graph workloads.

Parallel overhead (the reason the paper's self-relative speedups are
18-39x rather than 80x) enters through the depth term: every barrier,
packing step and frontier round charges depth, and ``depth_cost_ns``
represents the per-step scheduling/synchronisation latency of the
runtime (Cilk's steal/join costs, in the paper's setting).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ParameterError
from repro.pram.cost import KINDS, SEQUENTIAL_KINDS, CostTracker

__all__ = [
    "MachineModel",
    "PAPER_MACHINE",
    "ThreadSpec",
    "paper_thread_sweep",
    "parse_thread_spec",
]

#: Default per-kind cost constants, in nanoseconds per unit of work.
#: Calibrated (see ``experiments/calibration.py``) so the 1-thread
#: relative ordering of the eight implementations matches Table 2.
DEFAULT_KIND_COST_NS: Dict[str, float] = {
    "scan": 1.5,
    "gather": 7.0,
    "scatter": 7.0,
    "atomic": 24.0,
    "sort": 7.0,
    "hash": 12.0,
    "alloc": 0.8,
    "seq": 7.0,
}

#: Memory-bandwidth ceilings: the maximum effective parallelism each
#: kind of work can exploit on the modeled machine.  The paper's
#: self-relative speedups top out at 18-39x on 80 hyper-threads because
#: graph workloads saturate the memory system long before they run out
#: of cores; random-access and atomic traffic saturates soonest.
DEFAULT_KIND_CAP: Dict[str, float] = {
    "scan": 44.0,
    "gather": 26.0,
    "scatter": 26.0,
    "atomic": 20.0,
    "sort": 26.0,
    "hash": 20.0,
    "alloc": 44.0,
    "seq": 1.0,  # unused: seq work is never divided
}

#: Default cost per unit of depth (one PRAM time step), in nanoseconds.
#:
#: Calibration note (DESIGN.md §5, EXPERIMENTS.md): work scales linearly
#: with the input but depth only polylogarithmically, so shrinking the
#: paper's 5e8-edge graphs to this reproduction's ~5e5-edge scale
#: inflates depth's *relative* weight by ~10^3.  The constant is chosen
#: so that the work/depth balance at reproduction scale mirrors the
#: paper's balance at paper scale — it is **not** a physical barrier
#: latency.  With 5 ns/step, the decomposition algorithms reproduce the
#: paper's 18-39x self-relative speedup band and the BFS-per-level
#: baselines still collapse on the line graph (their depth is ~n steps,
#: vastly above everyone else's polylog).
DEFAULT_DEPTH_COST_NS: float = 15.0

#: A thread specification: an int core count, or the string "40h"-style
#: marker meaning "that many cores with 2-way hyper-threading".
ThreadSpec = Union[int, str]


def parse_thread_spec(spec: ThreadSpec) -> Tuple[int, bool]:
    """Parse ``40`` -> (40, False), ``"40h"`` -> (40, True).

    Raises :class:`ParameterError` on malformed specs.
    """
    if isinstance(spec, bool):  # bool is an int subclass; reject explicitly
        raise ParameterError(f"invalid thread spec {spec!r}")
    if isinstance(spec, int):
        if spec < 1:
            raise ParameterError(f"thread count must be >= 1, got {spec}")
        return spec, False
    if isinstance(spec, str):
        s = spec.strip().lower()
        hyper = s.endswith("h")
        body = s[:-1] if hyper else s
        if not body.isdigit() or int(body) < 1:
            raise ParameterError(f"invalid thread spec {spec!r}")
        return int(body), hyper
    raise ParameterError(f"invalid thread spec {spec!r}")


def paper_thread_sweep() -> List[ThreadSpec]:
    """The x-axis of the paper's Figure 2: 1..40 cores plus 40h."""
    return [1, 2, 4, 8, 16, 24, 32, 40, "40h"]


@dataclass(frozen=True)
class MachineModel:
    """A simulated shared-memory machine with *threads* cores.

    Parameters
    ----------
    threads:
        Number of physical cores used.
    hyperthreaded:
        Whether two-way SMT is enabled (the paper's "(40h)" columns).
    ht_yield:
        Fractional extra throughput contributed by the second hardware
        thread per core (0.25 -> 40 cores with HT behave like 50).
    kind_cost_ns:
        Per-kind work constants; see :data:`DEFAULT_KIND_COST_NS`.
    depth_cost_ns:
        Cost of one depth unit (PRAM step), amortising the runtime's
        per-round overhead.  Charged at every thread count, including
        one: a level-synchronous algorithm pays its per-round fixed
        costs (frontier management, loop control) even sequentially —
        which is exactly why the paper's hybrid-BFS-CC gets *no*
        speedup on the line graph rather than starting cheap and
        scaling: its time is per-round overhead at any p.
    """

    threads: int = 1
    hyperthreaded: bool = False
    ht_yield: float = 0.25
    kind_cost_ns: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_KIND_COST_NS)
    )
    kind_cap: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_KIND_CAP)
    )
    depth_cost_ns: float = DEFAULT_DEPTH_COST_NS

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ParameterError(f"threads must be >= 1, got {self.threads}")
        if not 0.0 <= self.ht_yield <= 1.0:
            raise ParameterError(f"ht_yield must be in [0,1], got {self.ht_yield}")
        missing = [k for k in KINDS if k not in self.kind_cost_ns]
        if missing:
            raise ParameterError(f"kind_cost_ns missing kinds: {missing}")
        missing_caps = [k for k in KINDS if k not in self.kind_cap]
        if missing_caps:
            raise ParameterError(f"kind_cap missing kinds: {missing_caps}")

    # -- derived quantities ------------------------------------------------

    @property
    def effective_parallelism(self) -> float:
        """Core-equivalents available to divisible work."""
        p = float(self.threads)
        if self.hyperthreaded:
            p *= 1.0 + self.ht_yield
        return p

    @property
    def label(self) -> str:
        """Human-readable column label, matching the paper's convention."""
        return f"{self.threads}h" if self.hyperthreaded else str(self.threads)

    def with_threads(self, spec: ThreadSpec) -> "MachineModel":
        """A copy of this model at a different thread count."""
        threads, hyper = parse_thread_spec(spec)
        return replace(self, threads=threads, hyperthreaded=hyper)

    # -- timing ------------------------------------------------------------

    def _time_ns(
        self, work_by_kind: Mapping[str, float], depth: float
    ) -> float:
        p = self.effective_parallelism
        total = depth * self.depth_cost_ns
        for kind, work in work_by_kind.items():
            ns = work * float(self.kind_cost_ns[kind])
            if kind in SEQUENTIAL_KINDS:
                total += ns
            else:
                # Divisible work parallelizes up to the smaller of the
                # core count and the kind's bandwidth ceiling.
                total += ns / min(p, float(self.kind_cap[kind]))
        return total

    def time_seconds(self, tracker: CostTracker) -> float:
        """Simulated wall-clock seconds for the profile in *tracker*."""
        return self._time_ns(tracker.work_by_kind(), tracker.total_depth()) * 1e-9

    def phase_seconds(self, tracker: CostTracker) -> Dict[str, float]:
        """Per-phase simulated seconds (the paper's Figures 5-7)."""
        pk_work = tracker.phase_kind_work()
        pk_depth = tracker.phase_kind_depth()
        phases = set(pk_work) | set(pk_depth)
        out: Dict[str, float] = {}
        for phase in phases:
            work = pk_work.get(phase, {})
            depth = sum(pk_depth.get(phase, {}).values())
            out[phase] = self._time_ns(work, depth) * 1e-9
        return out

    def speedup_over(self, tracker: CostTracker, baseline: "MachineModel") -> float:
        """Speedup of this machine over *baseline* for the same profile."""
        mine = self.time_seconds(tracker)
        theirs = baseline.time_seconds(tracker)
        if mine <= 0.0:
            return math.inf
        return theirs / mine

    def self_relative_speedup(self, tracker: CostTracker) -> float:
        """Speedup over the same model restricted to one thread."""
        return self.with_threads(1).time_seconds(tracker) / max(
            self.time_seconds(tracker), 1e-30
        )

    def sweep_seconds(
        self, tracker: CostTracker, specs: Optional[Sequence[ThreadSpec]] = None
    ) -> Dict[str, float]:
        """Simulated seconds across a thread sweep (Figure 2 series)."""
        specs = list(specs) if specs is not None else paper_thread_sweep()
        out: Dict[str, float] = {}
        for spec in specs:
            model = self.with_threads(spec)
            out[model.label] = model.time_seconds(tracker)
        return out


#: The paper's evaluation machine: 40 cores, 2-way hyper-threading.
PAPER_MACHINE = MachineModel(threads=40, hyperthreaded=True)
