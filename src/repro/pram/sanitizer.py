"""Runtime race sanitizer for the simulated CRCW PRAM.

The engine's correctness argument leans on three write disciplines that
nothing at runtime used to enforce:

1. every non-atomic write into shared per-vertex state lands on a set
   of indices some kernel explicitly *recorded* (claim-once scatters);
2. concurrent claims on one cell resolve only through the atomics
   (:func:`~repro.primitives.atomics.write_min` /
   :func:`~repro.primitives.atomics.first_winner`), and the CAS races
   resolve to the deterministic first-occurrence schedule the golden
   fixtures pin;
3. within one level-synchronous round, no cell receives two non-atomic
   writes, and no cell is hit by both an atomic and a non-atomic write.

:class:`PramSanitizer` checks all three while a run executes.  The
engine opens a *round window* around every level-synchronous round and
registers the state's shared arrays (``shared_arrays``); the atomics
report their access sets through the seams in
:mod:`repro.primitives.atomics`; the kernels' sanctioned scatters are
the winner sets :func:`~repro.primitives.atomics.first_winner` returns
(distinct by construction) plus the explicitly recorded seeding writes.
At the end of each round the sanitizer diffs a shadow snapshot of every
registered array against the recorded access sets: any mutation nobody
sanctioned is a race.

This is how an injected fault surfaces as a *detected* race instead of
a silently wrong labeling: ``label_corrupt`` mutates ``C`` outside any
recorded write set (shadow diff), ``cas_flip`` moves a CAS resolution
off the first-occurrence schedule (:meth:`PramSanitizer.check_cas`).
``drop_frontier`` / ``shift_perturb`` are *lost-update* faults, not
memory races, and are out of scope by design — the verifier, not the
sanitizer, owns those.

Activation mirrors the cost tracker and fault plan: the armed
sanitizer rides in the :class:`~repro.runtime.context.ExecutionContext`
(``current_context().sanitizer`` at the seams), and the
:func:`sanitizing` context manager activates a derived context (the
CLI's global ``--sanitize`` flag wraps every command in one).  When no
sanitizer is active every seam is a cheap ``None`` check.
:func:`active_sanitizer` survives as a deprecated shim.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import SanitizerError

__all__ = [
    "RaceReport",
    "PramSanitizer",
    "active_sanitizer",
    "current_sanitizer",
    "sanitizing",
]

#: How many offending indices a report keeps (enough to debug, small
#: enough to print).
_REPORT_SAMPLE = 8


@dataclass
class RaceReport:
    """One detected violation of the simulated machine's write rules.

    Attributes
    ----------
    kind:
        ``"write-conflict"`` (two non-atomic writes to one cell in one
        round), ``"atomic-mix"`` (atomic and non-atomic writes to one
        cell in one round), ``"unsanctioned-write"`` (a registered
        shared array changed at indices no kernel recorded), or
        ``"cas-order"`` (a CAS race resolved off the deterministic
        first-occurrence schedule).
    array:
        Registered name of the array involved (``"<cas>"`` for
        schedule violations, which are not tied to a registered array).
    round_index:
        The engine round the violation happened in, or ``None`` when it
        was observed outside any round window.
    indices:
        A sample (at most 8) of the offending cell indices.
    detail:
        Human-readable elaboration.
    """

    kind: str
    array: str
    round_index: Optional[int]
    indices: List[int] = field(default_factory=list)
    detail: str = ""

    def __str__(self) -> str:
        where = (
            "outside rounds"
            if self.round_index is None
            else f"round {self.round_index}"
        )
        idx = ",".join(str(i) for i in self.indices)
        msg = f"{self.kind} on {self.array!r} ({where}) at indices [{idx}]"
        if self.detail:
            msg = f"{msg}: {self.detail}"
        return msg


class _RunFrame:
    """Per-engine-run sanitizer state (frames stack for nested runs)."""

    __slots__ = (
        "arrays",
        "round_index",
        "snapshots",
        "writes",
        "atomics",
        "sanctioned",
    )

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        #: id(array) -> (name, array) for the registered shared arrays.
        self.arrays: Dict[int, Tuple[str, np.ndarray]] = {
            id(arr): (name, arr) for name, arr in arrays.items()
        }
        self.round_index: Optional[int] = None
        #: name -> pre-round copy of each registered array.
        self.snapshots: Dict[str, np.ndarray] = {}
        #: id(array) -> recorded non-atomic write index chunks this round.
        self.writes: Dict[int, List[np.ndarray]] = {}
        #: id(array) -> recorded atomic (writeMin) index chunks this round.
        self.atomics: Dict[int, List[np.ndarray]] = {}
        #: Winner sets sanctioned for this round (array-agnostic: a
        #: first_winner claim may legally fan out over several of the
        #: state's arrays — parents, distances, visited).
        self.sanctioned: List[np.ndarray] = []


class PramSanitizer:
    """Records per-round access sets and flags write-discipline races.

    Parameters
    ----------
    halt_on_race:
        Raise :class:`~repro.errors.SanitizerError` at the first race
        (the CLI's mode).  ``False`` accumulates into :attr:`races`
        instead — what the fault-matrix tests use to assert a specific
        injected fault was classified correctly.
    """

    def __init__(self, *, halt_on_race: bool = True) -> None:
        self.halt_on_race = halt_on_race
        self.races: List[RaceReport] = []
        self.runs_monitored = 0
        self.rounds_checked = 0
        self.cas_checked = 0
        self.writes_recorded = 0
        self.atomics_recorded = 0
        self.combines_recorded = 0
        self._frames: List[_RunFrame] = []

    # -- engine seam (TraversalEngine.run) ---------------------------------

    def open_run(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Begin monitoring one engine run over *arrays* (name -> array)."""
        self._frames.append(_RunFrame(arrays))
        self.runs_monitored += 1

    def close_run(self) -> None:
        """End the innermost run's monitoring."""
        if self._frames:
            self._frames.pop()

    def open_round(self, round_index: int) -> None:
        """Open a round window: snapshot every registered array.

        Must run *before* the state's ``begin_round`` so that seeding
        writes (and any fault injected at the round boundary) fall
        inside the window.
        """
        frame = self._current_frame()
        if frame is None:
            return
        frame.round_index = round_index
        frame.writes = {}
        frame.atomics = {}
        frame.sanctioned = []
        frame.snapshots = {
            name: arr.copy() for name, arr in frame.arrays.values()
        }

    def close_round(self) -> None:
        """Diff the round's snapshots against the recorded access sets."""
        frame = self._current_frame()
        if frame is None or frame.round_index is None:
            return
        self.rounds_checked += 1
        round_index = frame.round_index
        frame.round_index = None

        # Rule 3a: same-round duplicate non-atomic writes to one cell.
        for aid, chunks in frame.writes.items():
            written = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            if written.size > 1:
                uniq, counts = np.unique(written, return_counts=True)
                dup = uniq[counts > 1]
                if dup.size:
                    self._report(
                        "write-conflict",
                        self._array_name(frame, aid),
                        round_index,
                        dup,
                        "two non-atomic writes hit the same cell in one round",
                    )

        # Rule 3b: one cell hit by both an atomic and a non-atomic write.
        for aid, chunks in frame.writes.items():
            atomic_chunks = frame.atomics.get(aid)
            if not atomic_chunks:
                continue
            written = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            atomic = (
                np.concatenate(atomic_chunks)
                if len(atomic_chunks) > 1
                else atomic_chunks[0]
            )
            mixed = written[np.isin(written, atomic)]
            if mixed.size:
                self._report(
                    "atomic-mix",
                    self._array_name(frame, aid),
                    round_index,
                    mixed,
                    "cell received both an atomic and a non-atomic write",
                )

        # Rules 1-2: every observed mutation must be recorded/sanctioned.
        sanctioned_global = (
            np.concatenate(frame.sanctioned)
            if frame.sanctioned
            else np.zeros(0, dtype=np.int64)
        )
        for aid, (name, arr) in frame.arrays.items():
            snap = frame.snapshots.get(name)
            if snap is None or snap.shape != arr.shape:
                continue
            changed = np.flatnonzero(snap != arr)
            if changed.size == 0:
                continue
            allowed_chunks = [sanctioned_global]
            allowed_chunks.extend(frame.writes.get(aid, ()))
            allowed_chunks.extend(frame.atomics.get(aid, ()))
            allowed = np.concatenate(allowed_chunks)
            bad = changed[~np.isin(changed, allowed)]
            if bad.size:
                self._report(
                    "unsanctioned-write",
                    name,
                    round_index,
                    bad,
                    "shared array mutated outside every recorded write set",
                )
        frame.snapshots = {}

    # -- primitive seams (repro.primitives.atomics, kernels) ---------------

    def record_write(self, arr: np.ndarray, idx: np.ndarray) -> None:
        """A kernel declares a non-atomic scatter ``arr[idx] = ...``."""
        frame = self._current_frame()
        if frame is None or frame.round_index is None:
            return
        self.writes_recorded += 1
        frame.writes.setdefault(id(arr), []).append(
            np.asarray(idx, dtype=np.int64).ravel()
        )

    def record_atomic(self, arr: np.ndarray, idx: np.ndarray) -> None:
        """An atomic batch (writeMin) touched ``arr`` at ``idx``."""
        frame = self._current_frame()
        if frame is None or frame.round_index is None:
            return
        self.atomics_recorded += 1
        frame.atomics.setdefault(id(arr), []).append(
            np.asarray(idx, dtype=np.int64).ravel()
        )

    def record_combine(self, kind: str, shards: int) -> None:
        """A chunked kernel merged *shards* per-worker partials.

        The parallel backend's contract: worker threads never mutate a
        registered shared array — they fill private per-worker shards,
        and the *calling* thread merges them sequentially before the
        kernel returns.  The end-of-round snapshot diff
        (:meth:`close_round`) therefore always runs strictly after the
        combine barrier; this counter records that the barrier was
        crossed so a sanitized parallel run can assert its sharded
        merges were actually covered.
        """
        self.combines_recorded += 1

    def sanction(self, dests: np.ndarray) -> None:
        """A resolved CAS race entitles its winners to claim-once writes.

        ``first_winner`` returns distinct destinations, so sanctioned
        sets cannot self-conflict; they are array-agnostic because one
        claim legally writes several state arrays (parents, distances,
        visited) at the same winner indices.
        """
        self.cas_checked += 1
        frame = self._current_frame()
        if frame is None or frame.round_index is None:
            return
        frame.sanctioned.append(np.asarray(dests, dtype=np.int64).ravel())

    def check_cas(
        self,
        idx: np.ndarray,
        canonical_positions: np.ndarray,
        canonical_dests: np.ndarray,
        positions: np.ndarray,
        dests: np.ndarray,
    ) -> None:
        """Verify a CAS resolution against the canonical schedule.

        The simulated machine resolves every arbitrary-CRCW race to the
        deterministic first-occurrence-per-destination schedule (both
        backends, pinned element-for-element by the parity tests).  Any
        deviation — which is exactly what a ``cas_flip`` fault injects —
        is a nondeterministic write ordering, i.e. a race.  Unlike the
        round-window checks this fires wherever the atomics run, rounds
        or not (contraction's hash table races too).
        """
        frame = self._current_frame()
        round_index = frame.round_index if frame is not None else None
        if (
            positions.shape == canonical_positions.shape
            and dests.shape == canonical_dests.shape
            and np.array_equal(dests, canonical_dests)
            and np.array_equal(positions, canonical_positions)
        ):
            return
        if np.array_equal(dests, canonical_dests):
            moved = canonical_dests[positions != canonical_positions]
            detail = "CAS winners deviate from the first-occurrence schedule"
        else:
            moved = np.setdiff1d(dests, canonical_dests)
            if moved.size == 0:
                moved = np.setdiff1d(canonical_dests, dests)
            detail = "CAS destination set changed during resolution"
        self._report("cas-order", "<cas>", round_index, moved, detail)

    # -- summary -----------------------------------------------------------

    def summary(self) -> str:
        """One-line human summary (the CLI prints this after a run)."""
        msg = (
            f"sanitizer: {len(self.races)} race(s) in "
            f"{self.rounds_checked} round(s) across {self.runs_monitored} "
            f"run(s); {self.cas_checked} CAS batches checked"
        )
        if self.combines_recorded:
            msg += f", {self.combines_recorded} sharded combine(s)"
        return msg

    # -- internals ---------------------------------------------------------

    def _current_frame(self) -> Optional[_RunFrame]:
        return self._frames[-1] if self._frames else None

    @staticmethod
    def _array_name(frame: _RunFrame, aid: int) -> str:
        entry = frame.arrays.get(aid)
        return entry[0] if entry is not None else "<unregistered>"

    def _report(
        self,
        kind: str,
        array: str,
        round_index: Optional[int],
        indices: np.ndarray,
        detail: str,
    ) -> None:
        report = RaceReport(
            kind=kind,
            array=array,
            round_index=round_index,
            indices=[int(i) for i in np.asarray(indices).ravel()[:_REPORT_SAMPLE]],
            detail=detail,
        )
        self.races.append(report)
        if self.halt_on_race:
            raise SanitizerError(str(report), report=report)


def active_sanitizer() -> Optional[PramSanitizer]:
    """Deprecated: the execution context's sanitizer (or ``None``).

    Shim kept for downstream compatibility; new code reads
    ``repro.runtime.current_context().sanitizer``.  Warns once per
    process.
    """
    from repro.runtime.context import current_context, warn_deprecated_accessor

    warn_deprecated_accessor(
        "repro.pram.sanitizer.active_sanitizer", "current_context().sanitizer"
    )
    return current_context().sanitizer


def current_sanitizer() -> Optional[PramSanitizer]:
    """Deprecated alias of :func:`active_sanitizer` (same shim)."""
    from repro.runtime.context import current_context, warn_deprecated_accessor

    warn_deprecated_accessor(
        "repro.pram.sanitizer.current_sanitizer", "current_context().sanitizer"
    )
    return current_context().sanitizer


@contextmanager
def sanitizing(*, halt_on_race: bool = True) -> Iterator[PramSanitizer]:
    """Activate a fresh :class:`PramSanitizer` for the enclosed block.

    Implemented as a derived execution-context activation, so the
    arming is exception-safe and scoped to the calling thread/task.
    """
    from repro.runtime.context import current_context

    sanitizer = PramSanitizer(halt_on_race=halt_on_race)
    with current_context().child(sanitizer=sanitizer).activate():
        yield sanitizer
