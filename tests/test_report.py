"""Tests for the one-shot reproduction report."""

import json

import pytest

from repro.cli import main
from repro.experiments.report import generate_report


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("report")
        written = generate_report(outdir, scale="tiny", beta=0.2, seed=1)
        return outdir, written

    def test_all_artifacts_written(self, report):
        _, written = report
        expected = {
            "table1", "table2", "figure2", "figure3", "figure4",
            "figure5", "figure6", "figure7", "figure8", "summary",
        }
        assert expected <= set(written)

    def test_table2_json_shape(self, report):
        outdir, _ = report
        data = json.loads((outdir / "table2.json").read_text())
        assert "decomp-arb-CC" in data
        assert "line" in data["decomp-arb-CC"]
        assert data["decomp-arb-CC"]["line"]["1"] > 0

    def test_table2_csv_exists(self, report):
        outdir, _ = report
        text = (outdir / "table2.csv").read_text()
        assert text.startswith("algorithm,graph,threads,seconds")

    def test_figure2_per_graph_csvs(self, report):
        outdir, _ = report
        assert (outdir / "figure2_line.csv").exists()
        assert (outdir / "figure2_random.csv").exists()

    def test_figure4_series_decrease(self, report):
        outdir, _ = report
        data = json.loads((outdir / "figure4.json").read_text())
        for graph, by_beta in data.items():
            for beta, series in by_beta.items():
                assert series == sorted(series, reverse=True), (graph, beta)

    def test_summary_markdown(self, report):
        outdir, _ = report
        text = (outdir / "summary.md").read_text()
        assert "# Reproduction report" in text
        assert "self-relative speedup" in text
        assert "Table 2" in text

    def test_cli_report_command(self, tmp_path, capsys):
        code = main(["--scale", "tiny", "report", str(tmp_path / "out")])
        assert code == 0
        out = capsys.readouterr().out
        assert "summary" in out
        assert (tmp_path / "out" / "summary.md").exists()
