"""Units for the interprocedural lint framework (cfg/callgraph/dataflow).

These pin the framework semantics RL006-RL009 rely on:

* CFG construction — branch joins, loop back edges, ``with`` bodies,
  try/finally routing (a ``return`` inside ``try`` flows through the
  ``finally``), exceptional edges into handlers and out of the
  function, unreachable-tail pruning;
* call-graph resolution — including the backend-registry pattern
  (a call through an unknown receiver resolves to *every* analyzed
  implementation, the way the workspace seam dispatches);
* taint summaries — fixpoint termination on cyclic call graphs and
  taint surviving a trip through a helper's return value;
* the generic forward solver — exceptional edges propagate
  ``join(in, out)``, so a raise mid-statement is modelled soundly.
"""

from __future__ import annotations

import ast
from typing import Dict

from repro.analysis.reprolint import (
    SEED,
    Program,
    TaintAnalysis,
    build_cfg,
    run_forward,
)


def fn(source: str) -> ast.FunctionDef:
    node = ast.parse(source).body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


def cfg_lines(cfg) -> Dict[int, set]:
    """source line -> set of node ids (synthetic nodes map to 0)."""
    out: Dict[int, set] = {}
    for node in cfg.nodes.values():
        out.setdefault(node.line, set()).add(node.nid)
    return out


class TestCFGConstruction:
    def test_straight_line_chain(self):
        cfg = build_cfg(fn("def f():\n    a = 1\n    b = 2\n    return b\n"))
        exits = cfg.exit_preds()
        # Only the return reaches the exit, and on a normal edge.
        assert [(n.line, via) for n, via in exits] == [(4, False)]

    def test_if_join(self):
        cfg = build_cfg(
            fn(
                "def f(x):\n"
                "    if x:\n"
                "        y = 1\n"
                "    else:\n"
                "        y = 2\n"
                "    return y\n"
            )
        )
        preds = cfg.preds()
        lines = cfg_lines(cfg)
        (ret,) = lines[6]
        # Both branch arms flow into the return.
        feeding = {cfg.nodes[p].line for p in preds[ret]}
        assert {3, 5} <= feeding

    def test_while_back_edge(self):
        cfg = build_cfg(
            fn("def f(x):\n    while x:\n        x -= 1\n    return x\n")
        )
        lines = cfg_lines(cfg)
        (header,) = lines[2]
        (body,) = lines[3]
        assert header in cfg.nodes[body].succs  # back edge

    def test_with_body_is_linked(self):
        cfg = build_cfg(
            fn(
                "def f(cm):\n"
                "    with cm() as h:\n"
                "        use(h)\n"
                "    return 1\n"
            )
        )
        lines = cfg_lines(cfg)
        (w,) = lines[2]
        (body,) = lines[3]
        assert body in cfg.nodes[w].succs

    def test_comprehension_is_one_node(self):
        cfg = build_cfg(
            fn(
                "def f(spans):\n"
                "    tasks = [w for w in spans if w]\n"
                "    return tasks\n"
            )
        )
        lines = cfg_lines(cfg)
        assert len(lines[2]) == 1  # the comprehension stays one statement

    def test_return_routes_through_finally(self):
        cfg = build_cfg(
            fn(
                "def f(r):\n"
                "    t = r.set(1)\n"
                "    try:\n"
                "        return work()\n"
                "    finally:\n"
                "        r.reset(t)\n"
            )
        )
        # No normal exit edge comes from the return itself: it must
        # pass through the finally body first.
        normal_exit_lines = {n.line for n, via in cfg.exit_preds() if not via}
        assert 4 not in normal_exit_lines
        assert 6 in normal_exit_lines

    def test_raising_call_reaches_handler(self):
        cfg = build_cfg(
            fn(
                "def f():\n"
                "    try:\n"
                "        risky()\n"
                "    except ValueError:\n"
                "        cleanup()\n"
                "    return 1\n"
            )
        )
        lines = cfg_lines(cfg)
        (risky,) = lines[3]
        (cleanup,) = lines[5]
        # risky() has an exceptional path leading (via the handler
        # head) to the cleanup statement.
        reach = set()
        work = list(cfg.nodes[risky].exc_succs)
        while work:
            nid = work.pop()
            if nid in reach:
                continue
            reach.add(nid)
            work.extend(cfg.nodes[nid].succs)
        assert cleanup in reach

    def test_unhandled_raise_is_exceptional_exit(self):
        cfg = build_cfg(fn("def f():\n    raise ValueError('no')\n"))
        assert [(n.line, via) for n, via in cfg.exit_preds()] == [(2, True)]

    def test_unreachable_tail_pruned(self):
        cfg = build_cfg(
            fn("def f():\n    return 1\n    dead()\n")
        )
        assert 3 not in cfg_lines(cfg)


class TestCallGraphResolution:
    SOURCE = (
        "class Null:\n"
        "    def alloc(self, n):\n"
        "        return fresh(n)\n"
        "class Fast(Null):\n"
        "    def alloc(self, n):\n"
        "        return self.arena(n)\n"
        "    def arena(self, n):\n"
        "        return n\n"
        "class Chunked(Fast):\n"
        "    pass\n"
        "def fresh(n):\n"
        "    return n\n"
        "def kernel(ws, n):\n"
        "    return ws.alloc(n)\n"
    )

    def make(self) -> Program:
        return Program({"src/repro/engine/x.py": ast.parse(self.SOURCE)})

    def test_registry_dispatch_resolves_all_implementations(self):
        program = self.make()
        kernel = program.functions[("src/repro/engine/x.py", "kernel")]
        call = next(
            n for n in ast.walk(kernel.node) if isinstance(n, ast.Call)
        )
        callees = {f.qualname for f in program.resolve_call(call, kernel)}
        # Chunked inherits Fast.alloc — the registry view contributes
        # each class's dispatched implementation, deduplicated.
        assert callees == {"Null.alloc", "Fast.alloc"}

    def test_self_call_uses_base_chain(self):
        program = self.make()
        alloc = program.functions[("src/repro/engine/x.py", "Fast.alloc")]
        call = next(
            n for n in ast.walk(alloc.node) if isinstance(n, ast.Call)
        )
        callees = [f.qualname for f in program.resolve_call(call, alloc)]
        assert callees == ["Fast.arena"]

    def test_module_function_by_name(self):
        program = self.make()
        null = program.functions[("src/repro/engine/x.py", "Null.alloc")]
        call = next(
            n for n in ast.walk(null.node) if isinstance(n, ast.Call)
        )
        callees = [f.qualname for f in program.resolve_call(call, null)]
        assert callees == ["fresh"]

    def test_local_receiver_class_binds_the_constructor(self):
        src = self.SOURCE + (
            "def driver(n):\n"
            "    ws = Fast()\n"
            "    return ws.alloc(n)\n"
        )
        program = Program({"src/repro/engine/x.py": ast.parse(src)})
        driver = program.functions[("src/repro/engine/x.py", "driver")]
        call = next(
            n
            for n in ast.walk(driver.node)
            if isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == "alloc"
        )
        callees = [f.qualname for f in program.resolve_call(call, driver)]
        assert callees == ["Fast.alloc"]


def _workers_seed(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Attribute) and expr.attr == "workers"


class TestTaintFixpoint:
    def test_terminates_and_propagates_on_cyclic_call_graph(self):
        src = (
            "def a(self, n):\n"
            "    if n <= 0:\n"
            "        return self.workers\n"
            "    return b(self, n - 1)\n"
            "def b(self, n):\n"
            "    return a(self, n)\n"
            "def unrelated(n):\n"
            "    return n + 1\n"
        )
        program = Program({"src/repro/engine/x.py": ast.parse(src)})
        analysis = TaintAnalysis(program, seed_expr=_workers_seed)
        key = "src/repro/engine/x.py"
        assert SEED in analysis.summaries[(key, "a")].returns
        assert SEED in analysis.summaries[(key, "b")].returns
        assert SEED not in analysis.summaries[(key, "unrelated")].returns

    def test_taint_survives_helper_return(self):
        src = (
            "def sizer(self):\n"
            "    return self.workers * 4\n"
            "def kernel(self, n):\n"
            "    size = sizer(self)\n"
            "    clean = n + 1\n"
            "    return size, clean\n"
        )
        program = Program({"p.py": ast.parse(src)})
        analysis = TaintAnalysis(program, seed_expr=_workers_seed)
        kernel = program.functions[("p.py", "kernel")]
        env = analysis.local_env(kernel)
        assert SEED in env["size"]
        assert SEED not in env["clean"]

    def test_tainted_index_into_clean_container_is_clean(self):
        src = (
            "def f(self, table):\n"
            "    w = self.workers\n"
            "    return table[w]\n"
        )
        program = Program({"p.py": ast.parse(src)})
        analysis = TaintAnalysis(program, seed_expr=_workers_seed)
        info = program.functions[("p.py", "f")]
        env = analysis.local_env(info)
        ret = next(
            n for n in ast.walk(info.node) if isinstance(n, ast.Return)
        )
        assert not analysis.is_tainted(ret.value, env, info)

    def test_seed_params_mark_arguments(self):
        src = "def f(workers):\n    return workers + 1\n"
        program = Program({"p.py": ast.parse(src)})
        analysis = TaintAnalysis(
            program, seed_expr=lambda e: False, seed_params=("workers",)
        )
        assert SEED in analysis.summaries[("p.py", "f")].returns


class TestForwardSolver:
    def _solve(self, source: str):
        graph = build_cfg(fn(source))

        def transfer(nid: int, state: str) -> str:
            stmt = graph.nodes[nid].stmt
            text = ast.unparse(stmt) if stmt is not None else ""
            if "claim" in text:
                return "C"
            if "release" in text:
                return "R"
            return state

        def join(a: str, b: str) -> str:
            if a == "_":
                return b
            if b == "_":
                return a
            return a if a == b else "?"

        result = run_forward(
            graph,
            init="U",
            bottom="_",
            transfer=transfer,
            join=join,
            equals=lambda a, b: a == b,
        )
        return graph, result

    def test_exceptional_edge_joins_before_and_after(self):
        graph, result = self._solve(
            "def f(pool):\n"
            "    ws = claim(pool)\n"
            "    try:\n"
            "        work(ws)\n"
            "    finally:\n"
            "        release(ws)\n"
        )
        # The claim statement itself may raise before taking effect,
        # so its exceptional out-state is join(U, C) = ?, never a
        # definite C — exactly why RL008 does not flag the claim line.
        (claim_nid,) = cfg_lines(graph)[2]
        node = graph.nodes[claim_nid]
        assert result.out_states[claim_nid] == "C"
        for succ in node.exc_succs:
            assert result.in_states[succ] == "?"

    def test_release_dominates_normal_exit(self):
        graph, result = self._solve(
            "def f(pool):\n"
            "    ws = claim(pool)\n"
            "    try:\n"
            "        work(ws)\n"
            "    finally:\n"
            "        release(ws)\n"
        )
        for node, via in graph.exit_preds():
            if not via:
                assert result.out_states[node.nid] == "R"
