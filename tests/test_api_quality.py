"""API quality gates: docstrings and export hygiene for every module."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.startswith("repro.__")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_exist_and_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{module_name}.{name} lacks a docstring"
            )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_functions_documented(module_name):
    """Every public def/class in a module carries a docstring."""
    module = importlib.import_module(module_name)
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export; documented at its home
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{module_name}.{name} lacks a docstring"
            )


def test_version_exported():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
