"""Smoke tests keeping the example scripts from rotting.

Each example's helper functions are imported and exercised at reduced
sizes; the two fastest examples run end-to-end via ``runpy``.
"""

from pathlib import Path

import numpy as np

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    """Import an example module by path without executing main()."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestImageSegmentationHelpers:
    def test_synthesize_blobs_shape(self):
        mod = _load("image_segmentation")
        img = mod.synthesize_blobs(40, 60, num_blobs=3, seed=1)
        assert img.shape == (40, 60)
        assert img.dtype == bool
        assert img.any()

    def test_pixel_adjacency_graph(self):
        mod = _load("image_segmentation")
        img = np.array(
            [
                [1, 1, 0],
                [0, 0, 0],
                [0, 1, 1],
            ],
            dtype=bool,
        )
        graph, pixel_id = mod.pixel_adjacency_graph(img)
        assert graph.num_vertices == 4
        assert graph.num_edges == 2  # two horizontal dominoes
        assert pixel_id[0, 0] >= 0 and pixel_id[1, 1] == -1

    def test_end_to_end_segmentation(self):
        mod = _load("image_segmentation")
        from repro.connectivity import decomp_cc

        img = mod.synthesize_blobs(30, 50, num_blobs=4, seed=3)
        graph, pixel_id = mod.pixel_adjacency_graph(img)
        result = decomp_cc(graph, beta=0.2, seed=1)
        assert result.num_components >= 1
        text = mod.render_ascii(img, np.zeros(img.shape, dtype=np.int64))
        assert isinstance(text, str) and text


class TestQuickstartEndToEnd:
    def test_runs(self, capsys, monkeypatch):
        mod = _load("quickstart")
        # shrink the workload through the generator it uses
        import repro.graphs as graphs_pkg

        original = graphs_pkg.random_kregular
        monkeypatch.setattr(
            "repro.graphs.random_kregular",
            lambda n, k=5, seed=1: original(2_000, k=k, seed=seed),
        )
        mod.main()
        out = capsys.readouterr().out
        assert "labeling verified: OK" in out
        assert "self-relative speedup" in out


class TestShootoutTable:
    def test_structure(self):
        mod = _load("algorithm_shootout")
        assert len(mod.ORDER) == 10
        assert set(mod.GRAPHS)  # graphs built at import time


def test_all_examples_have_main():
    for path in EXAMPLES.glob("*.py"):
        text = path.read_text()
        assert "def main()" in text, path.name
        assert '__name__ == "__main__"' in text, path.name
        assert '"""' in text.split("\n", 2)[2][:10] or text.startswith(
            ("#!", '"""')
        ), f"{path.name} missing docstring"
