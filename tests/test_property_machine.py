"""Property-based tests for the machine timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram.cost import KINDS, CostTracker
from repro.pram.machine import MachineModel

works = st.dictionaries(
    st.sampled_from([k for k in KINDS]),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    max_size=len(KINDS),
)
depths = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
thread_counts = st.integers(min_value=1, max_value=128)


def tracker_of(work_by_kind, depth) -> CostTracker:
    t = CostTracker()
    for kind, work in work_by_kind.items():
        t.add(kind, work=work)
    if depth:
        t.add("scan", work=0.0, depth=depth)
    return t


@settings(max_examples=60, deadline=None)
@given(work=works, depth=depths, p1=thread_counts, p2=thread_counts)
def test_time_monotone_nonincreasing_in_threads(work, depth, p1, p2):
    lo, hi = min(p1, p2), max(p1, p2)
    t = tracker_of(work, depth)
    t_lo = MachineModel(threads=lo).time_seconds(t)
    t_hi = MachineModel(threads=hi).time_seconds(t)
    assert t_hi <= t_lo + 1e-12


@settings(max_examples=60, deadline=None)
@given(work=works, depth=depths, p=thread_counts)
def test_time_additive_over_profiles(work, depth, p):
    a = tracker_of(work, depth)
    b = tracker_of(work, 0.0)
    merged = tracker_of(work, depth)
    merged.merge(b)
    model = MachineModel(threads=p)
    assert model.time_seconds(merged) == pytest.approx(
        model.time_seconds(a) + model.time_seconds(b), rel=1e-9
    )


@settings(max_examples=60, deadline=None)
@given(work=works, depth=depths, p=thread_counts)
def test_time_bounded_by_brent(work, depth, p):
    """T_p is between W/p-ish and T_1 (Brent-style sanity)."""
    t = tracker_of(work, depth)
    model_p = MachineModel(threads=p)
    model_1 = MachineModel(threads=1)
    tp = model_p.time_seconds(t)
    t1 = model_1.time_seconds(t)
    assert tp <= t1 + 1e-12
    # cannot be faster than perfect speedup at the largest cap
    max_cap = max(model_p.kind_cap.values())
    assert tp >= t1 / max(model_p.effective_parallelism, max_cap) - 1e-12


@settings(max_examples=60, deadline=None)
@given(seq_work=st.floats(min_value=1.0, max_value=1e9), p=thread_counts)
def test_sequential_work_is_thread_invariant(seq_work, p):
    t = CostTracker()
    t.add("seq", work=seq_work)
    assert MachineModel(threads=p).time_seconds(t) == pytest.approx(
        MachineModel(threads=1).time_seconds(t)
    )


@settings(max_examples=40, deadline=None)
@given(work=works, depth=depths)
def test_phase_times_partition_total(work, depth):
    t = CostTracker()
    with t.phase("a"):
        for kind, w in work.items():
            t.add(kind, work=w)
    with t.phase("b"):
        t.add("scan", work=0.0, depth=depth)
    model = MachineModel(threads=8)
    assert sum(model.phase_seconds(t).values()) == pytest.approx(
        model.time_seconds(t), rel=1e-9, abs=1e-15
    )
