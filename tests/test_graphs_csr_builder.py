"""Unit tests for the CSR representation and edge-list builders."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.builder import dedup_edge_list, from_directed_edges, from_edges
from repro.graphs.csr import CSRGraph


class TestCSRGraphValidation:
    def test_minimal_empty(self):
        g = CSRGraph(offsets=np.array([0]), targets=np.array([], dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_directed == 0

    def test_rejects_offsets_not_starting_at_zero(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=np.array([1, 2]), targets=np.array([0, 0]))

    def test_rejects_offsets_end_mismatch(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=np.array([0, 3]), targets=np.array([0]))

    def test_rejects_decreasing_offsets(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=np.array([0, 2, 1, 3]), targets=np.array([0, 1, 2]))

    def test_rejects_out_of_range_targets(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=np.array([0, 1]), targets=np.array([5]))
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=np.array([0, 1]), targets=np.array([-1]))

    def test_rejects_2d_arrays(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=np.zeros((2, 2)), targets=np.array([], dtype=np.int64))


class TestCSRGraphAccessors:
    @pytest.fixture()
    def g(self):
        # 0 -> 1,2 ; 1 -> 0 ; 2 -> 0 (symmetric triangle minus one edge)
        return from_edges(np.array([0, 0]), np.array([1, 2]))

    def test_sizes(self, g):
        assert g.num_vertices == 3
        assert g.num_directed == 4
        assert g.num_edges == 2

    def test_degrees(self, g):
        assert g.degrees.tolist() == [2, 1, 1]

    def test_neighbors(self, g):
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert g.neighbors(1).tolist() == [0]

    def test_iter_edges(self, g):
        edges = set(g.iter_edges())
        assert (0, 1) in edges and (1, 0) in edges
        assert len(edges) == 4

    def test_edge_array_sources_repeat_by_degree(self, g):
        src, dst = g.edge_array()
        assert src.tolist() == [0, 0, 1, 2]

    def test_expand_groups_by_frontier_vertex(self, g):
        src, dst = g.expand(np.array([1, 0]))
        assert src.tolist() == [1, 0, 0]
        assert dst[0] == 0

    def test_expand_empty_frontier(self, g):
        src, dst = g.expand(np.array([], dtype=np.int64))
        assert src.size == 0 and dst.size == 0

    def test_expand_matches_neighbors(self, g):
        src, dst = g.expand(np.array([0]))
        assert dst.tolist() == g.neighbors(0).tolist()

    def test_check_symmetric(self, g):
        assert g.check_symmetric()
        asym = from_directed_edges(np.array([0]), np.array([1]), 2)
        assert not asym.check_symmetric()


class TestFromEdges:
    def test_symmetrizes(self):
        g = from_edges(np.array([0]), np.array([1]))
        assert (0, 1) in set(g.iter_edges())
        assert (1, 0) in set(g.iter_edges())

    def test_removes_self_loops(self):
        g = from_edges(np.array([0, 1]), np.array([0, 2]), num_vertices=3)
        assert g.num_edges == 1

    def test_removes_duplicates_by_default(self):
        g = from_edges(np.array([0, 1, 0]), np.array([1, 0, 1]))
        assert g.num_edges == 1

    def test_keeps_duplicates_when_asked(self):
        g = from_edges(
            np.array([0, 0]), np.array([1, 1]), remove_duplicates=False
        )
        assert g.num_directed == 4
        assert g.symmetric

    def test_num_vertices_override(self):
        g = from_edges(np.array([0]), np.array([1]), num_vertices=10)
        assert g.num_vertices == 10

    def test_empty_edge_list(self):
        g = from_edges(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), num_vertices=4
        )
        assert g.num_vertices == 4 and g.num_edges == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphFormatError):
            from_edges(np.array([0]), np.array([5]), num_vertices=2)

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphFormatError):
            from_edges(np.array([-1]), np.array([0]), num_vertices=2)


class TestFromDirectedEdges:
    def test_exact_edges_kept(self):
        g = from_directed_edges(np.array([0, 0, 2]), np.array([1, 1, 0]), 3)
        assert g.num_directed == 3  # duplicates and direction preserved
        assert g.degrees.tolist() == [2, 0, 1]

    def test_groups_targets_by_source(self):
        g = from_directed_edges(np.array([2, 0, 2]), np.array([1, 2, 0]), 3)
        assert sorted(g.neighbors(2).tolist()) == [0, 1]
        assert g.neighbors(0).tolist() == [2]

    def test_rejects_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            from_directed_edges(np.array([0]), np.array([1, 2]), 3)


class TestDedupEdgeList:
    def test_removes_duplicates_and_loops(self):
        s, d = dedup_edge_list(
            np.array([0, 0, 1, 2]), np.array([1, 1, 1, 0]), num_vertices=3
        )
        pairs = set(zip(s.tolist(), d.tolist()))
        assert pairs == {(0, 1), (2, 0)}

    def test_direction_matters(self):
        s, d = dedup_edge_list(np.array([0, 1]), np.array([1, 0]), num_vertices=2)
        assert len(s) == 2

    def test_empty(self):
        s, d = dedup_edge_list(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), 5
        )
        assert s.size == 0 and d.size == 0

    def test_large_random_matches_python_set(self):
        rng = np.random.default_rng(5)
        src = rng.integers(0, 50, size=3000)
        dst = rng.integers(0, 50, size=3000)
        s, d = dedup_edge_list(src, dst, num_vertices=50)
        got = set(zip(s.tolist(), d.tolist()))
        want = {(int(a), int(b)) for a, b in zip(src, dst) if a != b}
        assert got == want
