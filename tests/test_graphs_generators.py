"""Unit tests for the graph generators (the paper's inputs + the zoo)."""

import numpy as np
import pytest

from repro.analysis.verify import ground_truth_labels
from repro.errors import ParameterError
from repro.graphs.generators import (
    binary_tree,
    clique,
    cycle_graph,
    disjoint_union_edges,
    empty_graph,
    grid3d,
    line_graph,
    orkut_like,
    random_gnm,
    random_kregular,
    rmat,
    rmat2_paper,
    rmat_paper,
    star_graph,
)


class TestRandomKRegular:
    def test_sizes(self):
        g = random_kregular(1000, 5, seed=1)
        assert g.num_vertices == 1000
        # symmetrized and deduplicated: at most 5000 undirected edges
        assert 4000 < g.num_edges <= 5000

    def test_symmetric(self):
        assert random_kregular(200, 4, seed=2).check_symmetric()

    def test_one_giant_component_whp(self):
        g = random_kregular(2000, 5, seed=3)
        labels = ground_truth_labels(g)
        counts = np.bincount(labels)
        assert counts.max() > 0.99 * 2000

    def test_deterministic_per_seed(self):
        a = random_kregular(100, 3, seed=9)
        b = random_kregular(100, 3, seed=9)
        assert np.array_equal(a.targets, b.targets)

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            random_kregular(0, 5)
        with pytest.raises(ParameterError):
            random_kregular(10, 0)


class TestRMat:
    def test_sizes(self):
        g = rmat(10, 3000, seed=1)
        assert g.num_vertices == 1024
        assert 0 < g.num_edges <= 3000

    def test_power_law_skew(self):
        # with (a,b,c) = (0.5, 0.1, 0.1) the degree distribution must be
        # clearly skewed: max degree several times the non-zero mean
        # (the skew strengthens with scale; 5x is ample at scale 12)
        g = rmat(12, 20_000, seed=2)
        deg = g.degrees
        assert deg.max() > 5 * deg[deg > 0].mean()

    def test_sparse_rmat_has_isolated_vertices(self):
        # the paper's rMat regime: edge factor ~3.7 leaves isolated
        # vertices (a growing fraction as the scale increases)
        g = rmat_paper(scale=12, seed=1)
        assert np.count_nonzero(g.degrees == 0) > 0.01 * g.num_vertices

    def test_sparse_rmat_many_components(self):
        g = rmat_paper(scale=11, seed=1)
        labels = ground_truth_labels(g)
        assert np.unique(labels).size > 30

    def test_rmat2_is_dense_low_diameter(self):
        g = rmat2_paper(scale=8, seed=1)
        assert g.num_edges > 10 * g.num_vertices
        # giant component reachable in few hops from a hub
        from repro.bfs.parallel_bfs import parallel_bfs

        hub = int(np.argmax(g.degrees))
        res = parallel_bfs(g, hub)
        assert res.num_rounds <= 8

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ParameterError):
            rmat(4, 10, a=0.8, b=0.2, c=0.2)

    def test_rejects_bad_scale(self):
        with pytest.raises(ParameterError):
            rmat(-1, 10)
        with pytest.raises(ParameterError):
            rmat(32, 10)


class TestGrid3D:
    def test_sizes(self):
        g = grid3d(4)
        assert g.num_vertices == 64
        assert g.num_edges == 3 * 16 * 3  # 3 axes * side^2 * (side-1)

    def test_degrees_bounded_by_six(self):
        g = grid3d(5)
        assert g.degrees.max() == 6
        assert g.degrees.min() == 3  # corners

    def test_single_component(self):
        labels = ground_truth_labels(grid3d(4))
        assert np.unique(labels).size == 1

    def test_permuted_labels_same_structure(self):
        a, b = grid3d(4), grid3d(4, seed=7)
        assert a.num_edges == b.num_edges
        assert not np.array_equal(a.targets, b.targets)

    def test_side_one(self):
        g = grid3d(1)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_rejects_bad_side(self):
        with pytest.raises(ParameterError):
            grid3d(0)


class TestLineAndCycle:
    def test_line_sizes(self):
        g = line_graph(100)
        assert g.num_vertices == 100 and g.num_edges == 99

    def test_line_diameter_is_n_minus_1(self):
        from repro.bfs.parallel_bfs import parallel_bfs

        g = line_graph(50)
        res = parallel_bfs(g, 0)
        assert res.distances.max() == 49

    def test_line_endpoint_degrees(self):
        g = line_graph(10)
        assert sorted(g.degrees.tolist()) == [1, 1] + [2] * 8

    def test_line_single_vertex(self):
        g = line_graph(1)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_line_permuted_is_still_a_path(self):
        g = line_graph(30, seed=5)
        assert sorted(g.degrees.tolist()) == [1, 1] + [2] * 28

    def test_cycle(self):
        g = cycle_graph(10)
        assert g.num_edges == 10
        assert (g.degrees == 2).all()

    def test_cycle_rejects_small(self):
        with pytest.raises(ParameterError):
            cycle_graph(2)


class TestOrkutLike:
    def test_single_component(self):
        g = orkut_like(500, 10.0, seed=1)
        labels = ground_truth_labels(g)
        assert np.unique(labels).size == 1

    def test_dense_and_skewed(self):
        g = orkut_like(2000, 20.0, seed=2)
        deg = g.degrees
        assert deg.mean() > 10
        assert deg.max() > 4 * deg.mean()

    def test_size(self):
        g = orkut_like(777, 8.0, seed=3)
        assert g.num_vertices == 777

    def test_rejects_tiny(self):
        with pytest.raises(ParameterError):
            orkut_like(2)


class TestZooGenerators:
    def test_star(self):
        g = star_graph(10)
        assert g.degrees[0] == 9
        assert (g.degrees[1:] == 1).all()

    def test_star_of_one(self):
        assert star_graph(1).num_edges == 0

    def test_clique(self):
        g = clique(6)
        assert g.num_edges == 15
        assert (g.degrees == 5).all()

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.num_vertices == 15
        assert g.num_edges == 14
        assert g.degrees[0] == 2  # root

    def test_binary_tree_depth_zero(self):
        assert binary_tree(0).num_vertices == 1

    def test_random_gnm(self):
        g = random_gnm(100, 50, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges <= 50

    def test_disjoint_union_counts(self):
        g = disjoint_union_edges([clique(4), line_graph(3), empty_graph(2)])
        assert g.num_vertices == 9
        assert g.num_edges == 6 + 2
        labels = ground_truth_labels(g)
        assert np.unique(labels).size == 4  # clique, path, 2 singletons

    def test_disjoint_union_empty_list(self):
        assert disjoint_union_edges([]).num_vertices == 0

    def test_empty_graph(self):
        g = empty_graph(7)
        assert g.num_vertices == 7 and g.num_directed == 0
        with pytest.raises(ParameterError):
            empty_graph(-1)
