"""Tests for atomic sweep checkpoints and kill-and-resume."""

import json

import pytest

import repro.resilience.checkpoint as checkpoint_module
from repro.errors import CheckpointError
from repro.graphs import line_graph, random_kregular
from repro.resilience import (
    CHECKPOINT_VERSION,
    ResilientRunner,
    SweepCheckpoint,
    cell_key,
)
from repro.resilience.checkpoint import backup_path


class TestCellKey:
    def test_shape(self):
        assert cell_key("decomp-arb-CC", "line") == "decomp-arb-CC|line|0"
        assert cell_key("serial-SF", "rMat", trial=2) == "serial-SF|rMat|2"


class TestSweepCheckpoint:
    def test_missing_file_loads_empty(self, tmp_path):
        ckpt = SweepCheckpoint.load(tmp_path / "none.json")
        assert ckpt.completed == 0

    def test_record_persists_immediately(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = SweepCheckpoint(path, meta={"scale": "tiny"})
        ckpt.record("serial-SF", "line", {"1": 0.5})
        assert path.exists()
        reread = SweepCheckpoint.load(path, meta={"scale": "tiny"})
        assert reread.has("serial-SF", "line")
        assert reread.get("serial-SF", "line") == {"1": 0.5}
        assert not reread.has("serial-SF", "rMat")

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = SweepCheckpoint(path)
        for i in range(3):
            ckpt.record("serial-SF", f"g{i}", {"1": float(i)})
        # Only the checkpoint and its backup rotation — no temp litter.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "ckpt.json",
            "ckpt.json.bak",
        ]

    def test_file_is_versioned_json(self, tmp_path):
        path = tmp_path / "ckpt.json"
        SweepCheckpoint(path, meta={"beta": 0.2}).record("a", "g", {})
        data = json.loads(path.read_text())
        assert data["version"] == CHECKPOINT_VERSION
        assert data["meta"] == {"beta": 0.2}
        assert list(data["cells"]) == ["a|g|0"]

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError, match="cannot read"):
            SweepCheckpoint.load(path)

    def test_non_checkpoint_json_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"cells": {}}))
        with pytest.raises(CheckpointError, match="not a sweep checkpoint"):
            SweepCheckpoint.load(path)

    def test_unknown_version_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 999, "meta": {}, "cells": {}}))
        with pytest.raises(CheckpointError, match="version 999"):
            SweepCheckpoint.load(path)

    def test_meta_mismatch_raises_with_diff(self, tmp_path):
        path = tmp_path / "ckpt.json"
        SweepCheckpoint(path, meta={"beta": 0.2, "scale": "tiny"}).record(
            "a", "g", {}
        )
        with pytest.raises(CheckpointError, match="beta"):
            SweepCheckpoint.load(path, meta={"beta": 0.5, "scale": "tiny"})

    def test_meta_match_loads(self, tmp_path):
        path = tmp_path / "ckpt.json"
        SweepCheckpoint(path, meta={"beta": 0.2}).record("a", "g", {"1": 1.0})
        ckpt = SweepCheckpoint.load(path, meta={"beta": 0.2})
        assert ckpt.completed == 1


class TestChecksumAndBackup:
    def test_file_carries_valid_checksum(self, tmp_path):
        path = tmp_path / "ckpt.json"
        SweepCheckpoint(path).record("a", "g", {"1": 1.0})
        data = json.loads(path.read_text())
        body = {k: v for k, v in data.items() if k != "checksum"}
        assert data["checksum"] == checkpoint_module._body_checksum(body)

    def test_bitflip_detected_as_corrupt(self, tmp_path):
        path = tmp_path / "ckpt.json"
        SweepCheckpoint(path).record("a", "g", {"1": 1.0})
        data = json.loads(path.read_text())
        data["cells"]["a|g|0"] = {"1": 2.0}  # tampered, checksum now stale
        path.write_text(json.dumps(data))
        backup_path(path).unlink(missing_ok=True)
        with pytest.raises(CheckpointError, match="integrity"):
            SweepCheckpoint.load(path)

    def test_corrupt_main_falls_back_to_backup_with_warning(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = SweepCheckpoint(path)
        ckpt.record("a", "g0", {"1": 1.0})
        ckpt.record("a", "g1", {"1": 2.0})  # rotates the 1-cell file to .bak
        path.write_text("{truncated")
        with pytest.warns(RuntimeWarning, match="resuming from backup"):
            recovered = SweepCheckpoint.load(path)
        assert recovered.completed == 1
        assert recovered.has("a", "g0")

    def test_both_copies_corrupt_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = SweepCheckpoint(path)
        ckpt.record("a", "g0", {"1": 1.0})
        ckpt.record("a", "g1", {"1": 2.0})
        path.write_text("{truncated")
        backup_path(path).write_text("also junk")
        with pytest.raises(CheckpointError, match="cannot read"):
            SweepCheckpoint.load(path)

    def test_version1_file_without_checksum_still_loads(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(
            json.dumps(
                {"version": 1, "meta": {}, "cells": {"a|g|0": {"1": 1.0}}}
            )
        )
        ckpt = SweepCheckpoint.load(path)
        assert ckpt.completed == 1

    def test_resume_after_fallback_repairs_main_file(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = SweepCheckpoint(path)
        ckpt.record("a", "g0", {"1": 1.0})
        ckpt.record("a", "g1", {"1": 2.0})
        path.write_text("{truncated")
        with pytest.warns(RuntimeWarning):
            recovered = SweepCheckpoint.load(path)
        recovered.record("a", "g2", {"1": 3.0})
        reread = SweepCheckpoint.load(path)
        assert reread.completed == 2  # g0 from backup + the new g2


def _small_sweep():
    return {
        "line": line_graph(150, seed=1),
        "random": random_kregular(200, 4, seed=1),
    }


class TestKillAndResume:
    ALGOS = ["serial-SF", "decomp-arb-CC"]

    def test_interrupted_sweep_resumes_identically(self, tmp_path, monkeypatch):
        import repro.runtime.session as session

        graphs = _small_sweep()
        # Reference: the sweep no one interrupted.
        reference = ResilientRunner().run_table2(
            graphs=graphs, algorithms=self.ALGOS, seed=1
        )

        # Kill the run after 3 of the 4 cells.
        path = tmp_path / "sweep.json"
        meta = {"seed": 1}
        real_execute = session.execute_profiled
        calls = {"n": 0}

        def dying_execute(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 3:
                raise KeyboardInterrupt
            return real_execute(*args, **kwargs)

        monkeypatch.setattr(session, "execute_profiled", dying_execute)
        killed = ResilientRunner(checkpoint=SweepCheckpoint(path, meta=meta))
        with pytest.raises(KeyboardInterrupt):
            killed.run_table2(graphs=graphs, algorithms=self.ALGOS, seed=1)
        assert killed.cells_computed == 3
        monkeypatch.setattr(session, "execute_profiled", real_execute)

        # Resume: only the missing cell is recomputed...
        resumed_runner = ResilientRunner(
            checkpoint=SweepCheckpoint.load(path, meta=meta)
        )
        resumed = resumed_runner.run_table2(
            graphs=graphs, algorithms=self.ALGOS, seed=1
        )
        assert resumed_runner.cells_computed == 1

        # ...and every deterministic field matches the uninterrupted
        # run exactly (wall clock is the one nondeterministic extra).
        for algo in self.ALGOS:
            for gname in graphs:
                got = resumed["table"][algo][gname]
                want = reference["table"][algo][gname]
                for field in ("1", "40h", "components", "attempts", "algorithm"):
                    assert got[field] == want[field], (algo, gname, field)

    def test_resume_with_complete_checkpoint_computes_nothing(self, tmp_path):
        graphs = _small_sweep()
        path = tmp_path / "sweep.json"
        first = ResilientRunner(checkpoint=SweepCheckpoint(path))
        first.run_table2(graphs=graphs, algorithms=self.ALGOS, seed=1)
        assert first.cells_computed == 4

        second = ResilientRunner(checkpoint=SweepCheckpoint.load(path))
        second.run_table2(graphs=graphs, algorithms=self.ALGOS, seed=1)
        assert second.cells_computed == 0
