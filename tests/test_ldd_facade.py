"""Tests for the high-level low-diameter decomposition API."""

import numpy as np
import pytest

from repro.decomp import low_diameter_decomposition
from repro.errors import ParameterError
from repro.graphs.generators import grid3d, line_graph, random_kregular


class TestLowDiameterDecomposition:
    def test_fields_populated(self):
        g = random_kregular(500, 4, seed=1)
        ldd = low_diameter_decomposition(g, beta=0.3, seed=2)
        assert ldd.labels.shape == (500,)
        assert ldd.num_partitions >= 1
        assert 0.0 <= ldd.inter_edge_fraction <= 1.0
        assert ldd.fraction_bound == pytest.approx(0.6)
        assert ldd.max_radius <= 4 * ldd.radius_bound

    def test_min_variant_bound_is_beta(self):
        g = grid3d(5)
        ldd = low_diameter_decomposition(g, beta=0.3, variant="min")
        assert ldd.fraction_bound == pytest.approx(0.3)

    def test_partition_sizes_sum_to_n(self):
        g = line_graph(200, seed=1)
        ldd = low_diameter_decomposition(g, beta=0.1, seed=3)
        sizes = ldd.partition_sizes()
        assert int(sizes.sum()) == 200
        assert sizes[0] >= sizes[-1]

    def test_fraction_respects_bound_statistically(self):
        g = line_graph(4000, seed=2)
        fracs = [
            low_diameter_decomposition(g, beta=0.2, seed=s).inter_edge_fraction
            for s in range(6)
        ]
        assert np.mean(fracs) <= 0.4 * 1.3

    def test_unknown_variant(self):
        with pytest.raises(ParameterError):
            low_diameter_decomposition(grid3d(3), beta=0.2, variant="nope")

    def test_exponential_mode(self):
        g = grid3d(5, seed=1)
        ldd = low_diameter_decomposition(
            g, beta=0.2, schedule_mode="exponential"
        )
        assert ldd.num_partitions >= 1
