"""Unit tests for graph operations and I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.builder import from_edges
from repro.graphs.generators import (
    clique,
    line_graph,
    random_kregular,
    star_graph,
)
from repro.graphs.io import load_npz, read_edge_list, save_npz, write_edge_list
from repro.graphs.ops import (
    degree_statistics,
    edges_as_undirected_pairs,
    induced_subgraph,
    isolated_vertices,
    relabel_graph,
)


class TestRelabelGraph:
    def test_identity(self):
        g = clique(5)
        h = relabel_graph(g, np.arange(5))
        assert np.array_equal(g.offsets, h.offsets)

    def test_structure_preserved(self):
        g = star_graph(6)
        perm = np.array([5, 4, 3, 2, 1, 0])
        h = relabel_graph(g, perm)
        assert sorted(h.degrees.tolist()) == sorted(g.degrees.tolist())
        assert h.degrees[5] == 5  # hub moved to label 5

    def test_rejects_non_permutation(self):
        g = clique(3)
        with pytest.raises(GraphFormatError):
            relabel_graph(g, np.array([0, 0, 1]))
        with pytest.raises(GraphFormatError):
            relabel_graph(g, np.array([0, 1]))
        with pytest.raises(GraphFormatError):
            relabel_graph(g, np.array([0, 1, 5]))


class TestDegreeStats:
    def test_star(self):
        s = degree_statistics(star_graph(11))
        assert s["max"] == 10.0
        assert s["min"] == 1.0
        assert s["isolated"] == 0.0

    def test_with_isolated(self):
        g = from_edges(np.array([0]), np.array([1]), num_vertices=4)
        s = degree_statistics(g)
        assert s["isolated"] == 2.0
        assert isolated_vertices(g).tolist() == [2, 3]

    def test_empty(self):
        from repro.graphs.generators import empty_graph

        s = degree_statistics(empty_graph(0))
        assert s["mean"] == 0.0


class TestInducedSubgraph:
    def test_subset_of_clique(self):
        g = clique(6)
        sub, old = induced_subgraph(g, np.array([1, 3, 5]))
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # triangle
        assert old.tolist() == [1, 3, 5]

    def test_disconnected_selection(self):
        g = line_graph(6)
        sub, _ = induced_subgraph(g, np.array([0, 1, 4, 5]))
        assert sub.num_edges == 2  # 0-1 and 4-5 survive

    def test_duplicates_in_selection_collapse(self):
        g = clique(4)
        sub, old = induced_subgraph(g, np.array([2, 2, 0]))
        assert sub.num_vertices == 2
        assert old.tolist() == [0, 2]

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            induced_subgraph(clique(3), np.array([9]))


class TestUndirectedPairs:
    def test_each_edge_once(self):
        g = clique(4)
        s, d = edges_as_undirected_pairs(g)
        assert len(s) == 6
        assert (s < d).all()

    def test_roundtrip_through_builder(self):
        g = random_kregular(100, 3, seed=4)
        s, d = edges_as_undirected_pairs(g)
        h = from_edges(s, d, num_vertices=100)
        assert np.array_equal(g.offsets, h.offsets)
        assert np.array_equal(g.targets, h.targets)


class TestIO:
    def test_edge_list_roundtrip(self, tmp_path):
        g = random_kregular(50, 3, seed=6)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="test graph")
        h = read_edge_list(path, num_vertices=50)
        assert np.array_equal(g.offsets, h.offsets)
        assert np.array_equal(g.targets, h.targets)

    def test_read_skips_comments(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP header\n# more\n0\t1\n1\t2\n")
        g = read_edge_list(path)
        assert g.num_vertices == 3 and g.num_edges == 2

    def test_read_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nnot numbers\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_read_malformed_reports_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# header\n0 1\n1 2\nnot numbers\n3 4\n")
        with pytest.raises(GraphFormatError) as excinfo:
            read_edge_list(path)
        err = excinfo.value
        assert err.line_number == 4  # 1-based, counting the header
        assert err.line_text == "not numbers"
        assert "line 4" in str(err) and "not numbers" in str(err)

    def test_read_missing_column_reports_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n2\n3 4\n")
        with pytest.raises(GraphFormatError) as excinfo:
            read_edge_list(path)
        assert excinfo.value.line_number == 2
        assert excinfo.value.line_text == "2"

    def test_read_negative_id_reports_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n-2 3\n")
        with pytest.raises(GraphFormatError) as excinfo:
            read_edge_list(path)
        assert excinfo.value.line_number == 2
        assert excinfo.value.line_text == "-2 3"

    def test_read_wrong_columns_raises(self, tmp_path):
        path = tmp_path / "bad3.txt"
        path.write_text("0 1 2\n3 4 5\n")
        with pytest.raises(GraphFormatError) as excinfo:
            read_edge_list(path)
        assert excinfo.value.line_number == 1
        assert excinfo.value.line_text == "0 1 2"

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        g = read_edge_list(path, num_vertices=3)
        assert g.num_vertices == 3 and g.num_edges == 0

    def test_npz_roundtrip(self, tmp_path):
        g = random_kregular(80, 4, seed=7)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert np.array_equal(g.offsets, h.offsets)
        assert np.array_equal(g.targets, h.targets)
        assert h.symmetric == g.symmetric

    def test_npz_wrong_file_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_npz_appends_suffix_like_numpy(self, tmp_path):
        g = random_kregular(30, 3, seed=1)
        save_npz(g, tmp_path / "noext")
        assert (tmp_path / "noext.npz").exists()
        h = load_npz(tmp_path / "noext.npz")
        assert np.array_equal(g.targets, h.targets)


class TestDegenerateInputs:
    """Empty, self-loop-only and isolated-vertex inputs build and load."""

    def test_builder_empty_edge_list(self):
        g = from_edges(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert g.num_vertices == 0 and g.num_edges == 0

    def test_builder_empty_with_vertices(self):
        g = from_edges(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            num_vertices=7,
        )
        assert g.num_vertices == 7 and g.num_edges == 0
        assert isolated_vertices(g).tolist() == list(range(7))

    def test_builder_all_self_loops(self):
        g = from_edges(np.array([0, 3, 5]), np.array([0, 3, 5]))
        assert g.num_vertices == 6 and g.num_edges == 0

    def test_builder_isolated_max_index_vertex(self):
        g = from_edges(np.array([0]), np.array([1]), num_vertices=10)
        assert g.num_vertices == 10
        assert g.degrees[9] == 0

    def test_builder_negative_id_rejected(self):
        with pytest.raises(GraphFormatError, match="negative"):
            from_edges(np.array([0, -2]), np.array([1, 3]), num_vertices=4)

    def test_read_all_self_loop_file(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("0 0\n4 4\n2 2\n")
        g = read_edge_list(path)
        assert g.num_vertices == 5 and g.num_edges == 0

    def test_read_truly_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        g = read_edge_list(path)
        assert g.num_vertices == 0 and g.num_edges == 0

    def test_nodes_header_preserves_isolated_vertices(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# Nodes: 9 Edges: 1\n0\t1\n")
        g = read_edge_list(path)
        assert g.num_vertices == 9 and g.num_edges == 1

    def test_stale_nodes_header_is_widened(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# Nodes: 2 Edges: 2\n0\t1\n5\t6\n")
        g = read_edge_list(path)
        assert g.num_vertices == 7

    def test_roundtrip_keeps_trailing_isolated_vertex(self, tmp_path):
        g = from_edges(np.array([0]), np.array([1]), num_vertices=12)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        h = read_edge_list(path)
        assert h.num_vertices == 12
        assert np.array_equal(g.offsets, h.offsets)

    def test_roundtrip_edgeless_graph(self, tmp_path):
        g = from_edges(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            num_vertices=4,
        )
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        h = read_edge_list(path)
        assert h.num_vertices == 4 and h.num_edges == 0


class TestAtomicWrites:
    def test_writers_leave_no_temp_files(self, tmp_path):
        g = random_kregular(40, 3, seed=2)
        write_edge_list(g, tmp_path / "g.txt")
        save_npz(g, tmp_path / "g.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["g.npz", "g.txt"]

    def test_failed_write_preserves_existing_file(self, tmp_path, monkeypatch):
        g = random_kregular(40, 3, seed=2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        before = path.read_bytes()

        # Make the payload write blow up mid-stream (the temp file is
        # already open and partially written); the destination must
        # keep its previous contents and the temp must be cleaned.
        import repro.graphs.io as gio

        def boom(*args, **kwargs):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(gio.np, "savetxt", boom)
        with pytest.raises(RuntimeError):
            write_edge_list(g, path)
        assert path.read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["g.txt"]
