"""Unit tests for graph operations and I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.generators import clique, line_graph, random_kregular, star_graph
from repro.graphs.io import load_npz, read_edge_list, save_npz, write_edge_list
from repro.graphs.ops import (
    degree_statistics,
    edges_as_undirected_pairs,
    induced_subgraph,
    isolated_vertices,
    relabel_graph,
)
from repro.graphs.builder import from_edges


class TestRelabelGraph:
    def test_identity(self):
        g = clique(5)
        h = relabel_graph(g, np.arange(5))
        assert np.array_equal(g.offsets, h.offsets)

    def test_structure_preserved(self):
        g = star_graph(6)
        perm = np.array([5, 4, 3, 2, 1, 0])
        h = relabel_graph(g, perm)
        assert sorted(h.degrees.tolist()) == sorted(g.degrees.tolist())
        assert h.degrees[5] == 5  # hub moved to label 5

    def test_rejects_non_permutation(self):
        g = clique(3)
        with pytest.raises(GraphFormatError):
            relabel_graph(g, np.array([0, 0, 1]))
        with pytest.raises(GraphFormatError):
            relabel_graph(g, np.array([0, 1]))
        with pytest.raises(GraphFormatError):
            relabel_graph(g, np.array([0, 1, 5]))


class TestDegreeStats:
    def test_star(self):
        s = degree_statistics(star_graph(11))
        assert s["max"] == 10.0
        assert s["min"] == 1.0
        assert s["isolated"] == 0.0

    def test_with_isolated(self):
        g = from_edges(np.array([0]), np.array([1]), num_vertices=4)
        s = degree_statistics(g)
        assert s["isolated"] == 2.0
        assert isolated_vertices(g).tolist() == [2, 3]

    def test_empty(self):
        from repro.graphs.generators import empty_graph

        s = degree_statistics(empty_graph(0))
        assert s["mean"] == 0.0


class TestInducedSubgraph:
    def test_subset_of_clique(self):
        g = clique(6)
        sub, old = induced_subgraph(g, np.array([1, 3, 5]))
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # triangle
        assert old.tolist() == [1, 3, 5]

    def test_disconnected_selection(self):
        g = line_graph(6)
        sub, _ = induced_subgraph(g, np.array([0, 1, 4, 5]))
        assert sub.num_edges == 2  # 0-1 and 4-5 survive

    def test_duplicates_in_selection_collapse(self):
        g = clique(4)
        sub, old = induced_subgraph(g, np.array([2, 2, 0]))
        assert sub.num_vertices == 2
        assert old.tolist() == [0, 2]

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            induced_subgraph(clique(3), np.array([9]))


class TestUndirectedPairs:
    def test_each_edge_once(self):
        g = clique(4)
        s, d = edges_as_undirected_pairs(g)
        assert len(s) == 6
        assert (s < d).all()

    def test_roundtrip_through_builder(self):
        g = random_kregular(100, 3, seed=4)
        s, d = edges_as_undirected_pairs(g)
        h = from_edges(s, d, num_vertices=100)
        assert np.array_equal(g.offsets, h.offsets)
        assert np.array_equal(g.targets, h.targets)


class TestIO:
    def test_edge_list_roundtrip(self, tmp_path):
        g = random_kregular(50, 3, seed=6)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path, header="test graph")
        h = read_edge_list(path, num_vertices=50)
        assert np.array_equal(g.offsets, h.offsets)
        assert np.array_equal(g.targets, h.targets)

    def test_read_skips_comments(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP header\n# more\n0\t1\n1\t2\n")
        g = read_edge_list(path)
        assert g.num_vertices == 3 and g.num_edges == 2

    def test_read_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nnot numbers\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_read_wrong_columns_raises(self, tmp_path):
        path = tmp_path / "bad3.txt"
        path.write_text("0 1 2\n3 4 5\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        g = read_edge_list(path, num_vertices=3)
        assert g.num_vertices == 3 and g.num_edges == 0

    def test_npz_roundtrip(self, tmp_path):
        g = random_kregular(80, 4, seed=7)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert np.array_equal(g.offsets, h.offsets)
        assert np.array_equal(g.targets, h.targets)
        assert h.symmetric == g.symmetric

    def test_npz_wrong_file_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_npz(path)
