"""Per-algorithm unit tests: metadata, edge cases, internal invariants."""

import numpy as np
import pytest

from repro.connectivity import (
    DEFAULT_BETA,
    UnionFind,
    canonicalize_labels,
    compress_all,
    decomp_cc,
    find_roots,
    hybrid_bfs_cc,
    label_prop_cc,
    multistep_cc,
    num_components,
    parallel_sf_pbbs_cc,
    parallel_sf_prm_cc,
    serial_sf_cc,
    serial_spanning_forest,
    shiloach_vishkin_cc,
)
from repro.errors import ParameterError
from repro.graphs.generators import (
    clique,
    disjoint_union_edges,
    empty_graph,
    line_graph,
    random_kregular,
    star_graph,
)


class TestCanonicalizeLabels:
    def test_first_occurrence_ordering(self):
        assert canonicalize_labels(np.array([9, 9, 4, 9, 4])).tolist() == [
            0, 0, 1, 0, 1,
        ]

    def test_already_canonical(self):
        a = np.array([0, 1, 1, 2])
        assert canonicalize_labels(a).tolist() == a.tolist()

    def test_empty(self):
        assert canonicalize_labels(np.array([], dtype=np.int64)).size == 0

    def test_equivalent_relabelings_collapse(self):
        a = np.array([5, 5, 7])
        b = np.array([1, 1, 0])
        assert np.array_equal(canonicalize_labels(a), canonicalize_labels(b))

    def test_num_components(self):
        assert num_components(np.array([3, 3, 8])) == 2
        assert num_components(np.array([], dtype=np.int64)) == 0


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert uf.find(0) != uf.find(1)

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.find(0) == uf.find(1)

    def test_union_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)

    def test_components_labels(self):
        uf = UnionFind(4)
        uf.union(0, 2)
        labels = uf.components()
        assert labels[0] == labels[2]
        assert len(set(labels.tolist())) == 3

    def test_flush_costs_charges_seq(self):
        from repro.pram.cost import tracking

        with tracking() as t:
            uf = UnionFind(10)
            for i in range(9):
                uf.union(i, i + 1)
            uf.flush_costs()
        assert t.work_by_kind().get("seq", 0.0) > 0.0
        # seq work must carry no depth (machine model counts it once)
        assert t.depth_by_phase().get("unphased", 0.0) <= 1.0


class TestPointerJumping:
    def test_find_roots_resolves_chain(self):
        parent = np.array([0, 0, 1, 2])  # chain 3->2->1->0
        roots = find_roots(parent, np.array([3, 2, 0]))
        assert roots.tolist() == [0, 0, 0]

    def test_find_roots_does_not_mutate(self):
        parent = np.array([0, 0, 1])
        before = parent.copy()
        find_roots(parent, np.array([2]))
        assert np.array_equal(parent, before)

    def test_compress_all_flattens(self):
        parent = np.array([0, 0, 1, 2, 3])
        rounds = compress_all(parent)
        assert parent.tolist() == [0, 0, 0, 0, 0]
        assert rounds <= 4  # pointer doubling: log2(chain length) + 1

    def test_compress_all_noop_when_flat(self):
        parent = np.array([0, 0, 2])
        assert compress_all(parent) == 1


class TestSerialSF:
    def test_forest_size(self):
        g = random_kregular(300, 4, seed=1)
        uf, forest = serial_spanning_forest(g)
        labels = uf.components()
        n_components = len(set(labels.tolist()))
        assert len(forest) == 300 - n_components  # forest edges = n - c

    def test_result_metadata(self):
        res = serial_sf_cc(clique(5))
        assert res.algorithm == "serial-SF"
        assert res.stats["forest_edges"] == 4
        assert res.num_components == 1


class TestParallelSF:
    def test_pbbs_forest_edge_count(self):
        g = disjoint_union_edges([clique(5), line_graph(4)])
        res = parallel_sf_pbbs_cc(g)
        assert res.stats["forest_edges"] == 9 - 2  # n - components

    def test_prm_forest_edge_count(self):
        g = disjoint_union_edges([clique(5), line_graph(4)])
        res = parallel_sf_prm_cc(g)
        assert res.stats["forest_edges"] == 7

    def test_pbbs_rounds_logarithmic(self):
        g = line_graph(1024)
        res = parallel_sf_pbbs_cc(g)
        assert res.iterations < 60

    def test_prm_fewer_rounds_than_pbbs(self):
        g = star_graph(500)
        pbbs = parallel_sf_pbbs_cc(g)
        prm = parallel_sf_prm_cc(g)
        assert prm.iterations <= pbbs.iterations

    def test_empty_graph(self):
        for fn in (parallel_sf_pbbs_cc, parallel_sf_prm_cc):
            res = fn(empty_graph(4))
            assert res.num_components == 4


class TestBFSBasedCC:
    def test_hybrid_bfs_component_count_matches_iterations(self):
        g = disjoint_union_edges([clique(4), clique(4), empty_graph(2)])
        res = hybrid_bfs_cc(g)
        assert res.iterations == res.num_components == 4

    def test_hybrid_bfs_sizes_recorded(self):
        g = disjoint_union_edges([clique(3), line_graph(5)])
        res = hybrid_bfs_cc(g)
        assert sorted(res.stats["component_sizes_found"]) == [3, 5]

    def test_multistep_giant_component_found(self):
        g = disjoint_union_edges([clique(30), line_graph(5)])
        res = multistep_cc(g)
        assert res.stats["giant_component_size"] == 30

    def test_multistep_empty(self):
        res = multistep_cc(empty_graph(0))
        assert res.num_components == 0

    def test_multistep_singletons_only(self):
        res = multistep_cc(empty_graph(5))
        assert res.num_components == 5


class TestLabelPropAndSV:
    def test_label_prop_sweeps_track_diameter(self):
        res = label_prop_cc(line_graph(64))
        assert res.iterations >= 32  # label 0 must travel the path

    def test_label_prop_one_sweep_on_star(self):
        res = label_prop_cc(star_graph(10))
        assert res.iterations <= 3

    def test_sv_rounds_logarithmic(self):
        res = shiloach_vishkin_cc(line_graph(1000))
        assert res.iterations < 30

    def test_sv_labels_are_minima(self):
        g = clique(6)
        res = shiloach_vishkin_cc(g)
        assert (res.labels == 0).all()


class TestDecompCC:
    def test_metadata(self):
        g = random_kregular(500, 4, seed=2)
        res = decomp_cc(g, 0.2, variant="arb", seed=1)
        assert res.algorithm == "decomp-arb-CC"
        assert res.edges_per_iteration[0] == g.num_edges
        assert res.iterations == len(res.edges_per_iteration)
        assert res.stats["beta"] == 0.2
        assert len(res.stats["rounds_per_iteration"]) == res.iterations

    def test_edges_decrease_monotonically(self):
        g = random_kregular(2000, 5, seed=3)
        res = decomp_cc(g, 0.3, variant="arb", seed=1)
        e = res.edges_per_iteration
        assert all(a > b for a, b in zip(e, e[1:]))

    def test_labels_in_vertex_range(self):
        g = disjoint_union_edges([clique(4), empty_graph(3), line_graph(6)])
        res = decomp_cc(g, 0.2, seed=2)
        assert res.labels.min() >= 0

    def test_unknown_variant(self):
        with pytest.raises(ParameterError, match="unknown variant"):
            decomp_cc(clique(3), 0.2, variant="quantum")

    def test_default_beta_exported(self):
        assert 0.0 < DEFAULT_BETA < 0.5

    def test_single_vertex(self):
        res = decomp_cc(empty_graph(1), 0.2)
        assert res.num_components == 1

    def test_empty(self):
        res = decomp_cc(empty_graph(0), 0.2)
        assert res.labels.size == 0
