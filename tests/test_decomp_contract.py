"""Unit tests for the contraction step (CONTRACT of Algorithm 1)."""

import numpy as np
import pytest

from repro.decomp import contract, decomp_arb
from repro.decomp.base import Decomposition
from repro.errors import GraphFormatError
from repro.graphs.generators import clique, random_kregular

from tests.conftest import zoo_params


def manual_decomposition(labels, edges):
    """Build a Decomposition by hand: labels + directed label-pair edges.

    Original endpoints are set to the label pairs themselves (valid:
    each center is a vertex of its own partition).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if edges:
        src = np.array([a for a, _ in edges], dtype=np.int64)
        dst = np.array([b for _, b in edges], dtype=np.int64)
    else:
        src = dst = np.zeros(0, dtype=np.int64)
    return Decomposition(
        labels=labels,
        inter_src=src,
        inter_dst=dst,
        orig_src=src.copy(),
        orig_dst=dst.copy(),
        num_rounds=1,
    )


class TestContractManual:
    def test_two_components_one_edge(self):
        # vertices 0,1 -> center 0; vertices 2,3 -> center 2; edges cross
        dec = manual_decomposition(
            [0, 0, 2, 2], [(0, 2), (2, 0)]
        )
        con = contract(dec, num_vertices=4)
        assert con.num_components == 2
        assert con.graph.num_vertices == 2
        assert con.graph.num_directed == 2
        assert con.vertex_to_component.tolist() == [0, 0, 1, 1]
        assert not con.is_base_case

    def test_all_one_component(self):
        dec = manual_decomposition([3, 3, 3, 3], [])
        con = contract(dec, num_vertices=4)
        assert con.num_components == 1
        assert con.is_base_case
        assert con.graph.num_vertices == 0  # the lone component is a singleton
        assert con.vertex_to_component.tolist() == [0, 0, 0, 0]

    def test_duplicate_edges_removed(self):
        dec = manual_decomposition(
            [0, 0, 2, 2],
            [(0, 2), (0, 2), (0, 2), (2, 0), (2, 0)],
        )
        con = contract(dec, num_vertices=4)
        assert con.graph.num_directed == 2  # one per direction

    def test_duplicate_edges_kept_when_disabled(self):
        dec = manual_decomposition(
            [0, 0, 2, 2],
            [(0, 2), (0, 2), (2, 0), (2, 0)],
        )
        con = contract(dec, num_vertices=4, remove_duplicates=False)
        assert con.graph.num_directed == 4

    def test_singletons_dropped_but_counted(self):
        # center 1 is an isolated partition; 0 and 2 exchange edges
        dec = manual_decomposition([0, 1, 2], [(0, 2), (2, 0)])
        con = contract(dec, num_vertices=3)
        assert con.num_components == 3
        assert con.graph.num_vertices == 2  # singleton dropped
        assert con.component_to_sub.tolist()[1] == -1  # wait: component ids
        # component ids are dense-ranked by center id: 0->0, 1->1, 2->2
        assert con.component_to_sub[0] >= 0
        assert con.component_to_sub[2] >= 0
        assert con.sub_to_component.tolist() == [0, 2]

    def test_mapping_roundtrip(self):
        labels = [5, 5, 9, 9, 7, 5, 5, 7, 9, 9]  # centers 5, 7, 9
        dec = manual_decomposition(labels, [(5, 9), (9, 5)])
        con = contract(dec, num_vertices=10)
        # dense renaming keeps center order: 5 -> 0, 7 -> 1, 9 -> 2
        assert con.num_components == 3
        assert con.vertex_to_component.tolist() == [0, 0, 2, 2, 1, 0, 0, 1, 2, 2]
        subs = con.component_to_sub
        assert subs[1] == -1  # component of center 7 is a singleton
        assert con.sub_to_component.tolist() == [0, 2]

    def test_label_shape_mismatch(self):
        dec = manual_decomposition([0, 0], [])
        with pytest.raises(GraphFormatError):
            contract(dec, num_vertices=5)

    def test_empty_graph(self):
        dec = manual_decomposition(np.arange(4), [])
        con = contract(dec, num_vertices=4)
        assert con.num_components == 4
        assert con.is_base_case

    def test_zero_vertices(self):
        dec = manual_decomposition(np.zeros(0, dtype=np.int64), [])
        con = contract(dec, num_vertices=0)
        assert con.num_components == 0
        assert con.graph.num_vertices == 0


class TestContractAfterDecomp:
    @pytest.mark.parametrize("graph", zoo_params())
    def test_contracted_graph_is_symmetric(self, graph):
        dec = decomp_arb(graph, beta=0.3, seed=1)
        con = contract(dec, graph.num_vertices)
        assert con.graph.check_symmetric()

    @pytest.mark.parametrize("graph", zoo_params())
    def test_contraction_preserves_component_count(self, graph):
        # components of G == components of G' + singleton components
        from repro.analysis.verify import ground_truth_labels

        dec = decomp_arb(graph, beta=0.3, seed=2)
        con = contract(dec, graph.num_vertices)
        orig = np.unique(ground_truth_labels(graph)).size
        sub_labels = ground_truth_labels(con.graph)
        sub_components = np.unique(sub_labels).size if con.graph.num_vertices else 0
        singletons = con.num_components - con.num_sub_vertices
        assert orig == sub_components + singletons

    def test_contract_shrinks_edges(self):
        g = random_kregular(2000, 5, seed=3)
        dec = decomp_arb(g, beta=0.2, seed=1)
        con = contract(dec, g.num_vertices)
        assert con.graph.num_edges < g.num_edges

    def test_no_self_loops_in_contracted_graph(self):
        g = clique(20)
        dec = decomp_arb(g, beta=0.5, seed=4)
        con = contract(dec, g.num_vertices)
        src, dst = con.graph.edge_array()
        assert np.all(src != dst)
