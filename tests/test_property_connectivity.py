"""Property-based tests: connectivity invariants on random edge lists.

Hypothesis generates arbitrary undirected graphs as edge lists; every
algorithm must produce the ground-truth partition, and the
decomposition/contraction pipeline must preserve the component
structure at every intermediate step.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.verify import (
    ground_truth_labels,
    labelings_equivalent,
    verify_decomposition,
)
from repro.connectivity import (
    canonicalize_labels,
    decomp_cc,
    hybrid_bfs_cc,
    label_prop_cc,
    multistep_cc,
    parallel_sf_pbbs_cc,
    parallel_sf_prm_cc,
    serial_sf_cc,
    shiloach_vishkin_cc,
)
from repro.decomp import contract, decomp_arb, decomp_arb_hybrid, decomp_min
from repro.graphs.builder import from_edges


@st.composite
def edge_list_graphs(draw, max_vertices=40, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    src = np.array([a for a, _ in edges], dtype=np.int64)
    dst = np.array([b for _, b in edges], dtype=np.int64)
    return from_edges(src, dst, num_vertices=n)


COMMON = dict(
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)


@settings(**COMMON)
@given(graph=edge_list_graphs(), seed=st.integers(min_value=0, max_value=1000))
def test_decomp_cc_all_variants_correct(graph, seed):
    truth = canonicalize_labels(ground_truth_labels(graph))
    for variant in ("min", "arb", "arb-hybrid"):
        got = decomp_cc(graph, 0.3, variant=variant, seed=seed).labels
        assert np.array_equal(canonicalize_labels(got), truth)


@settings(**COMMON)
@given(graph=edge_list_graphs())
def test_baselines_agree(graph):
    truth = canonicalize_labels(ground_truth_labels(graph))
    for fn in (
        serial_sf_cc,
        parallel_sf_pbbs_cc,
        parallel_sf_prm_cc,
        hybrid_bfs_cc,
        multistep_cc,
        label_prop_cc,
        shiloach_vishkin_cc,
    ):
        got = fn(graph).labels
        assert np.array_equal(canonicalize_labels(got), truth), fn.__name__


@settings(**COMMON)
@given(
    graph=edge_list_graphs(),
    seed=st.integers(min_value=0, max_value=1000),
    beta=st.floats(min_value=0.05, max_value=0.9),
)
def test_decomposition_always_valid(graph, seed, beta):
    for fn in (decomp_min, decomp_arb, decomp_arb_hybrid):
        dec = fn(graph, beta=beta, seed=seed)
        inter = verify_decomposition(graph, dec.labels, check_connected=True)
        assert inter == dec.num_inter_directed


@settings(**COMMON)
@given(graph=edge_list_graphs(), seed=st.integers(min_value=0, max_value=1000))
def test_contraction_preserves_components(graph, seed):
    """#components(G) == #components(G') + #singleton-components."""
    dec = decomp_arb(graph, beta=0.4, seed=seed)
    con = contract(dec, graph.num_vertices)
    orig = np.unique(ground_truth_labels(graph)).size
    sub = (
        np.unique(ground_truth_labels(con.graph)).size
        if con.graph.num_vertices
        else 0
    )
    singletons = con.num_components - con.num_sub_vertices
    assert orig == sub + singletons


@settings(**COMMON)
@given(graph=edge_list_graphs(), seed=st.integers(min_value=0, max_value=1000))
def test_relabel_up_composition(graph, seed):
    """decomp_cc labels refine correctly: same component <=> same label.

    This is the end-to-end statement of the RELABELUP composition law —
    if it held at each level but composed wrongly, this would fail.
    """
    res = decomp_cc(graph, 0.4, variant="arb", seed=seed)
    assert labelings_equivalent(res.labels, ground_truth_labels(graph))


@settings(**COMMON)
@given(
    graph=edge_list_graphs(max_vertices=25, max_edges=60),
    seed=st.integers(min_value=0, max_value=50),
)
def test_decomp_labels_are_fixed_points(graph, seed):
    """Every decomposition label is a vertex labeling itself (a center)."""
    for fn in (decomp_min, decomp_arb, decomp_arb_hybrid):
        dec = fn(graph, beta=0.5, seed=seed)
        centers = np.unique(dec.labels)
        assert np.array_equal(dec.labels[centers], centers)
