"""Observability layer: span/metrics units + the tracing-determinism bar.

The acceptance contract of :mod:`repro.obs` is *observational purity*:
an instrumented run under an active :class:`~repro.obs.Tracer` must be
byte-identical — labelings, inter-edge lists, round statistics and
(work, depth) charges — to the same run under the default
:class:`~repro.obs.NullTracer`.  The determinism tests here replay a
golden-style capture subset (the same ``capture_one``/``capture_bfs``
helpers the parity suite uses) with tracing off and on, across the
fast and chunked-parallel backends, and require exact equality.

The unit half pins the span model (nesting, close-once, thread ids),
the trace-event schema (via :func:`~repro.obs.validate_trace`), the
phase-window aggregation, and the metrics counter semantics the
runtime layers feed (memo hit/miss, pool claims, parallel combines).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.decomp import DECOMP_VARIANTS
from repro.engine.backend import resolve_backend
from repro.engine.parallel import ParallelWorkspace
from repro.experiments.registry import build_graph
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    Metrics,
    NullMetrics,
    NullTracer,
    Span,
    SpanHandle,
    Tracer,
    jsonable,
    phase_totals,
    trace_document,
    validate_trace,
    write_trace,
)
from repro.runtime.context import current_context
from repro.runtime.session import Session, execute_profiled

from tests.conftest import _zoo
from tests.golden.generate_decomp_parity import capture_bfs, capture_one


class FakeClock:
    """Deterministic clock: advances a fixed step per call."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture()
def tracer() -> Tracer:
    return Tracer(clock=FakeClock())


# -- the span model --------------------------------------------------------


class TestSpanModel:
    def test_null_tracer_is_a_disabled_noop(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("round", "round", round=0)
        assert isinstance(span, Span) and not isinstance(span, SpanHandle)
        span.set(frontier=10)
        span.close()
        NULL_TRACER.instant("note")
        NULL_TRACER.phase_begin("init")
        NULL_TRACER.phase_end("init")
        # No state anywhere: the null tracer records nothing.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_spans_nest_and_record_on_close(self, tracer):
        outer = tracer.span("run", "run", algorithm="decomp-arb-CC")
        inner = tracer.span("round", "round")
        inner.set(round=0, frontier=5)
        inner.close()
        outer.close()
        events = tracer.spans()
        assert [e["name"] for e in events] == ["round", "run"]
        inner_ev, outer_ev = events
        assert inner_ev["args"] == {"round": 0, "frontier": 5}
        assert outer_ev["args"] == {"algorithm": "decomp-arb-CC"}
        # The inner span opened later and closed earlier: it nests.
        assert inner_ev["ts"] >= outer_ev["ts"]
        assert inner_ev["ts"] + inner_ev["dur"] <= outer_ev["ts"] + outer_ev["dur"]

    def test_close_is_idempotent(self, tracer):
        span = tracer.span("round", "round")
        span.close()
        span.close()
        assert len(tracer.spans("round")) == 1

    def test_span_is_a_context_manager(self, tracer):
        with tracer.span("run", "run") as span:
            span.set(graph="line")
        (event,) = tracer.spans("run")
        assert event["args"] == {"graph": "line"}

    def test_instants_and_phase_windows(self, tracer):
        tracer.phase_begin("init")
        tracer.instant("direction", "round", dense=False)
        tracer.phase_end("init")
        phs = [e["ph"] for e in tracer.events]
        assert phs == ["B", "i", "E"]
        assert tracer.events[1]["args"] == {"dense": False}
        assert tracer.events[0]["name"] == tracer.events[2]["name"] == "init"

    def test_thread_ids_are_small_and_stable(self, tracer):
        tracer.instant("main-1")
        done = threading.Event()

        def worker():
            tracer.instant("worker-1")
            tracer.instant("worker-2")
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert done.is_set()
        tracer.instant("main-2")
        tids = {e["name"]: e["tid"] for e in tracer.events}
        assert tids["main-1"] == tids["main-2"] == 0
        assert tids["worker-1"] == tids["worker-2"] == 1


# -- metrics ---------------------------------------------------------------


class TestMetrics:
    def test_null_metrics_counts_nothing(self):
        NULL_METRICS.incr("x")
        NULL_METRICS.observe("h", 3.0)
        assert NULL_METRICS.enabled is False
        assert NULL_METRICS.counter("x") == 0
        assert NULL_METRICS.snapshot() == {"counters": {}, "histograms": {}}

    def test_counters_accumulate(self):
        m = Metrics()
        m.incr("a")
        m.incr("a", 4)
        m.incr("b")
        assert m.counter("a") == 5
        assert m.counter("never") == 0
        assert m.snapshot()["counters"] == {"a": 5, "b": 1}

    def test_histograms_summarize(self):
        m = Metrics()
        for v in (4.0, 1.0, 7.0):
            m.observe("shards", v)
        assert m.samples("shards") == [4.0, 1.0, 7.0]
        summary = m.snapshot()["histograms"]["shards"]
        assert summary == {"count": 3, "min": 1.0, "max": 7.0, "sum": 12.0}

    def test_snapshot_is_json_ready(self):
        m = Metrics()
        m.incr("a", 2)
        m.observe("h", 0.5)
        json.dumps(m.snapshot())  # must not raise

    def test_thread_safety_of_incr(self):
        m = Metrics()

        def bump():
            for _ in range(1000):
                m.incr("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("n") == 4000


# -- JSON coercion ---------------------------------------------------------


class TestJsonable:
    def test_numpy_scalars_and_arrays(self):
        np = pytest.importorskip("numpy")
        out = jsonable(
            {
                np.int64(3): np.int64(7),
                "f": np.float64(0.5),
                "flag": np.bool_(True),
                "arr": np.arange(3, dtype=np.int64),
            }
        )
        assert out == {3: 7, "f": 0.5, "flag": True, "arr": [0, 1, 2]}
        json.dumps(out)  # the whole point: json.dump-safe

    def test_nested_containers(self):
        out = jsonable({"t": (1, 2), "l": [{"k": None}], "s": "x"})
        assert out == {"t": [1, 2], "l": [{"k": None}], "s": "x"}

    def test_native_types_pass_through(self):
        for value in (True, 3, 0.5, "s", None):
            assert jsonable(value) == value


# -- schema validation -----------------------------------------------------


def _event(**kw):
    base = {"name": "x", "ph": "i", "ts": 0.0, "pid": 1, "tid": 0}
    base.update(kw)
    return base


class TestValidateTrace:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_trace([])

    def test_rejects_missing_events_list(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_trace({"displayTimeUnit": "ms"})

    def test_rejects_unknown_phase_code(self):
        with pytest.raises(ValueError, match="phase code"):
            validate_trace({"traceEvents": [_event(ph="Q")]})

    def test_rejects_negative_timestamps(self):
        with pytest.raises(ValueError, match="'ts'"):
            validate_trace({"traceEvents": [_event(ts=-1.0)]})

    def test_rejects_complete_event_without_duration(self):
        with pytest.raises(ValueError, match="'dur'"):
            validate_trace({"traceEvents": [_event(ph="X")]})

    def test_rejects_unbalanced_phase_windows(self):
        with pytest.raises(ValueError, match="unbalanced"):
            validate_trace({"traceEvents": [_event(ph="B")]})
        with pytest.raises(ValueError, match="no matching"):
            validate_trace({"traceEvents": [_event(ph="E")]})

    def test_rejects_non_dict_args(self):
        with pytest.raises(ValueError, match="args"):
            validate_trace({"traceEvents": [_event(args=[1])]})

    def test_accepts_real_document(self, tracer):
        with tracer.span("run", "run"):
            tracer.phase_begin("init")
            tracer.instant("note")
            tracer.phase_end("init")
        metrics = Metrics()
        metrics.incr("runtime.runs")
        doc = trace_document(tracer, metrics, meta={"graph": "line"})
        validate_trace(doc)  # must not raise
        assert doc["metrics"]["counters"] == {"runtime.runs": 1}
        assert doc["meta"] == {"graph": "line"}


class TestPhaseTotals:
    def test_outermost_windows_only(self):
        clock = FakeClock(step=1.0)  # 1 s per tick -> 1e6 us deltas
        tracer = Tracer(clock=clock)
        tracer.phase_begin("bfs")  # t=1
        tracer.phase_begin("bfs")  # nested re-entry, t=2
        tracer.phase_end("bfs")  # t=3
        tracer.phase_end("bfs")  # t=4: outermost window spans 3 s
        tracer.phase_begin("contract")  # t=5
        tracer.phase_end("contract")  # t=6
        totals = phase_totals(tracer)
        assert totals == {"bfs": pytest.approx(3.0), "contract": pytest.approx(1.0)}


# -- integration: a traced profiled run ------------------------------------


@pytest.fixture(scope="module")
def zoo():
    return _zoo()


@pytest.fixture()
def traced_run():
    graph = build_graph("random", "tiny")
    tracer, metrics = Tracer(), Metrics()
    with current_context().child(tracer=tracer, metrics=metrics).activate():
        prof = execute_profiled(
            "decomp-arb-CC", graph, graph_name="random", beta=0.2, seed=1
        )
    return tracer, metrics, prof


class TestTracedRun:
    def test_run_span_carries_charges(self, traced_run):
        tracer, metrics, prof = traced_run
        (run_span,) = tracer.spans("run")
        assert run_span["args"]["algorithm"] == "decomp-arb-CC"
        assert run_span["args"]["work"] == prof.tracker.total_work()
        assert run_span["args"]["depth"] == prof.tracker.total_depth()
        assert metrics.counter("runtime.runs") == 1

    def test_round_spans_cover_the_run(self, traced_run):
        tracer, _, prof = traced_run
        rounds = tracer.spans("round")
        assert len(rounds) >= 1
        # Per-round (work, depth) deltas are disjoint slices of the run:
        # positive, and summing to no more than the run totals (work
        # outside the round loop — init, contraction — is not a round's).
        round_work = sum(s["args"]["work"] for s in rounds)
        round_depth = sum(s["args"]["depth"] for s in rounds)
        assert 0.0 < round_work <= prof.tracker.total_work()
        assert 0.0 < round_depth <= prof.tracker.total_depth()
        assert all(s["args"]["frontier"] >= 0 for s in rounds)

    def test_phase_windows_match_tracker_phases(self, traced_run):
        tracer, _, prof = traced_run
        totals = phase_totals(tracer)
        # Every phase that charged work had an observed window; windows
        # that charged nothing (e.g. a filter pass over zero edges) may
        # still appear in the wall-clock totals.
        assert set(prof.tracker.work_by_phase()) <= set(totals)
        assert all(secs >= 0.0 for secs in totals.values())

    def test_document_round_trips_through_disk(self, traced_run, tmp_path):
        tracer, metrics, prof = traced_run
        path = tmp_path / "run.trace.json"
        write_trace(
            path, tracer, metrics, meta={"work": prof.tracker.total_work()}
        )
        doc = json.loads(path.read_text())
        validate_trace(doc)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["meta"]["work"] == prof.tracker.total_work()
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"process_name", "run", "round"} <= names


class TestRuntimeCounters:
    def test_session_memo_hit_and_miss(self):
        metrics = Metrics()
        with current_context().child(metrics=metrics).activate():
            sess = Session("random", scale="tiny", seed=2)
            first = sess.run()
            assert sess.run() is first
        assert metrics.counter("session.memo.miss") == 1
        assert metrics.counter("session.memo.hit") == 1
        assert metrics.counter("runtime.runs") == 1
        # The first run claimed the pooled arena (fast backend pools).
        claims = metrics.counter("session.pool.claimed") + metrics.counter(
            "session.pool.fresh"
        )
        assert claims == 1

    def test_parallel_combines_are_counted(self, zoo):
        saved = ParallelWorkspace.chunk_size
        ParallelWorkspace.chunk_size = 64
        try:
            metrics = Metrics()
            ctx = current_context().child(
                backend=resolve_backend("parallel"), workers=2, metrics=metrics
            )
            with ctx.activate():
                execute_profiled(
                    "decomp-arb-CC",
                    zoo["rmat"],
                    graph_name="rmat",
                    beta=0.2,
                    seed=1,
                )
        finally:
            ParallelWorkspace.chunk_size = saved
        counters = metrics.snapshot()["counters"]
        assert counters.get("parallel.batches", 0) > 0
        combines = sum(
            v for k, v in counters.items() if k.startswith("parallel.combine.")
        )
        assert combines > 0
        shards = metrics.samples("parallel.combine.shards")
        assert shards and min(shards) >= 2


# -- the determinism bar: tracing off vs on, byte-identical ----------------

#: (backend, workers) executions the traced replay must match untraced.
EXECUTIONS = [
    pytest.param(("fast", 1), id="fast"),
    pytest.param(("parallel", 1), id="parallel-w1"),
    pytest.param(("parallel", 4), id="parallel-w4"),
]

#: The replay subset: every decomposition variant on a multi-component
#: graph and a structured one — small enough to run per-execution,
#: diverse enough that a tracer perturbing rounds/frontiers would show.
DETERMINISM_CELLS = [
    (variant, gname)
    for variant in sorted(DECOMP_VARIANTS)
    for gname in ("rmat", "union")
]


@pytest.fixture(scope="module", autouse=True)
def _tiny_chunks():
    """Chunk the zoo graphs for real (see test_engine_parity)."""
    saved = ParallelWorkspace.chunk_size
    ParallelWorkspace.chunk_size = 64
    try:
        yield
    finally:
        ParallelWorkspace.chunk_size = saved


def _capture(backend, workers, tracer, metrics, fn):
    ctx = current_context().child(
        backend=resolve_backend(backend),
        workers=workers,
        tracer=tracer,
        metrics=metrics,
    )
    with ctx.activate():
        return fn()


class TestTracingDeterminism:
    @pytest.mark.parametrize("execution", EXECUTIONS)
    @pytest.mark.parametrize(
        "cell", DETERMINISM_CELLS, ids=[f"{v}-{g}" for v, g in DETERMINISM_CELLS]
    )
    def test_decomp_capture_identical_with_tracing_on(self, cell, execution, zoo):
        variant, gname = cell
        backend, workers = execution
        run = lambda: capture_one(DECOMP_VARIANTS[variant], zoo[gname], 0.2, 1)
        untraced = _capture(backend, workers, NULL_TRACER, NullMetrics(), run)
        tracer = Tracer()
        traced = _capture(backend, workers, tracer, Metrics(), run)
        # The capture dict pins labelings (sha256), inter-edges, round
        # statistics and the full (phase, kind) work/depth profile:
        # whole-dict equality IS the byte-identical contract.
        assert traced == untraced
        # ... and the traced replay genuinely recorded the run (the
        # capture's num_rounds counts one decomposition; the traced
        # replay may run further engine loops, e.g. contraction levels).
        assert len(tracer.spans("round")) >= untraced["num_rounds"] > 0

    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_bfs_family_identical_with_tracing_on(self, execution, zoo):
        backend, workers = execution
        run = lambda: capture_bfs(zoo["grid"])
        untraced = _capture(backend, workers, NULL_TRACER, NullMetrics(), run)
        tracer = Tracer()
        traced = _capture(backend, workers, tracer, Metrics(), run)
        assert traced == untraced
        assert len(tracer) > 0

    def test_traced_parallel_matches_untraced_fast(self, zoo):
        """Cross-configuration: tracing + chunking vs plain serial fast."""
        run = lambda: capture_one(DECOMP_VARIANTS["arb"], zoo["rmat"], 0.2, 1)
        baseline = _capture("fast", 1, NULL_TRACER, NullMetrics(), run)
        traced = _capture("parallel", 4, Tracer(), Metrics(), run)
        assert traced == baseline
