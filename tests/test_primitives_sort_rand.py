"""Unit tests for the radix sort and randomness primitives."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.pram.cost import tracking
from repro.primitives.rand import (
    exponential_shifts,
    hash_randoms,
    random_permutation,
    splitmix64,
    uniform_fractions,
)
from repro.primitives.sort import radix_argsort, radix_sort, sort_pairs_by_key


class TestRadixSort:
    def test_sorts_small(self):
        assert radix_sort(np.array([3, 1, 2])).tolist() == [1, 2, 3]

    def test_sorts_with_duplicates(self):
        assert radix_sort(np.array([2, 1, 2, 0, 1])).tolist() == [0, 1, 1, 2, 2]

    def test_matches_numpy_on_wide_keys(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1 << 48, size=5000)
        assert np.array_equal(radix_sort(keys), np.sort(keys))

    def test_empty(self):
        assert radix_sort(np.array([], dtype=np.int64)).size == 0

    def test_single(self):
        assert radix_sort(np.array([42])).tolist() == [42]

    def test_all_equal(self):
        assert radix_sort(np.full(10, 7)).tolist() == [7] * 10

    def test_argsort_is_stable(self):
        keys = np.array([1, 0, 1, 0, 1])
        perm = radix_argsort(keys)
        # equal keys must appear in input order
        zeros = perm[keys[perm] == 0]
        ones = perm[keys[perm] == 1]
        assert zeros.tolist() == [1, 3]
        assert ones.tolist() == [0, 2, 4]

    def test_rejects_negative_keys(self):
        with pytest.raises(ValueError, match="non-negative"):
            radix_sort(np.array([1, -2]))

    def test_rejects_key_above_declared_max(self):
        with pytest.raises(ValueError, match="max_key"):
            radix_argsort(np.array([10]), max_key=5)

    def test_passes_scale_with_key_width(self):
        small_keys = np.arange(100)  # fits one 16-bit pass
        wide_keys = np.arange(100) << 40  # needs four passes
        with tracking() as t_small:
            radix_sort(small_keys)
        with tracking() as t_wide:
            radix_sort(wide_keys, max_key=int(wide_keys.max()))
        assert t_wide.total_work() > 2 * t_small.total_work()

    def test_sort_pairs_by_key(self):
        keys = np.array([2, 0, 1])
        vals = np.array([20, 0, 10])
        k, v = sort_pairs_by_key(keys, vals)
        assert k.tolist() == [0, 1, 2]
        assert v.tolist() == [0, 10, 20]

    def test_sort_pairs_length_mismatch(self):
        with pytest.raises(ValueError):
            sort_pairs_by_key(np.arange(3), np.arange(2))


class TestHashPRNG:
    def test_splitmix_deterministic(self):
        x = np.arange(10, dtype=np.uint64)
        assert np.array_equal(splitmix64(x), splitmix64(x))

    def test_splitmix_mixes(self):
        out = splitmix64(np.arange(1000, dtype=np.uint64))
        # consecutive counters must map to wildly different values
        assert np.unique(out).size == 1000
        assert np.abs(np.diff(out.astype(np.float64))).min() > 0

    def test_hash_randoms_deterministic_per_seed(self):
        assert np.array_equal(hash_randoms(50, 7), hash_randoms(50, 7))
        assert not np.array_equal(hash_randoms(50, 7), hash_randoms(50, 8))

    def test_hash_randoms_streams_independent(self):
        assert not np.array_equal(
            hash_randoms(50, 7, stream=0), hash_randoms(50, 7, stream=1)
        )

    def test_hash_randoms_rejects_negative_n(self):
        with pytest.raises(ParameterError):
            hash_randoms(-1, 0)

    def test_uniform_fractions_in_unit_interval(self):
        u = uniform_fractions(10_000, 3)
        assert u.min() >= 0.0 and u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.02


class TestRandomPermutation:
    def test_is_permutation(self):
        p = random_permutation(1000, 5)
        assert np.array_equal(np.sort(p), np.arange(1000))

    def test_deterministic_per_seed(self):
        assert np.array_equal(random_permutation(100, 1), random_permutation(100, 1))

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            random_permutation(100, 1), random_permutation(100, 2)
        )

    def test_edge_sizes(self):
        assert random_permutation(0, 1).size == 0
        assert random_permutation(1, 1).tolist() == [0]

    def test_uniformity_chi_square_lite(self):
        # position of element 0 should be ~uniform across many seeds
        n = 8
        counts = np.zeros(n)
        for seed in range(400):
            p = random_permutation(n, seed)
            counts[np.flatnonzero(p == 0)[0]] += 1
        expected = 400 / n
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 30.0  # df=7, p ~ 1e-4 cutoff


class TestExponentialShifts:
    def test_mean_matches_one_over_beta(self):
        s = exponential_shifts(50_000, 0.25, 9)
        assert s.mean() == pytest.approx(4.0, rel=0.05)

    def test_all_nonnegative(self):
        assert exponential_shifts(1000, 0.5, 2).min() >= 0.0

    def test_max_is_order_log_n_over_beta(self):
        n, beta = 10_000, 0.2
        s = exponential_shifts(n, beta, 3)
        assert s.max() < 5.0 * np.log(n) / beta

    def test_rejects_bad_beta(self):
        with pytest.raises(ParameterError):
            exponential_shifts(10, 0.0, 1)
        with pytest.raises(ParameterError):
            exponential_shifts(10, 1.0, 1)

    def test_memorylessness_lite(self):
        # P(X > a+b | X > a) ~ P(X > b)
        s = exponential_shifts(200_000, 0.5, 4)
        a = b = 1.0
        p_cond = np.mean(s[s > a] > a + b)
        p_plain = np.mean(s > b)
        assert p_cond == pytest.approx(p_plain, abs=0.02)
