"""Cross-algorithm equivalence: every implementation solves connectivity.

The central integration test of the repository: all ten connectivity
implementations must induce the same vertex partition as networkx on
every zoo graph, at several seeds for the randomized ones.
"""

import numpy as np
import pytest

from repro.analysis.verify import ground_truth_labels, verify_labeling
from repro.connectivity import (
    canonicalize_labels,
    decomp_cc,
    hybrid_bfs_cc,
    label_prop_cc,
    multistep_cc,
    parallel_sf_pbbs_cc,
    parallel_sf_prm_cc,
    serial_sf_cc,
    shiloach_vishkin_cc,
)

from tests.conftest import zoo_params

ALGOS = [
    pytest.param(lambda g: decomp_cc(g, 0.2, variant="min", seed=5), id="decomp-min"),
    pytest.param(lambda g: decomp_cc(g, 0.2, variant="arb", seed=5), id="decomp-arb"),
    pytest.param(
        lambda g: decomp_cc(g, 0.2, variant="arb-hybrid", seed=5), id="decomp-hybrid"
    ),
    pytest.param(serial_sf_cc, id="serial-SF"),
    pytest.param(parallel_sf_pbbs_cc, id="SF-PBBS"),
    pytest.param(parallel_sf_prm_cc, id="SF-PRM"),
    pytest.param(hybrid_bfs_cc, id="hybrid-BFS"),
    pytest.param(multistep_cc, id="multistep"),
    pytest.param(label_prop_cc, id="label-prop"),
    pytest.param(shiloach_vishkin_cc, id="shiloach-vishkin"),
]


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("graph", zoo_params())
def test_labels_match_ground_truth(algo, graph):
    result = algo(graph)
    verify_labeling(graph, result.labels)


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("graph", zoo_params())
def test_labels_match_networkx(algo, graph):
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(graph.num_vertices))
    s, d = graph.edge_array()
    G.add_edges_from(zip(s.tolist(), d.tolist()))
    want = np.zeros(graph.num_vertices, dtype=np.int64)
    for i, comp in enumerate(nx.connected_components(G)):
        for v in comp:
            want[v] = i
    got = algo(graph).labels
    assert np.array_equal(canonicalize_labels(got), canonicalize_labels(want))


@pytest.mark.parametrize(
    "variant,seed",
    [(v, s) for v in ("min", "arb", "arb-hybrid") for s in (1, 2, 3, 4)],
)
def test_decomp_cc_seed_robustness(variant, seed, medium_random):
    """Randomized algorithm, fixed answer: many seeds, same partition."""
    result = decomp_cc(medium_random, 0.2, variant=variant, seed=seed)
    truth = ground_truth_labels(medium_random)
    assert np.array_equal(
        canonicalize_labels(result.labels), canonicalize_labels(truth)
    )


@pytest.mark.parametrize("beta", [0.05, 0.2, 0.5, 0.8])
def test_decomp_cc_beta_robustness(beta, medium_random):
    """Correct for every beta, including ones voiding the work bound."""
    result = decomp_cc(medium_random, beta, variant="arb", seed=3)
    verify_labeling(medium_random, result.labels)


def test_decomp_cc_exponential_schedule(medium_random):
    result = decomp_cc(
        medium_random, 0.2, variant="arb", seed=1, schedule_mode="exponential"
    )
    verify_labeling(medium_random, result.labels)


def test_decomp_cc_without_dedup(medium_random):
    result = decomp_cc(
        medium_random, 0.2, variant="arb", seed=1, remove_duplicates=False
    )
    verify_labeling(medium_random, result.labels)
