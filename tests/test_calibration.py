"""Tests for the machine-model calibration micro-benchmarks."""

import pytest

from repro.experiments.calibration import measure_kind_costs, suggest_machine_constants
from repro.pram.cost import KINDS
from repro.pram.machine import MachineModel


class TestCalibration:
    @pytest.fixture(scope="class")
    def costs(self):
        # small n keeps the test quick; relative ordering still holds
        return measure_kind_costs(n=200_000, seed=1)

    def test_covers_all_kinds(self, costs):
        assert set(costs) == set(KINDS)

    def test_all_positive(self, costs):
        assert all(v > 0 for v in costs.values())

    def test_sorting_costlier_than_streaming(self, costs):
        # robust ordering on any machine: a stable argsort pass costs
        # far more per element than a cumulative sum
        assert costs["sort"] > 3 * costs["scan"]

    def test_seq_python_much_costlier_than_vectorized(self, costs):
        assert costs["seq"] > 5 * costs["scan"]

    def test_suggested_constants_feed_the_model(self):
        constants = suggest_machine_constants(n=100_000, seed=2)
        model = MachineModel(threads=4, kind_cost_ns=constants)
        from repro.pram.cost import CostTracker

        t = CostTracker()
        t.add("gather", work=1e6)
        assert model.time_seconds(t) > 0

    def test_suggested_normalised_to_default_scan(self):
        from repro.pram.machine import DEFAULT_KIND_COST_NS

        constants = suggest_machine_constants(n=100_000, seed=3)
        assert constants["scan"] == pytest.approx(DEFAULT_KIND_COST_NS["scan"])
