"""Golden parity: the engine rewrite is seed-for-seed the old code.

``tests/golden/decomp_parity.json`` was captured at the last pre-engine
commit (per-variant hand-rolled round loops); these tests replay every
pinned run — all three paper decomposition variants and the whole BFS
family over the graph zoo — through the current engine-backed
implementations and require bit-identical labelings, inter-edge lists,
round statistics, and (phase, kind) cost profiles.

One intentional exception (see the generator's docstring): the hybrid's
dense rounds now charge the uniform ``log2(round_edges + 1)`` barrier
depth via ``end_round`` instead of the old ``log2(n_vertices + 1)``, so
the ``bfsDense`` *depth* bucket (and therefore ``total_depth``) of the
10 fixture entries with dense rounds is compared within a small
tolerance rather than exactly.  All work buckets stay exact everywhere.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.decomp import DECOMP_VARIANTS
from repro.engine.backend import resolve_backend
from repro.engine.parallel import ParallelWorkspace
from repro.runtime.context import current_context
from repro.runtime.session import Session

from tests.conftest import _zoo
from tests.golden.generate_decomp_parity import capture_bfs, capture_one

#: Every fixture entry must replay identically under every execution
#: backend — the parity contract of ``repro.engine.backend``.  The
#: chunked parallel backend additionally must be worker-count invariant,
#: so it replays at 1, 2, and 4 workers.
EXECUTIONS = [
    pytest.param(("reference", 1), id="reference"),
    pytest.param(("fast", 1), id="fast"),
    pytest.param(("parallel", 1), id="parallel-w1"),
    pytest.param(("parallel", 2), id="parallel-w2"),
    pytest.param(("parallel", 4), id="parallel-w4"),
]


@pytest.fixture(scope="module", autouse=True)
def _tiny_chunks():
    """Shrink the chunk grid so the zoo graphs actually get chunked.

    At the production chunk size (32768) every zoo graph fits in one
    chunk and the parallel backend would silently take its serial
    fallback everywhere — the multi-worker replays would prove nothing.
    """
    saved = ParallelWorkspace.chunk_size
    ParallelWorkspace.chunk_size = 64
    try:
        yield
    finally:
        ParallelWorkspace.chunk_size = saved


def _activate(backend, workers):
    return current_context().child(
        backend=resolve_backend(backend), workers=workers
    ).activate()

FIXTURE = os.path.join(os.path.dirname(__file__), "golden", "decomp_parity.json")

#: Absolute slack allowed per dense round on the intentionally changed
#: barrier-depth charge: each such round now contributes
#: ``log2(round_edges + 1)`` instead of ``log2(n_vertices + 1)``, a
#: difference of two log factors (observed max 3.0 units on the zoo).
DENSE_DEPTH_SLACK_PER_ROUND = 4.0

with open(FIXTURE) as _f:
    _GOLD = json.load(_f)

_DECOMP_KEYS = sorted(k for k in _GOLD if not k.startswith("bfs/"))
_BFS_KEYS = sorted(k for k in _GOLD if k.startswith("bfs/"))


@pytest.fixture(scope="module")
def zoo():
    return _zoo()


def _assert_decomp_entry(want, got):
    """One fixture entry matches one replay: exact outputs, slacked dense depth."""
    slack = DENSE_DEPTH_SLACK_PER_ROUND * len(want["dense_rounds"])

    # Outputs and round statistics: exact.
    for field in (
        "labels_sha256",
        "inter_sha256",
        "orig_sha256",
        "num_inter_directed",
        "num_components",
        "num_rounds",
        "frontier_sizes",
        "edges_inspected",
        "dense_rounds",
        "sync_count",
        "total_work",
        "work",
    ):
        assert got[field] == want[field], field

    # Depth buckets: exact except the dense rounds' barrier packing.
    for bucket in set(want["depth"]) | set(got["depth"]):
        w = want["depth"].get(bucket, 0.0)
        g = got["depth"].get(bucket, 0.0)
        if bucket == "bfsDense|scan":
            assert abs(w - g) <= slack, (bucket, w, g)
        else:
            assert g == w, (bucket, w, g)
    assert abs(want["total_depth"] - got["total_depth"]) <= slack

    # Entries without dense rounds must not even use the tolerance.
    if not want["dense_rounds"]:
        assert got["depth"] == want["depth"]
        assert got["total_depth"] == want["total_depth"]


@pytest.mark.parametrize("execution", EXECUTIONS)
@pytest.mark.parametrize("key", _DECOMP_KEYS)
def test_decomp_matches_pre_engine_capture(key, execution, zoo):
    backend, workers = execution
    gname, variant, beta_s, seed_s = key.split("/")
    beta = float(beta_s.split("=")[1])
    seed = int(seed_s.split("=")[1])
    with _activate(backend, workers):
        got = capture_one(DECOMP_VARIANTS[variant], zoo[gname], beta, seed)
    _assert_decomp_entry(_GOLD[key], got)


@pytest.mark.parametrize("execution", EXECUTIONS)
@pytest.mark.parametrize("key", _BFS_KEYS)
def test_bfs_family_matches_pre_engine_capture(key, execution, zoo):
    backend, workers = execution
    gname = key.split("/", 1)[1]
    want = _GOLD[key]
    with _activate(backend, workers):
        got = capture_bfs(zoo[gname])
    for algo in want:
        assert got[algo] == want[algo], algo


# -- the same 116 entries, driven through the Session runtime path --------
#
# The runtime refactor's acceptance bar: a Session-bound context (its
# backend plus its *pooled* workspace arena, reused across every replay
# on the same graph) must reproduce each golden capture byte-for-byte.
# One session per (graph, backend) lives for the whole module, so later
# parametrized replays run against an arena warmed by earlier ones —
# pooling must be observationally invisible.


@pytest.fixture(scope="module")
def session_for(zoo):
    pool = {}

    def get(gname, backend, workers):
        key = (gname, backend, workers)
        if key not in pool:
            pool[key] = Session(
                zoo[gname], graph_name=gname, backend=backend, workers=workers
            )
        return pool[key]

    return get


@pytest.mark.parametrize("execution", EXECUTIONS)
@pytest.mark.parametrize("key", _DECOMP_KEYS)
def test_decomp_parity_via_session(key, execution, zoo, session_for):
    backend, workers = execution
    gname, variant, beta_s, seed_s = key.split("/")
    beta = float(beta_s.split("=")[1])
    seed = int(seed_s.split("=")[1])
    with session_for(gname, backend, workers).activate():
        got = capture_one(DECOMP_VARIANTS[variant], zoo[gname], beta, seed)
    _assert_decomp_entry(_GOLD[key], got)


@pytest.mark.parametrize("execution", EXECUTIONS)
@pytest.mark.parametrize("key", _BFS_KEYS)
def test_bfs_family_parity_via_session(key, execution, zoo, session_for):
    backend, workers = execution
    gname = key.split("/", 1)[1]
    want = _GOLD[key]
    with session_for(gname, backend, workers).activate():
        got = capture_bfs(zoo[gname])
    for algo in want:
        assert got[algo] == want[algo], algo
