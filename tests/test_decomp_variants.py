"""Structural tests for Decomp-Min / Decomp-Arb / Decomp-Arb-Hybrid.

Every variant must produce a valid decomposition on every zoo graph:
a partition of V where each part is a connected ball around its center,
and the surviving edge list must be exactly the label pairs of the
graph's inter-partition edges.
"""

import numpy as np
import pytest

from repro.analysis.verify import verify_decomposition
from repro.decomp import decomp_arb, decomp_arb_hybrid, decomp_min
from repro.errors import ParameterError
from repro.graphs.generators import clique, grid3d, line_graph, random_kregular
from repro.pram.cost import tracking

from tests.conftest import zoo_params

VARIANTS = [
    pytest.param(decomp_min, id="min"),
    pytest.param(decomp_arb, id="arb"),
    pytest.param(decomp_arb_hybrid, id="arb-hybrid"),
]


@pytest.mark.parametrize("decomp_fn", VARIANTS)
@pytest.mark.parametrize("graph", zoo_params())
def test_valid_decomposition_on_zoo(decomp_fn, graph):
    dec = decomp_fn(graph, beta=0.25, seed=7)
    inter_directed = verify_decomposition(graph, dec.labels)
    # the variant's own inter-edge record must agree with ground truth
    assert dec.num_inter_directed == inter_directed


@pytest.mark.parametrize("decomp_fn", VARIANTS)
@pytest.mark.parametrize("graph", zoo_params())
def test_inter_edges_are_label_pairs_of_real_edges(decomp_fn, graph):
    dec = decomp_fn(graph, beta=0.3, seed=3)
    assert np.all(dec.inter_src != dec.inter_dst)
    # every recorded pair must correspond to >= 1 real crossing edge
    src, dst = graph.edge_array()
    real = set(zip(dec.labels[src].tolist(), dec.labels[dst].tolist()))
    recorded = set(zip(dec.inter_src.tolist(), dec.inter_dst.tolist()))
    assert recorded <= real


@pytest.mark.parametrize("decomp_fn", VARIANTS)
@pytest.mark.parametrize("graph", zoo_params())
def test_inter_edge_multiset_matches_graph(decomp_fn, graph):
    # each directed edge is examined exactly once, so the recorded
    # inter list is exactly the crossing directed edges (as label
    # pairs, with multiplicity)
    dec = decomp_fn(graph, beta=0.3, seed=5)
    src, dst = graph.edge_array()
    cross = dec.labels[src] != dec.labels[dst]
    want = sorted(zip(dec.labels[src[cross]].tolist(), dec.labels[dst[cross]].tolist()))
    got = sorted(zip(dec.inter_src.tolist(), dec.inter_dst.tolist()))
    assert got == want


@pytest.mark.parametrize("decomp_fn", VARIANTS)
def test_deterministic_given_seed(decomp_fn):
    g = random_kregular(500, 4, seed=2)
    a = decomp_fn(g, beta=0.2, seed=9)
    b = decomp_fn(g, beta=0.2, seed=9)
    assert np.array_equal(a.labels, b.labels)


@pytest.mark.parametrize("decomp_fn", VARIANTS)
def test_beta_validation(decomp_fn):
    g = clique(4)
    for beta in (0.0, 1.0, -1.0):
        with pytest.raises(ParameterError):
            decomp_fn(g, beta=beta)


@pytest.mark.parametrize("decomp_fn", VARIANTS)
def test_exponential_schedule_mode(decomp_fn):
    g = random_kregular(300, 3, seed=1)
    dec = decomp_fn(g, beta=0.2, seed=1, schedule_mode="exponential")
    verify_decomposition(g, dec.labels)


@pytest.mark.parametrize("decomp_fn", VARIANTS)
def test_small_beta_fewer_partitions(decomp_fn):
    # smaller beta -> bigger balls -> fewer partitions (on average)
    g = grid3d(8, seed=1)
    small = np.mean(
        [decomp_fn(g, beta=0.05, seed=s).num_components for s in range(3)]
    )
    large = np.mean(
        [decomp_fn(g, beta=0.8, seed=s).num_components for s in range(3)]
    )
    assert small < large


@pytest.mark.parametrize("decomp_fn", VARIANTS)
def test_frontier_sizes_sum_to_n(decomp_fn):
    # every vertex appears on exactly one frontier
    g = random_kregular(400, 3, seed=5)
    dec = decomp_fn(g, beta=0.3, seed=2)
    assert sum(dec.frontier_sizes) == g.num_vertices


class TestVariantSpecificBehaviour:
    def test_min_uses_two_phases_arb_one(self):
        g = random_kregular(500, 4, seed=3)
        with tracking() as t_min:
            decomp_min(g, beta=0.2, seed=1)
        with tracking() as t_arb:
            decomp_arb(g, beta=0.2, seed=1)
        min_phases = set(t_min.work_by_phase())
        arb_phases = set(t_arb.work_by_phase())
        assert {"bfsPhase1", "bfsPhase2"} <= min_phases
        assert "bfsMain" in arb_phases
        assert "bfsMain" not in min_phases
        assert "bfsPhase1" not in arb_phases

    def test_min_charges_more_atomic_work_than_arb(self):
        # writeMin on every edge to an unvisited target vs one CAS race
        g = random_kregular(1000, 5, seed=4)
        with tracking() as t_min:
            decomp_min(g, beta=0.2, seed=1)
        with tracking() as t_arb:
            decomp_arb(g, beta=0.2, seed=1)
        assert t_min.total_work() > t_arb.total_work()

    def test_hybrid_goes_dense_on_dense_graph(self):
        g = random_kregular(2000, 20, seed=5)
        dec = decomp_arb_hybrid(g, beta=0.1, seed=1)
        assert len(dec.dense_rounds) > 0

    def test_hybrid_never_dense_on_line(self):
        g = line_graph(2000, seed=3)
        dec = decomp_arb_hybrid(g, beta=0.05, seed=1)
        assert dec.dense_rounds == []

    def test_hybrid_matches_arb_when_threshold_infinite(self):
        # with the dense switch disabled the hybrid IS decomp-arb
        g = random_kregular(500, 5, seed=6)
        arb = decomp_arb(g, beta=0.2, seed=4)
        hyb = decomp_arb_hybrid(g, beta=0.2, seed=4, dense_threshold=2.0)
        assert np.array_equal(arb.labels, hyb.labels)
        assert hyb.dense_rounds == []

    def test_hybrid_phase_labels(self):
        g = random_kregular(2000, 20, seed=7)
        with tracking() as t:
            dec = decomp_arb_hybrid(g, beta=0.1, seed=1)
        phases = set(t.work_by_phase())
        assert "bfsSparse" in phases
        if dec.dense_rounds:
            assert "bfsDense" in phases and "filterEdges" in phases

    def test_hybrid_inspects_fewer_edges_when_dense(self):
        g = random_kregular(3000, 20, seed=8)
        arb = decomp_arb(g, beta=0.1, seed=2)
        hyb = decomp_arb_hybrid(g, beta=0.1, seed=2)
        if hyb.dense_rounds:
            # sparse inspections saved exceed the filterEdges re-pass
            assert hyb.edges_inspected < 1.5 * arb.edges_inspected

    def test_min_tie_break_priority_crcw(self):
        # On a star, all leaves become reachable in round 1; whichever
        # centers start in round 0 compete for the hub's neighbors via
        # writeMin — the winner must be the one whose delta' is
        # smallest among that round's contenders.  We can't observe the
        # race directly, but determinism under a fixed seed plus
        # validity is the contract; across seeds the winner varies.
        g = star_graph_big = clique(30)
        labels = {decomp_min(g, beta=0.9, seed=s).labels[0] for s in range(8)}
        assert len(labels) >= 2  # the race is genuinely randomized
