"""Property-based tests for graph construction and BFS."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfs.hybrid_bfs import hybrid_bfs
from repro.bfs.parallel_bfs import parallel_bfs
from repro.graphs.builder import from_edges
from repro.graphs.ops import edges_as_undirected_pairs, relabel_graph
from repro.primitives.rand import random_permutation

COMMON = dict(
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)


@st.composite
def edge_lists(draw, max_vertices=30, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=max_edges,
        )
    )
    return n, edges


@settings(**COMMON)
@given(data=edge_lists())
def test_from_edges_is_symmetric_simple(data):
    n, edges = data
    src = np.array([a for a, _ in edges], dtype=np.int64)
    dst = np.array([b for _, b in edges], dtype=np.int64)
    g = from_edges(src, dst, num_vertices=n)
    assert g.check_symmetric()
    # no self loops, no duplicate directed edges
    s, d = g.edge_array()
    assert np.all(s != d)
    keys = set(zip(s.tolist(), d.tolist()))
    assert len(keys) == g.num_directed


@settings(**COMMON)
@given(data=edge_lists())
def test_builder_roundtrip_through_pairs(data):
    n, edges = data
    src = np.array([a for a, _ in edges], dtype=np.int64)
    dst = np.array([b for _, b in edges], dtype=np.int64)
    g = from_edges(src, dst, num_vertices=n)
    s, d = edges_as_undirected_pairs(g)
    h = from_edges(s, d, num_vertices=n)
    assert np.array_equal(g.offsets, h.offsets)
    assert np.array_equal(g.targets, h.targets)


@settings(**COMMON)
@given(data=edge_lists(), seed=st.integers(min_value=0, max_value=100))
def test_relabeling_preserves_bfs_distances_multiset(data, seed):
    n, edges = data
    src = np.array([a for a, _ in edges], dtype=np.int64)
    dst = np.array([b for _, b in edges], dtype=np.int64)
    g = from_edges(src, dst, num_vertices=n)
    perm = random_permutation(n, seed)
    h = relabel_graph(g, perm)
    d_g = parallel_bfs(g, 0).distances
    d_h = parallel_bfs(h, int(perm[0])).distances
    # distances from the (relabeled) same source: same multiset, and
    # pointwise equal after permuting
    assert np.array_equal(d_h[perm], d_g)


@settings(**COMMON)
@given(data=edge_lists(), source=st.integers(min_value=0, max_value=29))
def test_hybrid_bfs_equals_plain_bfs(data, source):
    n, edges = data
    if source >= n:
        source = source % n
    src = np.array([a for a, _ in edges], dtype=np.int64)
    dst = np.array([b for _, b in edges], dtype=np.int64)
    g = from_edges(src, dst, num_vertices=n)
    assert np.array_equal(
        parallel_bfs(g, source).distances, hybrid_bfs(g, source).distances
    )


@settings(**COMMON)
@given(data=edge_lists())
def test_bfs_distances_satisfy_triangle_on_edges(data):
    """BFS distances of adjacent vertices differ by at most 1."""
    n, edges = data
    src = np.array([a for a, _ in edges], dtype=np.int64)
    dst = np.array([b for _, b in edges], dtype=np.int64)
    g = from_edges(src, dst, num_vertices=n)
    dist = parallel_bfs(g, 0).distances
    s, d = g.edge_array()
    both = (dist[s] >= 0) & (dist[d] >= 0)
    assert np.all(np.abs(dist[s[both]] - dist[d[both]]) <= 1)
    # reachability is symmetric along edges
    assert np.all((dist[s] >= 0) == (dist[d] >= 0))
