"""Backend parity properties: fast == reference, element for element.

The golden-fixture suite (``tests/test_engine_parity.py``) pins both
backends against recorded traces; this module attacks the same
contract from below with property-based tests on the individual fast
paths:

* the O(n) reverse-order winner scatter resolves every CAS race to
  exactly the winners the sort-based ``np.unique`` path picks;
* the fused stable argsort is the same permutation as the reference
  per-digit loop;
* arena-backed frontier expansion matches the allocating expansion;
* a :class:`~repro.engine.workspace.Workspace` reused across rounds
  and across runs never leaks state between them;
* the backend registry itself (resolve / scope / default) behaves.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity import decomp_cc, hybrid_bfs_cc
from repro.engine.backend import (
    BACKENDS,
    FAST,
    REFERENCE,
    current_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.engine.workspace import NULL_WORKSPACE, Workspace, make_workspace
from repro.errors import ParameterError
from repro.graphs import random_gnm, random_kregular, rmat
from repro.primitives.atomics import first_winner
from repro.primitives.hashing import _table_size
from repro.primitives.sort import radix_argsort

dest_streams = st.lists(
    st.integers(min_value=0, max_value=60), min_size=0, max_size=300
)


# -- first_winner: scatter path == sort path ------------------------------


@given(dest_streams)
def test_first_winner_scatter_matches_sort(xs):
    idx = np.array(xs, dtype=np.int64)
    ws = Workspace(64)
    ref_pos, ref_dst = first_winner(idx, workspace=None)
    fast_pos, fast_dst = first_winner(idx, workspace=ws)
    assert np.array_equal(ref_pos, fast_pos)
    assert np.array_equal(ref_dst, fast_dst)
    # the winner schedule really is "first occurrence per destination"
    for p, d in zip(fast_pos.tolist(), fast_dst.tolist()):
        assert xs[p] == d
        assert xs.index(d) == p


def test_first_winner_all_colliding():
    idx = np.full(1000, 7, dtype=np.int64)
    pos, dst = first_winner(idx, workspace=Workspace(8))
    assert pos.tolist() == [0]
    assert dst.tolist() == [7]


def test_first_winner_empty_stream():
    idx = np.zeros(0, dtype=np.int64)
    pos, dst = first_winner(idx, workspace=Workspace(8))
    assert pos.size == 0 and dst.size == 0


@given(st.lists(dest_streams, min_size=2, max_size=5))
def test_first_winner_workspace_reuse_no_leak(streams):
    """One arena across many rounds == a fresh arena per round."""
    ws = Workspace(64)
    for xs in streams:
        idx = np.array(xs, dtype=np.int64)
        reused = first_winner(idx, workspace=ws)
        fresh = first_winner(idx, workspace=Workspace(64))
        assert np.array_equal(reused[0], fresh[0])
        assert np.array_equal(reused[1], fresh[1])


# -- radix_argsort: fused path == per-digit loop --------------------------


@given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=300))
def test_radix_argsort_backend_parity(xs):
    keys = np.array(xs, dtype=np.int64)
    with use_backend("reference"):
        ref = radix_argsort(keys)
    with use_backend("fast"):
        fast = radix_argsort(keys)
    assert np.array_equal(ref, fast)


# -- expand: arena views == fresh allocations -----------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=99),
        min_size=0,
        max_size=100,
        unique=True,
    )
)
def test_expand_workspace_parity(frontier):
    graph = random_kregular(100, 4, seed=7)
    front = np.sort(np.array(frontier, dtype=np.int64))
    ref_src, ref_dst = graph.expand(front, workspace=None)
    ws = Workspace(100)
    fast_src, fast_dst = graph.expand(front, workspace=ws)
    assert np.array_equal(ref_src, fast_src)
    assert np.array_equal(ref_dst, fast_dst)


def test_expand_workspace_reuse_across_rounds():
    """Shrinking then growing frontiers reuse buffers without residue."""
    graph = random_kregular(64, 5, seed=3)
    ws = Workspace(64)
    for front in (
        np.arange(64, dtype=np.int64),
        np.arange(0, 64, 7, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
        np.arange(32, dtype=np.int64),
    ):
        ref = graph.expand(front, workspace=None)
        fast = graph.expand(front, workspace=ws)
        assert np.array_equal(ref[0], fast[0])
        assert np.array_equal(ref[1], fast[1])


# -- whole runs: back-to-back fast runs == fresh reference runs -----------


def _graphs():
    return [
        ("kreg", random_kregular(400, 3, seed=1)),
        ("gnm", random_gnm(300, 120, seed=2)),  # many components
        ("rmat", rmat(8, 700, seed=3)),
    ]


@pytest.mark.parametrize(
    "algo",
    [
        pytest.param(lambda g: decomp_cc(g, seed=5), id="decomp_cc"),
        pytest.param(hybrid_bfs_cc, id="hybrid_bfs_cc"),
    ],
)
def test_back_to_back_fast_runs_match_reference(algo):
    """Run A then B under one process's fast backend; nothing carries over."""
    fast_labels = {}
    with use_backend("fast"):
        for name, graph in _graphs():
            fast_labels[name] = algo(graph).labels
    for name, graph in _graphs():
        with use_backend("reference"):
            ref = algo(graph).labels
        assert np.array_equal(ref, fast_labels[name]), name


# -- hash table sizing (the bit_length fix) -------------------------------


@pytest.mark.parametrize(
    "n,size",
    [(0, 16), (1, 16), (8, 16), (9, 32), (16, 32), (17, 64), (1 << 20, 1 << 21)],
)
def test_table_size_values(n, size):
    assert _table_size(n) == size


@given(st.integers(min_value=0, max_value=1 << 30))
def test_table_size_invariants(n):
    size = _table_size(n)
    assert size >= 16 and size & (size - 1) == 0  # power of two
    assert size >= 2 * n  # load factor <= 0.5
    if n > 8:
        assert size < 4 * n  # and never more than one doubling above


# -- the backend registry itself ------------------------------------------


def test_backend_registry_and_resolution():
    assert set(BACKENDS) == {"reference", "fast", "parallel"}
    assert BACKENDS["parallel"].chunked and BACKENDS["parallel"].use_workspace
    assert not FAST.chunked and not REFERENCE.chunked
    assert resolve_backend("fast") is FAST
    assert resolve_backend(REFERENCE) is REFERENCE
    assert resolve_backend(None) is current_backend()
    with pytest.raises(ParameterError):
        resolve_backend("turbo")


def test_use_backend_scopes_and_nests():
    outer = current_backend()
    with use_backend("reference"):
        assert current_backend() is REFERENCE
        with use_backend("fast"):
            assert current_backend() is FAST
        assert current_backend() is REFERENCE
    assert current_backend() is outer


def test_set_default_backend_returns_previous():
    previous = set_default_backend("reference")
    try:
        assert current_backend() is REFERENCE
        with use_backend("fast"):  # scoped override still wins
            assert current_backend() is FAST
    finally:
        set_default_backend(previous)
    assert current_backend() is previous


def test_make_workspace_follows_backend_flags():
    assert isinstance(make_workspace(FAST, 10), Workspace)
    assert make_workspace(REFERENCE, 10) is NULL_WORKSPACE
    assert not NULL_WORKSPACE.trusted and not NULL_WORKSPACE.scatter_winner
    ws = make_workspace(FAST, 10)
    assert ws.trusted and ws.scatter_winner
