"""Cross-validation: what RL006-RL009 flag statically really breaks.

Each doctored fixture here is *one source string* used twice: staged
under a ``src/repro/...`` path and linted (the rule must flag it), and
executed against the real parallel backend (the flagged defect must
produce an observable wrong result or leaked resource).  This pins the
static rules to the runtime failures they were built to prevent — a
rule that stopped firing, or a defect that stopped mattering, fails
here first.

Determinism note: the RL007 fixture's shared-shard race is exercised
under a *sequential* task schedule (one of the schedules the pool may
legally produce), so the wrong answer is reproducible instead of
thread-timing dependent.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis.reprolint import lint_paths, load_config
from repro.engine.parallel import ParallelWorkspace
from repro.runtime.session import Session

REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIG = REPO_ROOT / "reprolint.toml"


def stage_and_lint(tmp_path: Path, rel: str, source: str):
    staged = tmp_path / "src" / "repro" / Path(rel)
    staged.parent.mkdir(parents=True, exist_ok=True)
    staged.write_text(source)
    report = lint_paths([staged], load_config(CONFIG), enforce_stale=False)
    return report.violations


def load_fixture(source: str) -> dict:
    ns = {"ParallelWorkspace": ParallelWorkspace, "np": np}
    exec(compile(source, "<fixture>", "exec"), ns)
    return ns


RL006_FIXTURE = """\
import numpy as np

class WorkerShapedWorkspace(ParallelWorkspace):
    def scratch_table(self):
        return np.empty(self.workers * 4, dtype=np.int64)
"""


class TestRL006CrossValidation:
    def test_linter_flags_the_worker_shaped_buffer(self, tmp_path):
        hits = stage_and_lint(tmp_path, "engine/parallel.py", RL006_FIXTURE)
        # (RL002 also fires — a fresh allocation in the fast backend —
        # but the worker-count taint is the finding under test.)
        assert [v.rule for v in hits if v.rule == "RL006"] == ["RL006"]

    def test_runtime_result_depends_on_worker_count(self):
        cls = load_fixture(RL006_FIXTURE)["WorkerShapedWorkspace"]
        at2 = cls(128, workers=2).scratch_table()
        at4 = cls(128, workers=4).scratch_table()
        # The exact nondeterminism the rule bans: change --workers,
        # change the result shape.
        assert at2.shape != at4.shape


RL007_FIXTURE = """\
import numpy as np

class SharedShardWorkspace(ParallelWorkspace):
    chunk_size = 1024

    def winner_scatter(self, idx):
        m = idx.shape[0]
        spans = self._worker_spans(m)
        if spans is None or len(spans) == 1:
            return super().winner_scatter(idx)
        bound = int(idx.max()) + 1
        slots = self._buf("winner#slots", bound, np.int64)
        mask = self._zeroed_bool("winner#mask", bound)
        iota = self._iota(m)
        touched = [np.zeros(0, dtype=np.int64)] * len(spans)

        def body(w, lo, hi):
            shard = self._shard_buf(0, "winner#slots", bound, np.int64)
            shard_mask = self._shard_zeroed_bool(0, "winner#mask", bound)
            chunk = idx[lo:hi]
            shard[chunk[::-1]] = iota[lo:hi][::-1]
            shard_mask[chunk] = True
            touched[w] = np.flatnonzero(shard_mask)

        self._run(
            [
                (lambda w=w, lo=lo, hi=hi: body(w, lo, hi))
                for w, (lo, hi) in enumerate(spans)
            ]
        )
        for w in range(len(spans) - 1, -1, -1):
            hit = touched[w]
            shard = self._shard_buf(0, "winner#slots", bound, np.int64)
            shard_mask = self._shard_zeroed_bool(0, "winner#mask", bound)
            slots[hit] = shard[hit]
            mask[hit] = True
            shard_mask[hit] = False
        dests = np.flatnonzero(mask)
        mask[dests] = False
        positions = slots[dests]
        return positions, dests
"""


class TestRL007CrossValidation:
    def test_linter_flags_the_shared_shard(self, tmp_path):
        hits = stage_and_lint(tmp_path, "engine/parallel.py", RL007_FIXTURE)
        assert hits
        assert {v.rule for v in hits} == {"RL007"}
        assert all(v.qualname.endswith("winner_scatter") for v in hits)

    def test_runtime_winner_schedule_deviates_from_serial(self):
        cls = load_fixture(RL007_FIXTURE)["SharedShardWorkspace"]
        ws = cls(8192, workers=2)
        # One legal schedule: tasks run to completion in submission
        # order.  A correct kernel is schedule-independent; this one
        # is not — the second span's task overwrites the first's
        # winners in the *shared* shard.
        ws._run = lambda tasks: [t() for t in tasks]
        idx = np.arange(8192, dtype=np.int64) % 100
        positions, dests = ws.winner_scatter(idx)
        expected_dests, expected_positions = np.unique(
            idx, return_index=True
        )
        assert np.array_equal(np.sort(dests), expected_dests)
        order = np.argsort(dests)
        # The serial contract: each destination's *first* occurrence.
        assert not np.array_equal(positions[order], expected_positions)

    def test_real_backend_matches_serial_on_the_same_input(self):
        ws = ParallelWorkspace(8192, workers=2)
        ws.chunk_size = 1024
        idx = np.arange(8192, dtype=np.int64) % 100
        positions, dests = ws.winner_scatter(idx)
        expected_dests, expected_positions = np.unique(
            idx, return_index=True
        )
        order = np.argsort(dests)
        assert np.array_equal(dests[order], expected_dests)
        assert np.array_equal(positions[order], expected_positions)


RL008_FIXTURE = """\
def leaky_run(session, frontier):
    ws = session._claim_pool()
    if frontier is None:
        return None
    out = compute(ws, frontier)
    session._release_pool(ws)
    return out
"""


class TestRL008CrossValidation:
    def test_linter_flags_the_leaky_claim(self, tmp_path):
        hits = stage_and_lint(tmp_path, "runtime/leaky.py", RL008_FIXTURE)
        assert hits
        assert {v.rule for v in hits} == {"RL008"}
        assert all(v.qualname == "leaky_run" for v in hits)

    def test_runtime_consequence_is_a_starved_pool(self):
        sess = Session("random", scale="tiny", seed=2, backend="fast")
        with sess._lock:
            ws = sess._claim_pool()
        assert ws is not None
        # The leak RL008 prevents: the claim never released, so every
        # later run is silently pushed onto a fresh per-run arena.
        with sess._lock:
            assert sess._claim_pool() is None
        with sess._lock:
            sess._release_pool(ws)
            repaired = sess._claim_pool()
            sess._release_pool(repaired)
        assert repaired is not None


RL009_FIXTURE = """\
import numpy as np

class AddMergeWorkspace(ParallelWorkspace):
    chunk_size = 1024

    def minimum_scatter(self, dest, idx, values):
        spans = self._worker_spans(idx.shape[0])
        if spans is None or len(spans) == 1:
            return super().minimum_scatter(dest, idx, values)
        bound = dest.shape[0]
        identity = np.iinfo(dest.dtype).max
        touched = [np.zeros(0, dtype=np.int64)] * len(spans)

        def body(w, lo, hi):
            shard = self._shard_filled(w, "min#vals", bound, identity, dest.dtype)
            shard_mask = self._shard_zeroed_bool(w, "min#mask", bound)
            chunk = idx[lo:hi]
            np.minimum.at(shard, chunk, values[lo:hi])
            shard_mask[chunk] = True
            touched[w] = np.flatnonzero(shard_mask)

        self._run(
            [
                (lambda w=w, lo=lo, hi=hi: body(w, lo, hi))
                for w, (lo, hi) in enumerate(spans)
            ]
        )
        for w in range(len(spans)):
            hit = touched[w]
            shard = self._shard_filled(w, "min#vals", bound, identity, dest.dtype)
            shard_mask = self._shard_zeroed_bool(w, "min#mask", bound)
            dest[hit] = np.add(dest[hit], shard[hit])
            shard[hit] = identity
            shard_mask[hit] = False
"""


class TestRL009CrossValidation:
    def test_linter_flags_the_additive_merge(self, tmp_path):
        hits = stage_and_lint(tmp_path, "engine/parallel.py", RL009_FIXTURE)
        # (RL001 fires on the bare shared write too; the order-
        # sensitive merge is the finding under test.)
        rl009 = [v for v in hits if v.rule == "RL009"]
        assert len(rl009) == 1
        assert "order" in rl009[0].message or "add" in rl009[0].message

    def test_runtime_merge_is_not_a_write_min(self):
        cls = load_fixture(RL009_FIXTURE)["AddMergeWorkspace"]
        ws = cls(8192, workers=2)
        idx = np.arange(8192, dtype=np.int64) % 100
        values = np.arange(8192, dtype=np.int64)
        doctored = np.full(100, np.iinfo(np.int64).max // 2, dtype=np.int64)
        ws.minimum_scatter(doctored, idx, values)
        expected = np.full(100, np.iinfo(np.int64).max // 2, dtype=np.int64)
        np.minimum.at(expected, idx, values)
        assert not np.array_equal(doctored, expected)

    def test_real_backend_matches_the_serial_write_min(self):
        ws = ParallelWorkspace(8192, workers=2)
        ws.chunk_size = 1024
        idx = np.arange(8192, dtype=np.int64) % 100
        values = np.arange(8192, dtype=np.int64)
        dest = np.full(100, np.iinfo(np.int64).max // 2, dtype=np.int64)
        ws.minimum_scatter(dest, idx, values)
        expected = np.full(100, np.iinfo(np.int64).max // 2, dtype=np.int64)
        np.minimum.at(expected, idx, values)
        assert np.array_equal(dest, expected)
