"""Unit tests for frontiers, parallel BFS and direction-optimizing BFS."""

import numpy as np
import pytest

from repro.bfs.frontier import Frontier
from repro.bfs.hybrid_bfs import bottom_up_step, hybrid_bfs
from repro.bfs.parallel_bfs import parallel_bfs
from repro.graphs.generators import (
    binary_tree,
    clique,
    grid3d,
    line_graph,
    random_kregular,
    star_graph,
)
from repro.pram.cost import tracking


def nx_distances(g, source):
    """Reference BFS distances via networkx."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.num_vertices))
    s, d = g.edge_array()
    G.add_edges_from(zip(s.tolist(), d.tolist()))
    dist = nx.single_source_shortest_path_length(G, source)
    out = np.full(g.num_vertices, -1, dtype=np.int64)
    for v, dv in dist.items():
        out[v] = dv
    return out


class TestFrontier:
    def test_requires_exactly_one_form(self):
        with pytest.raises(ValueError):
            Frontier(5)
        with pytest.raises(ValueError):
            Frontier(5, vertices=np.array([0]), bitmap=np.zeros(5, dtype=bool))

    def test_sparse_to_dense(self):
        f = Frontier.from_vertices(5, np.array([1, 3]))
        assert f.size == 2
        assert f.as_bitmap().tolist() == [False, True, False, True, False]

    def test_dense_to_sparse(self):
        bitmap = np.array([True, False, True])
        f = Frontier(3, bitmap=bitmap)
        assert f.as_vertices().tolist() == [0, 2]
        assert f.size == 2

    def test_empty(self):
        f = Frontier.empty(4)
        assert f.is_empty and len(f) == 0

    def test_bitmap_length_checked(self):
        with pytest.raises(ValueError):
            Frontier(3, bitmap=np.zeros(4, dtype=bool))

    def test_should_go_dense_threshold(self):
        f = Frontier.from_vertices(100, np.arange(25))
        assert f.should_go_dense(remaining_vertices=100)  # 25 > 20
        assert not f.should_go_dense(remaining_vertices=100, threshold=0.5)
        assert not f.should_go_dense(remaining_vertices=0)


class TestParallelBFS:
    @pytest.mark.parametrize(
        "graph",
        [
            line_graph(30),
            star_graph(10),
            clique(8),
            grid3d(4),
            binary_tree(4),
            random_kregular(300, 3, seed=1),
        ],
        ids=["line", "star", "clique", "grid", "tree", "random"],
    )
    def test_distances_match_networkx(self, graph):
        got = parallel_bfs(graph, 0).distances
        assert np.array_equal(got, nx_distances(graph, 0))

    def test_parents_form_valid_tree(self):
        g = grid3d(4)
        res = parallel_bfs(g, 0)
        # every non-source visited vertex's parent is one hop closer
        for v in range(1, g.num_vertices):
            p = res.parents[v]
            assert p >= 0
            assert res.distances[v] == res.distances[p] + 1

    def test_unreached_vertices_marked(self):
        from repro.graphs.generators import disjoint_union_edges

        g = disjoint_union_edges([line_graph(5), line_graph(5)])
        res = parallel_bfs(g, 0)
        assert (res.distances[5:] == -1).all()
        assert res.num_visited == 5

    def test_num_rounds_is_eccentricity_plus_one(self):
        res = parallel_bfs(line_graph(20), 0)
        assert res.num_rounds == 20  # last round discovers nothing

    def test_bad_source(self):
        with pytest.raises(ValueError):
            parallel_bfs(line_graph(3), 5)


class TestHybridBFS:
    @pytest.mark.parametrize(
        "graph",
        [
            line_graph(30),
            clique(12),
            grid3d(4),
            random_kregular(400, 4, seed=2),
            star_graph(50),
        ],
        ids=["line", "clique", "grid", "random", "star"],
    )
    def test_distances_match_plain_bfs(self, graph):
        plain = parallel_bfs(graph, 0).distances
        hybrid = hybrid_bfs(graph, 0).distances
        assert np.array_equal(plain, hybrid)

    def test_dense_rounds_triggered_on_dense_graph(self):
        # needs a graph whose mid-BFS frontier is >20% of the remaining
        # unvisited vertices while some remain — a dense random graph
        g = random_kregular(300, 10, seed=7)
        res = hybrid_bfs(g, 0)
        assert "bottom-up" in res.directions

    def test_line_never_goes_dense(self):
        res = hybrid_bfs(line_graph(100), 0)
        assert set(res.directions) == {"top-down"}

    def test_force_direction_top_down(self):
        g = clique(20)
        res = hybrid_bfs(g, 0, force_direction="top-down")
        assert set(res.directions) == {"top-down"}
        assert np.array_equal(res.distances, parallel_bfs(g, 0).distances)

    def test_force_direction_bottom_up(self):
        g = clique(20)
        res = hybrid_bfs(g, 0, force_direction="bottom-up")
        assert set(res.directions) == {"bottom-up"}
        assert np.array_equal(res.distances, parallel_bfs(g, 0).distances)

    def test_bad_force_direction(self):
        with pytest.raises(ValueError):
            hybrid_bfs(clique(3), 0, force_direction="sideways")

    def test_parents_consistent(self):
        g = random_kregular(200, 5, seed=3)
        res = hybrid_bfs(g, 0)
        for v in range(g.num_vertices):
            if v != 0 and res.distances[v] > 0:
                assert res.distances[res.parents[v]] == res.distances[v] - 1


class TestBottomUpStep:
    def test_adopts_frontier_neighbor(self):
        g = star_graph(5)  # hub 0
        frontier = np.zeros(5, dtype=bool)
        frontier[0] = True
        visited = frontier.copy()
        winners, parents, examined = bottom_up_step(g, frontier, visited)
        assert sorted(winners.tolist()) == [1, 2, 3, 4]
        assert (parents == 0).all()
        assert examined == 4  # each leaf exits after its single edge

    def test_early_exit_cost_less_than_full_scan(self):
        g = clique(40)
        frontier = np.zeros(40, dtype=bool)
        frontier[:20] = True
        visited = frontier.copy()
        with tracking() as t:
            _, _, examined = bottom_up_step(g, frontier, visited)
        # every unvisited vertex should find a frontier neighbor fast
        assert examined < g.num_directed / 2

    def test_no_hit_scans_everything(self):
        g = line_graph(10)
        frontier = np.zeros(10, dtype=bool)
        frontier[0] = True
        visited = frontier.copy()
        winners, _, examined = bottom_up_step(g, frontier, visited)
        assert winners.tolist() == [1]
        # vertices 2..9 scanned all their edges fruitlessly
        assert examined >= 14

    def test_all_visited(self):
        g = clique(4)
        visited = np.ones(4, dtype=bool)
        winners, parents, examined = bottom_up_step(
            g, np.ones(4, dtype=bool), visited
        )
        assert winners.size == 0 and examined == 0
