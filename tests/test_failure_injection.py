"""Failure injection: malformed inputs must fail loudly and precisely."""

import numpy as np
import pytest

from repro.connectivity import decomp_cc
from repro.decomp import decomp_arb, decomp_arb_hybrid, decomp_min
from repro.errors import (
    GraphFormatError,
    ParameterError,
    ReproError,
    VerificationError,
)
from repro.graphs.builder import from_directed_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import clique, line_graph


def asymmetric_graph():
    """A directed (non-mirrored) graph: illegal decomposition input."""
    return from_directed_edges(np.array([0, 1]), np.array([1, 2]), 3)


class TestAsymmetricInputRejected:
    @pytest.mark.parametrize("fn", [decomp_min, decomp_arb, decomp_arb_hybrid])
    def test_decomp_refuses(self, fn):
        with pytest.raises(ParameterError, match="symmetric"):
            fn(asymmetric_graph(), beta=0.2)

    def test_decomp_cc_refuses(self):
        with pytest.raises(ParameterError, match="symmetric"):
            decomp_cc(asymmetric_graph(), 0.2)


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (GraphFormatError, ParameterError, VerificationError):
            assert issubclass(exc, ReproError)

    def test_parameter_error_is_value_error(self):
        # callers using plain ValueError handling still catch us
        assert issubclass(ParameterError, ValueError)


class TestCorruptedCSR:
    def test_offsets_truncated(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=np.array([0, 1]), targets=np.array([0, 0]))

    def test_negative_target_smuggled(self):
        g = clique(3)
        bad_targets = g.targets.copy()
        bad_targets[0] = -5
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=g.offsets, targets=bad_targets)

    def test_float_offsets_coerced_or_valid(self):
        # float inputs that are integral are accepted via coercion
        g = CSRGraph(
            offsets=np.array([0.0, 1.0, 2.0]),
            targets=np.array([1.0, 0.0]),
        )
        assert g.offsets.dtype == np.int64


class TestLabelTampering:
    def test_verifier_catches_swapped_labels(self):
        from repro.analysis.verify import verify_labeling

        g = line_graph(10)
        labels = decomp_cc(g, 0.2, seed=1).labels.copy()
        labels[4] = labels[4] + 1  # split the path
        with pytest.raises(VerificationError):
            verify_labeling(g, labels)

    def test_verifier_catches_truncated_labels(self):
        from repro.analysis.verify import verify_labeling

        g = line_graph(10)
        with pytest.raises(VerificationError, match="shape"):
            verify_labeling(g, np.zeros(9, dtype=np.int64))


class TestHostileParameterSpace:
    @pytest.mark.parametrize("beta", [float("nan"), float("inf"), -0.0])
    def test_pathological_beta_rejected(self, beta):
        with pytest.raises((ParameterError, ValueError)):
            decomp_cc(clique(4), beta)

    def test_negative_seed_is_fine(self):
        # seeds are hashed; negatives must not crash
        res = decomp_cc(clique(5), 0.2, seed=-17)
        assert res.num_components == 1

    def test_huge_seed_is_fine(self):
        res = decomp_cc(clique(5), 0.2, seed=2**61 + 3)
        assert res.num_components == 1
