"""reprolint: rule units, the allowlist policy, and the seeded check.

The acceptance bar for the static half (docs/static_analysis.md):

* each rule flags its seeded violation with file:line and rule id —
  including when the violation is planted in a *copy of the real
  kernels* staged under a temporary ``src/repro/...`` tree, so the
  linter demonstrably guards the real code paths;
* the checked-in repository lints clean under ``reprolint.toml``, and
  every allowlist entry actually fires (no stale suppressions);
* config validation rejects unjustified or malformed entries.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.reprolint import (
    KNOWN_RULES,
    LintConfig,
    lint_paths,
    load_config,
    path_key_for,
    rules_for_path,
    run_lint,
)
from repro.analysis.reprolint.rules import RULE_CHECKERS
from repro.errors import LintConfigError

REPO_ROOT = Path(__file__).resolve().parent.parent
KERNELS = REPO_ROOT / "src" / "repro" / "engine" / "kernels.py"
CONFIG = REPO_ROOT / "reprolint.toml"


def check(rule: str, source: str, path_key: str = "src/repro/engine/x.py"):
    return list(RULE_CHECKERS[rule](ast.parse(source), path_key))


class TestRL001SharedWrites:
    def test_bare_shared_write_flagged(self):
        violations = check(
            "RL001",
            "def kernel(labels, idx):\n"
            "    labels[idx] = 7\n",
        )
        assert len(violations) == 1
        assert violations[0].rule == "RL001"
        assert violations[0].line == 2
        assert violations[0].qualname == "kernel"

    def test_self_attribute_write_flagged(self):
        violations = check(
            "RL001",
            "class S:\n"
            "    def claim(self, idx):\n"
            "        self.C[idx] = 1\n",
        )
        assert [v.qualname for v in violations] == ["S.claim"]

    def test_local_array_write_ok(self):
        assert not check(
            "RL001",
            "import numpy as np\n"
            "def kernel(idx):\n"
            "    tmp = np.zeros(10)\n"
            "    tmp[idx] = 1\n"
            "    return tmp\n",
        )

    def test_alias_of_shared_still_flagged(self):
        violations = check(
            "RL001",
            "def kernel(labels, idx):\n"
            "    C = labels\n"
            "    C[idx] = 0\n",
        )
        assert len(violations) == 1

    def test_private_host_bookkeeping_skipped(self):
        # self._buffers[...] = ... is host-side arena bookkeeping, not
        # simulated shared memory.
        assert not check(
            "RL001",
            "class W:\n"
            "    def _buf(self, key, arr):\n"
            "        self._buffers[key] = arr\n",
        )


class TestRL002Allocations:
    KEY = "src/repro/engine/kernels.py"

    def test_allocating_call_flagged(self):
        violations = check(
            "RL002",
            "import numpy as np\n"
            "def round(n):\n"
            "    return np.zeros(n)\n",
            self.KEY,
        )
        assert len(violations) == 1
        assert violations[0].rule == "RL002"

    def test_out_kwarg_ok(self):
        assert not check(
            "RL002",
            "import numpy as np\n"
            "def round(a, b, buf):\n"
            "    np.equal(a, b, out=buf)\n",
            self.KEY,
        )

    def test_empty_sentinel_ok(self):
        # Zero-length sentinel arrays are not round-loop allocation.
        assert not check(
            "RL002",
            "import numpy as np\n"
            "def round():\n"
            "    return np.zeros(0, dtype=np.int64)\n",
            self.KEY,
        )


class TestRL003ChargeOnReturnPaths:
    def test_uncharged_post_expand_return_flagged(self):
        violations = check(
            "RL003",
            "def kernel(state, tracker):\n"
            "    src, dst = state.graph.expand(state.frontier)\n"
            "    if dst.size == 0:\n"
            "        return None\n"
            "    tracker.add('gather', work=1.0, depth=1.0)\n"
            "    return dst\n",
        )
        assert len(violations) == 1
        assert violations[0].line == 4

    def test_pre_expand_guard_ok(self):
        assert not check(
            "RL003",
            "def kernel(state, tracker):\n"
            "    if state.frontier.size == 0:\n"
            "        return None\n"
            "    src, dst = state.graph.expand(state.frontier)\n"
            "    tracker.add('gather', work=1.0, depth=1.0)\n"
            "    return dst\n",
        )

    def test_end_round_counts_as_charge(self):
        assert not check(
            "RL003",
            "def kernel(state):\n"
            "    src, dst = state.graph.expand(state.frontier)\n"
            "    end_round(int(src.size))\n"
            "    return dst\n",
        )


class TestRL004GlobalState:
    def test_np_random_global_flagged(self):
        violations = check(
            "RL004",
            "import numpy as np\n"
            "def shuffle(x):\n"
            "    np.random.seed(0)\n"
            "    return np.random.permutation(x)\n",
            "src/repro/decomp/x.py",
        )
        assert {v.line for v in violations} == {3, 4}

    def test_wall_clock_flagged(self):
        violations = check(
            "RL004",
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n",
            "src/repro/decomp/x.py",
        )
        assert len(violations) == 1

    def test_explicit_generator_ok(self):
        assert not check(
            "RL004",
            "import numpy as np\n"
            "def shuffle(x, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.permutation(x)\n",
            "src/repro/decomp/x.py",
        )

    def test_exempt_layers_out_of_scope(self):
        assert "RL004" not in rules_for_path("src/repro/analysis/wallclock.py")
        assert "RL004" not in rules_for_path("src/repro/experiments/harness.py")
        assert "RL004" in rules_for_path("src/repro/decomp/base.py")
        # The tracer timestamps with real time by design: RL004 is out,
        # RL010 (observational purity) polices the layer instead.
        assert "RL004" not in rules_for_path("src/repro/obs/tracer.py")
        assert "RL010" in rules_for_path("src/repro/obs/tracer.py")
        assert "RL010" not in rules_for_path("src/repro/engine/core.py")


class TestRL010ObservationalPurity:
    OBS = "src/repro/obs/tracer.py"

    def test_store_into_parameter_flagged(self):
        violations = check(
            "RL010",
            "def snoop(labels, i):\n"
            "    labels[i] = 0\n",
            self.OBS,
        )
        assert len(violations) == 1
        assert "caller-owned 'labels'" in violations[0].message

    def test_augmented_store_flagged(self):
        violations = check(
            "RL010",
            "def snoop(counts, i):\n"
            "    counts[i] += 1\n",
            self.OBS,
        )
        assert len(violations) == 1

    def test_attribute_store_on_parameter_flagged(self):
        violations = check(
            "RL010",
            "def snoop(state):\n"
            "    state.round = 99\n",
            self.OBS,
        )
        assert len(violations) == 1

    def test_inplace_numpy_mutation_flagged(self):
        violations = check(
            "RL010",
            "import numpy as np\n"
            "def snoop(frontier, scratch):\n"
            "    np.copyto(scratch, frontier)\n"
            "    frontier.fill(0)\n",
            self.OBS,
        )
        assert {v.message.split()[0] for v in violations} == {"in-place"}
        assert len(violations) == 2

    def test_tracker_charge_flagged(self):
        violations = check(
            "RL010",
            "def snoop(ctx):\n"
            "    ctx.tracker.add('scan', work=1.0)\n",
            self.OBS,
        )
        assert len(violations) == 1
        assert "cost tracker" in violations[0].message

    def test_own_state_mutation_ok(self):
        assert not check(
            "RL010",
            "class Tracer:\n"
            "    def record(self, name):\n"
            "        self.events.append(name)\n"
            "        self._tids[name] = len(self._tids)\n",
            self.OBS,
        )

    def test_real_obs_package_is_clean(self):
        obs_dir = REPO_ROOT / "src" / "repro" / "obs"
        report = lint_paths([obs_dir], LintConfig(), enforce_stale=False)
        assert [v for v in report.violations if v.rule == "RL010"] == []
        assert report.files_checked >= 4


class TestSeededRegression:
    """Doctored copies of the *real* kernels must be flagged in place."""

    def _stage(self, tmp_path: Path, mutate) -> Path:
        staged = tmp_path / "src" / "repro" / "engine" / "kernels.py"
        staged.parent.mkdir(parents=True)
        staged.write_text(mutate(KERNELS.read_text(encoding="utf-8")))
        return staged

    def test_seeded_bare_shared_write_flagged(self, tmp_path):
        # Planted in filter_edges, which the registry allowlists for
        # RL002 only — an unsanctioned shared write there must surface
        # even under the real checked-in config.
        evil = "    state.C[dst] = state.C[src]\n"
        anchor = "    end_round(int(src.size))\n\n\ndef bottom_up_step"
        staged = self._stage(
            tmp_path,
            lambda src: src.replace(
                anchor,
                evil + anchor,
                1,
            ),
        )
        line = staged.read_text().splitlines().index(evil.rstrip("\n")) + 1
        config = load_config(CONFIG)
        report = lint_paths([staged], config, enforce_stale=False)
        hits = [v for v in report.violations if v.rule == "RL001"]
        assert len(hits) == 1
        assert hits[0].line == line
        assert f"kernels.py:{line}:" in hits[0].format()
        assert "RL001" in hits[0].format()

    def test_seeded_allocating_call_flagged(self, tmp_path):
        evil = "    scratch = np.zeros(state.n, dtype=np.int64)\n"
        staged = self._stage(
            tmp_path,
            lambda src: src.replace(
                "    end_round(int(src.size))\n",
                evil + "    end_round(int(src.size))\n",
                1,
            ),
        )
        line = staged.read_text().splitlines().index(evil.rstrip("\n")) + 1
        report = lint_paths([staged], load_config(CONFIG), enforce_stale=False)
        hits = [v for v in report.violations if v.rule == "RL002"]
        assert [v.line for v in hits] == [line]

    def test_unmodified_copy_is_clean(self, tmp_path):
        staged = self._stage(tmp_path, lambda src: src)
        report = lint_paths([staged], load_config(CONFIG), enforce_stale=False)
        assert report.violations == []
        assert report.suppressed > 0


class TestRepositoryIsClean:
    def test_full_tree_lints_clean(self):
        report = run_lint()
        assert report.ok, "\n".join(report.format_lines())

    def test_every_allowlist_entry_fires(self):
        report = run_lint()  # full tree => stale entries are errors
        assert report.stale_entries == []
        assert report.suppressed > 0

    def test_every_entry_justified(self):
        config = load_config(CONFIG)
        for entry in config.allow:
            assert entry.reason.strip(), f"{entry.site} lacks a reason"


class TestConfigValidation:
    def _load(self, tmp_path: Path, text: str):
        p = tmp_path / "reprolint.toml"
        p.write_text(text)
        return load_config(p)

    def test_missing_reason_rejected(self, tmp_path):
        with pytest.raises(LintConfigError, match="reason"):
            self._load(
                tmp_path,
                '[[allow]]\nrule = "RL001"\nsite = "a.py::f"\n',
            )

    def test_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(LintConfigError, match="RL999"):
            self._load(
                tmp_path,
                '[[allow]]\nrule = "RL999"\nsite = "a.py::f"\nreason = "x"\n',
            )

    def test_malformed_site_rejected(self, tmp_path):
        with pytest.raises(LintConfigError, match="site"):
            self._load(
                tmp_path,
                '[[allow]]\nrule = "RL001"\nsite = "no-qualname"\nreason = "x"\n',
            )

    def test_invalid_toml_rejected(self, tmp_path):
        with pytest.raises(LintConfigError, match="invalid TOML"):
            self._load(tmp_path, "[[allow\n")

    def test_unknown_top_level_key_rejected(self, tmp_path):
        with pytest.raises(LintConfigError, match="unknown top-level"):
            self._load(tmp_path, 'ignore = ["everything"]\n')

    def test_stale_entry_reported(self, tmp_path):
        config = self._load(
            tmp_path,
            '[[allow]]\n'
            'rule = "RL001"\n'
            'site = "src/repro/engine/nonexistent.py::ghost"\n'
            'reason = "covers nothing"\n',
        )
        report = lint_paths([KERNELS], config, enforce_stale=True)
        assert len(report.stale_entries) == 1
        assert not report.ok
        assert any("stale" in line for line in report.format_lines())

    def test_known_rules_all_have_checkers(self):
        assert set(KNOWN_RULES) == set(RULE_CHECKERS)


class TestScoping:
    def test_path_key_normalises_absolute_paths(self):
        assert path_key_for(KERNELS) == "src/repro/engine/kernels.py"

    def test_rl002_only_covers_fast_kernels(self):
        assert "RL002" in rules_for_path("src/repro/engine/kernels.py")
        assert "RL002" in rules_for_path("src/repro/engine/workspace.py")
        assert "RL002" not in rules_for_path("src/repro/engine/core.py")

    def test_rl001_covers_the_three_subsystems(self):
        for key in (
            "src/repro/engine/state.py",
            "src/repro/decomp/base.py",
            "src/repro/connectivity/union_find.py",
        ):
            assert "RL001" in rules_for_path(key)
        assert "RL001" not in rules_for_path("src/repro/graphs/csr.py")

    def test_empty_config_flags_kernel_registry(self):
        # Without the allowlist the registry sites are violations again
        # (the linter is not silently scoped around them).
        report = lint_paths([KERNELS], LintConfig(), enforce_stale=False)
        assert any(v.rule == "RL001" for v in report.violations)
