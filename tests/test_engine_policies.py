"""Property tests for the engine's pluggable policy surface.

Two families of guarantees:

* **Combination validity** — every registered tie-break x direction
  combination (including configurations no named variant uses, like a
  pull-only writeMin decomposition) produces a *valid* decomposition on
  every test graph: fully labeled, centers own their partitions,
  partitions connected, the recorded inter-edge count matching a
  from-scratch recount, one frontier appearance per vertex, and
  deterministic under a fixed seed.
* **Extension points** — custom policies can be registered (and name
  collisions / missing names are rejected), the engine actually
  consults a custom direction rule, and the new Decomp-Min-Hybrid
  variant behaves as its policy table says (collapses to Decomp-Min
  when the dense switch can never fire, goes dense where Arb-Hybrid
  does, and yields a verified connectivity labeling end-to-end).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import decomposition_stats
from repro.analysis.verify import verify_decomposition, verify_labeling
from repro.connectivity import decomp_cc
from repro.decomp import DECOMP_VARIANTS, decomp_min, decomp_min_hybrid
from repro.decomp.base import DecompState
from repro.engine import (
    DIRECTION_POLICIES,
    TIEBREAK_POLICIES,
    AlwaysPull,
    DirectionPolicy,
    LigraEdgeHybrid,
    TiebreakPolicy,
    TraversalEngine,
    TraversalState,
    end_round,
    register_direction_policy,
    register_tiebreak_policy,
)
from repro.errors import ParameterError
from repro.pram.cost import tracking

from tests.conftest import _zoo

#: Graphs the combination sweep runs on: every structural corner the
#: zoo offers (isolated vertices, a single edge, trees, dense blobs,
#: multiple components) without the largest instances.
COMBO_GRAPHS = [
    "empty5",
    "single",
    "one-edge",
    "triangle",
    "path",
    "star",
    "clique",
    "tree",
    "grid",
    "gnm-dense",
    "union",
]

BETA, SEED = 0.3, 3


@pytest.fixture(scope="module")
def zoo():
    return _zoo()


def _make_direction(name: str, graph) -> DirectionPolicy:
    if name == "ligra-edges":
        return DIRECTION_POLICIES[name](graph)
    return DIRECTION_POLICIES[name]()


def _run_combo(graph, tiebreak: str, direction: str):
    state = DecompState(graph, BETA, SEED, "permutation")
    with tracking():
        TraversalEngine(
            state,
            direction=_make_direction(direction, graph),
            tiebreak=TIEBREAK_POLICIES[tiebreak](),
        ).run()
    return state.finish()


@pytest.mark.parametrize("direction", sorted(DIRECTION_POLICIES))
@pytest.mark.parametrize("tiebreak", sorted(TIEBREAK_POLICIES))
@pytest.mark.parametrize("gname", COMBO_GRAPHS)
def test_every_policy_combo_yields_valid_decomposition(
    gname, tiebreak, direction, zoo
):
    graph = zoo[gname]
    dec = _run_combo(graph, tiebreak, direction)

    # Structural validity: labeled, center-owned, connected partitions.
    assert not np.any(dec.labels == -1)
    verify_decomposition(graph, dec.labels, check_connected=True)

    # The recorded inter-edge list matches a from-scratch recount: every
    # directed edge whose endpoints ended in different partitions,
    # exactly once — regardless of which round kind classified it.
    src, dst = graph.edge_array()
    expected_inter = int(np.sum(dec.labels[src] != dec.labels[dst]))
    assert dec.num_inter_directed == expected_inter
    assert np.all(dec.inter_src != dec.inter_dst)
    assert np.array_equal(dec.inter_src, dec.labels[dec.orig_src])
    assert np.array_equal(dec.inter_dst, dec.labels[dec.orig_dst])

    # Every vertex appears on exactly one round's frontier.
    assert sum(dec.frontier_sizes) == graph.num_vertices


@pytest.mark.parametrize("tiebreak", sorted(TIEBREAK_POLICIES))
def test_policy_combos_are_deterministic(tiebreak, zoo):
    a = _run_combo(zoo["gnm-dense"], tiebreak, "fraction")
    b = _run_combo(zoo["gnm-dense"], tiebreak, "fraction")
    assert np.array_equal(a.labels, b.labels)
    assert a.frontier_sizes == b.frontier_sizes
    assert a.dense_rounds == b.dense_rounds


class TestMinHybrid:
    def test_registered_everywhere(self):
        assert DECOMP_VARIANTS["min-hybrid"] is decomp_min_hybrid

    def test_matches_min_when_threshold_unreachable(self, zoo):
        graph = zoo["gnm-dense"]
        with tracking():
            plain = decomp_min(graph, 0.2, seed=1)
        with tracking():
            hybrid = decomp_min_hybrid(graph, 0.2, seed=1, dense_threshold=2.0)
        assert np.array_equal(plain.labels, hybrid.labels)
        assert plain.frontier_sizes == hybrid.frontier_sizes
        assert hybrid.dense_rounds == []

    def test_goes_dense_on_dense_graph(self, zoo):
        with tracking():
            dec = decomp_min_hybrid(zoo["gnm-dense"], 0.2, seed=1)
        assert dec.dense_rounds  # the point of the variant
        verify_decomposition(zoo["gnm-dense"], dec.labels)

    def test_quality_stats_within_arb_bound(self, zoo):
        graph = zoo["random"]
        with tracking():
            dec = decomp_min_hybrid(graph, 0.2, seed=1)
        stats = decomposition_stats(graph, dec, 0.2, "min-hybrid")
        # Dense rounds adopt arbitrarily, so the variant carries the
        # arbitrary rule's 2*beta bound (a generous expectation bound;
        # a single seed should sit well under it on a random graph).
        assert stats.theoretical_fraction_bound == pytest.approx(0.4)
        assert stats.inter_edge_fraction <= stats.theoretical_fraction_bound
        assert stats.max_radius <= stats.theoretical_radius_bound

    def test_end_to_end_connectivity_verifies(self, zoo):
        graph = zoo["union"]
        with tracking():
            result = decomp_cc(graph, variant="min-hybrid", beta=0.2, seed=1)
        verify_labeling(graph, result.labels)

    def test_validates_beta(self, zoo):
        for bad in (0.0, 1.0, -1.0):
            with pytest.raises(ParameterError):
                decomp_min_hybrid(zoo["triangle"], bad)


class TestRegistration:
    def test_custom_tiebreak_registers_and_collides(self):
        @register_tiebreak_policy
        class EchoTiebreak(TiebreakPolicy):
            name = "echo-test"

            def push_round(self, state, engine):
                raise AssertionError("never driven in this test")

        try:
            assert TIEBREAK_POLICIES["echo-test"] is EchoTiebreak

            with pytest.raises(ParameterError):

                @register_tiebreak_policy
                class Clash(TiebreakPolicy):
                    name = "arb"

                    def push_round(self, state, engine):
                        raise AssertionError
        finally:
            TIEBREAK_POLICIES.pop("echo-test", None)

    def test_custom_direction_registers_and_collides(self):
        @register_direction_policy
        class EveryOther(DirectionPolicy):
            name = "every-other-test"

            def go_dense(self, engine, state, claimed):
                return state.round % 2 == 1

        try:
            assert DIRECTION_POLICIES["every-other-test"] is EveryOther

            # Re-registering the *same* class is idempotent...
            assert register_direction_policy(EveryOther) is EveryOther
            # ...but a different class cannot shadow a taken name.
            with pytest.raises(ParameterError):

                @register_direction_policy
                class Shadow(DirectionPolicy):
                    name = "pull"

                    def go_dense(self, engine, state, claimed):
                        return True
        finally:
            DIRECTION_POLICIES.pop("every-other-test", None)

    def test_nameless_policy_rejected(self):
        class NoName(DirectionPolicy):
            def go_dense(self, engine, state, claimed):
                return False

        with pytest.raises(ParameterError):
            register_direction_policy(NoName)

    def test_custom_direction_rule_is_consulted(self, zoo):
        class DenseFromRoundTwo(DirectionPolicy):
            name = "dense-from-two"

            def go_dense(self, engine, state, claimed):
                return state.round >= 2 and state.visited_count < state.n

        graph = zoo["grid"]
        state = DecompState(graph, BETA, SEED, "permutation")
        with tracking():
            TraversalEngine(
                state,
                direction=DenseFromRoundTwo(),
                tiebreak=TIEBREAK_POLICIES["arb"](),
            ).run()
        dec = state.finish()
        assert dec.dense_rounds and min(dec.dense_rounds) == 2
        verify_decomposition(graph, dec.labels)


class TestEngineEdges:
    def test_end_round_rejects_unknown_packing(self):
        with tracking():
            with pytest.raises(ParameterError):
                end_round(4, packing="bogus")

    def test_pull_without_kernel_raises(self, zoo):
        class PushOnlyState(TraversalState):
            def __init__(self, n):
                self._n = n
                self._frontier = np.zeros(0, dtype=np.int64)

            @property
            def n(self):
                return self._n

            @property
            def visited_count(self):
                return 0

            @property
            def done(self):
                return False

            @property
            def frontier(self):
                return self._frontier

            def initial_frontier(self):
                return np.array([0], dtype=np.int64)

            def begin_round(self, engine, next_frontier):
                self._frontier = next_frontier

        with tracking():
            with pytest.raises(NotImplementedError):
                TraversalEngine(PushOnlyState(4), direction=AlwaysPull()).run()

    def test_ligra_rule_on_decomposition_state(self, zoo):
        # Ligra's edge-count switch is a legal decomposition direction
        # policy too — cross-family reuse the engine makes possible.
        graph = zoo["clique"]
        state = DecompState(graph, BETA, SEED, "permutation")
        with tracking():
            TraversalEngine(
                state,
                direction=LigraEdgeHybrid(graph),
                tiebreak=TIEBREAK_POLICIES["min"](),
            ).run()
        verify_decomposition(graph, state.finish().labels)
